//! Table storage: a version heap plus secondary indexes.
//!
//! A table is an append-only heap of [`TupleVersion`]s. Secondary indexes map
//! column values to heap slots; because the heap holds *versions*, an index
//! entry may point at versions that are not visible to a given snapshot — the
//! executor always re-checks visibility. This mirrors how PostgreSQL indexes
//! reference all heap versions and rely on visibility checks at scan time,
//! which is exactly the property the paper exploits to build the invalidity
//! mask (§5.2).

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

use txtypes::{key::stable_hash_of, Error, Result};

use crate::schema::TableSchema;
use crate::tuple::{RowId, TupleVersion};
use crate::value::Value;

/// A heap slot index.
pub type Slot = usize;

/// In-memory storage for one table.
#[derive(Debug)]
pub struct Table {
    schema: TableSchema,
    /// Version heap. `None` marks a slot reclaimed by vacuum.
    slots: Vec<Option<TupleVersion>>,
    /// All slots (live and dead) belonging to each row, oldest first.
    row_versions: HashMap<RowId, Vec<Slot>>,
    /// column name → value → slots whose version has that value.
    indexes: HashMap<String, BTreeMap<Value, Vec<Slot>>>,
    /// column name → number of heap versions whose key is NULL (and thus
    /// absent from the index). Fast paths that must see *every* version
    /// through the index are only sound while this is zero.
    index_null_counts: HashMap<String, usize>,
    next_row_id: RowId,
    rows_per_page: usize,
}

impl Table {
    /// Creates an empty table for `schema`; `rows_per_page` controls the
    /// granularity of simulated page accesses.
    pub fn new(schema: TableSchema, rows_per_page: usize) -> Result<Table> {
        schema.validate()?;
        let mut indexes = HashMap::new();
        let mut index_null_counts = HashMap::new();
        for ix in &schema.indexes {
            indexes.insert(ix.column.clone(), BTreeMap::new());
            index_null_counts.insert(ix.column.clone(), 0);
        }
        Ok(Table {
            schema,
            slots: Vec::new(),
            row_versions: HashMap::new(),
            indexes,
            index_null_counts,
            next_row_id: 1,
            rows_per_page: rows_per_page.max(1),
        })
    }

    /// The table's schema.
    #[must_use]
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Allocates a fresh row id.
    pub fn allocate_row_id(&mut self) -> RowId {
        let id = self.next_row_id;
        self.next_row_id += 1;
        id
    }

    /// The next row id [`Table::allocate_row_id`] would hand out. Persisted
    /// by snapshots so recovery never re-issues an id.
    #[must_use]
    pub fn next_row_id(&self) -> RowId {
        self.next_row_id
    }

    /// Raises the row-id allocator to at least `at_least`. Used by recovery
    /// after restoring versions whose row ids were allocated pre-crash;
    /// never lowers it.
    pub fn ensure_next_row_id(&mut self, at_least: RowId) {
        self.next_row_id = self.next_row_id.max(at_least);
    }

    /// Appends a version to the heap, updating indexes and the row's version
    /// chain. Returns the slot it was stored in.
    pub fn insert_version(&mut self, version: TupleVersion) -> Result<Slot> {
        self.schema.validate_row(&version.values)?;
        let slot = self.slots.len();
        for (column, index) in &mut self.indexes {
            let pos = self
                .schema
                .columns
                .iter()
                .position(|c| &c.name == column)
                .ok_or_else(|| Error::Schema(format!("index on unknown column {column}")))?;
            let key = version.values[pos].clone();
            if key.is_null() {
                if let Some(nulls) = self.index_null_counts.get_mut(column) {
                    *nulls += 1;
                }
            } else {
                index.entry(key).or_default().push(slot);
            }
        }
        self.row_versions
            .entry(version.row_id)
            .or_default()
            .push(slot);
        self.slots.push(Some(version));
        Ok(slot)
    }

    /// Returns the version stored at `slot`, if it has not been vacuumed.
    #[must_use]
    pub fn get(&self, slot: Slot) -> Option<&TupleVersion> {
        self.slots.get(slot).and_then(|s| s.as_ref())
    }

    /// Returns a mutable reference to the version stored at `slot`.
    pub fn get_mut(&mut self, slot: Slot) -> Option<&mut TupleVersion> {
        self.slots.get_mut(slot).and_then(|s| s.as_mut())
    }

    /// Returns every slot currently occupied by a version (a heap scan).
    pub fn scan_slots(&self) -> impl Iterator<Item = Slot> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
    }

    /// Returns the slots of all versions of `row_id`, oldest first.
    #[must_use]
    pub fn versions_of_row(&self, row_id: RowId) -> &[Slot] {
        self.row_versions
            .get(&row_id)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Index equality lookup: slots whose version has `value` in `column`.
    pub fn index_eq(&self, column: &str, value: &Value) -> Result<Vec<Slot>> {
        let index = self
            .indexes
            .get(column)
            .ok_or_else(|| Error::Query(format!("no index on {}.{}", self.schema.name, column)))?;
        Ok(index.get(value).cloned().unwrap_or_default())
    }

    /// Index range scan over `column` between the optional bounds
    /// (inclusive).
    pub fn index_range(
        &self,
        column: &str,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Result<Vec<Slot>> {
        let index = self
            .indexes
            .get(column)
            .ok_or_else(|| Error::Query(format!("no index on {}.{}", self.schema.name, column)))?;
        let mut out = Vec::new();
        for (key, slots) in index.iter() {
            if let Some(lo) = lo {
                if key < lo {
                    continue;
                }
            }
            if let Some(hi) = hi {
                if key > hi {
                    break;
                }
            }
            out.extend_from_slice(slots);
        }
        Ok(out)
    }

    /// Iterates the index on `column` in key order between the optional
    /// (inclusive) bounds, yielding one `(key, slots)` group per distinct
    /// key. Slots within a group are in insertion (ascending heap) order,
    /// which is exactly the tie order a stable sort of a heap scan produces.
    /// Reverse the iterator for a descending walk.
    pub fn index_groups(
        &self,
        column: &str,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Result<impl DoubleEndedIterator<Item = (&Value, &[Slot])> + '_> {
        let index = self
            .indexes
            .get(column)
            .ok_or_else(|| Error::Query(format!("no index on {}.{}", self.schema.name, column)))?;
        let lo = lo.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
        let hi = hi.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
        Ok(index.range((lo, hi)).map(|(k, v)| (k, v.as_slice())))
    }

    /// Number of heap versions whose `column` key is NULL and therefore not
    /// reachable through the index. Index-only fast paths (top-N pushdown,
    /// endpoint probes) are only equivalent to a heap scan while this is
    /// zero.
    #[must_use]
    pub fn index_null_count(&self, column: &str) -> usize {
        self.index_null_counts.get(column).copied().unwrap_or(0)
    }

    /// Returns `true` if the table has an index on `column`.
    #[must_use]
    pub fn has_index_on(&self, column: &str) -> bool {
        self.indexes.contains_key(column)
    }

    /// The heap page a slot lives on, for buffer accounting.
    #[must_use]
    pub fn heap_page_of(&self, slot: Slot) -> u64 {
        (slot / self.rows_per_page) as u64
    }

    /// The simulated index page an index probe for `value` touches.
    #[must_use]
    pub fn index_page_of(&self, column: &str, value: &Value) -> u64 {
        let entries = self
            .indexes
            .get(column)
            .map(|ix| ix.len() as u64)
            .unwrap_or(0);
        let pages = (entries / (self.rows_per_page as u64 * 4)).max(1);
        stable_hash_of(&(column, value.render_key())) % pages
    }

    /// Total number of (non-vacuumed) versions in the heap.
    #[must_use]
    pub fn version_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Total number of heap slots ever allocated (including vacuumed ones);
    /// determines the number of heap pages.
    #[must_use]
    pub fn heap_slots(&self) -> usize {
        self.slots.len()
    }

    /// Removes a slot from the heap and all indexes. Used by vacuum.
    pub fn remove_slot(&mut self, slot: Slot) {
        let Some(version) = self.slots.get_mut(slot).and_then(Option::take) else {
            return;
        };
        for (column, index) in &mut self.indexes {
            if let Some(pos) = self.schema.columns.iter().position(|c| &c.name == column) {
                let key = &version.values[pos];
                if key.is_null() {
                    if let Some(nulls) = self.index_null_counts.get_mut(column) {
                        *nulls = nulls.saturating_sub(1);
                    }
                } else if let Some(slots) = index.get_mut(key) {
                    slots.retain(|s| *s != slot);
                    if slots.is_empty() {
                        index.remove(key);
                    }
                }
            }
        }
        if let Some(chain) = self.row_versions.get_mut(&version.row_id) {
            chain.retain(|s| *s != slot);
            if chain.is_empty() {
                self.row_versions.remove(&version.row_id);
            }
        }
    }

    /// Approximate size of the table's live data in bytes.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .map(TupleVersion::size_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::tuple::Stamp;
    use crate::value::ColumnType;
    use txtypes::Timestamp;

    fn table() -> Table {
        let schema = TableSchema::new("users")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .unique_index("id")
            .index("name");
        Table::new(schema, 4).unwrap()
    }

    fn ver(t: &mut Table, id: i64, name: &str, ts: u64) -> Slot {
        let row = t.allocate_row_id();
        t.insert_version(TupleVersion::committed(
            row,
            vec![Value::Int(id), Value::text(name)],
            Timestamp(ts),
        ))
        .unwrap()
    }

    #[test]
    fn insert_and_index_lookup() {
        let mut t = table();
        let s1 = ver(&mut t, 1, "alice", 5);
        let s2 = ver(&mut t, 2, "bob", 6);
        assert_eq!(t.index_eq("id", &Value::Int(1)).unwrap(), vec![s1]);
        assert_eq!(t.index_eq("name", &Value::text("bob")).unwrap(), vec![s2]);
        assert!(t.index_eq("id", &Value::Int(3)).unwrap().is_empty());
        assert!(t.index_eq("missing", &Value::Int(1)).is_err());
        assert_eq!(t.version_count(), 2);
    }

    #[test]
    fn index_range_scan_respects_bounds() {
        let mut t = table();
        for i in 1..=10 {
            ver(&mut t, i, "user", i as u64);
        }
        let slots = t
            .index_range("id", Some(&Value::Int(3)), Some(&Value::Int(6)))
            .unwrap();
        assert_eq!(slots.len(), 4);
        let open_hi = t.index_range("id", Some(&Value::Int(8)), None).unwrap();
        assert_eq!(open_hi.len(), 3);
        let all = t.index_range("id", None, None).unwrap();
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn multiple_versions_of_same_key_all_indexed() {
        let mut t = table();
        let row = t.allocate_row_id();
        let s1 = t
            .insert_version(TupleVersion::committed(
                row,
                vec![Value::Int(1), Value::text("alice")],
                Timestamp(5),
            ))
            .unwrap();
        // Newer version of the same row, same id.
        let s2 = t
            .insert_version(TupleVersion::committed(
                row,
                vec![Value::Int(1), Value::text("alicia")],
                Timestamp(9),
            ))
            .unwrap();
        assert_eq!(t.index_eq("id", &Value::Int(1)).unwrap(), vec![s1, s2]);
        assert_eq!(t.versions_of_row(row), &[s1, s2]);
    }

    #[test]
    fn null_values_are_not_indexed() {
        let mut t = table();
        let row = t.allocate_row_id();
        t.insert_version(TupleVersion::committed(
            row,
            vec![Value::Int(1), Value::Null],
            Timestamp(5),
        ))
        .unwrap();
        assert!(t.index_eq("name", &Value::Null).unwrap().is_empty());
    }

    #[test]
    fn index_groups_walk_in_key_order_and_reverse() {
        let mut t = table();
        for (id, name) in [(3, "carol"), (1, "alice"), (2, "bob"), (4, "alice")] {
            ver(&mut t, id, name, 1);
        }
        let keys: Vec<i64> = t
            .index_groups("id", None, None)
            .unwrap()
            .map(|(k, _)| k.as_int().unwrap())
            .collect();
        assert_eq!(keys, vec![1, 2, 3, 4]);
        let rev: Vec<i64> = t
            .index_groups("id", Some(&Value::Int(2)), None)
            .unwrap()
            .rev()
            .map(|(k, _)| k.as_int().unwrap())
            .collect();
        assert_eq!(rev, vec![4, 3, 2]);
        // Groups carry every slot of the key, in insertion order.
        let alice: Vec<Vec<Slot>> = t
            .index_groups(
                "name",
                Some(&Value::text("alice")),
                Some(&Value::text("alice")),
            )
            .unwrap()
            .map(|(_, s)| s.to_vec())
            .collect();
        assert_eq!(alice, vec![vec![1, 3]]);
        assert!(t.index_groups("missing", None, None).is_err());
    }

    #[test]
    fn index_null_counts_track_insert_and_vacuum() {
        let mut t = table();
        assert_eq!(t.index_null_count("name"), 0);
        let row = t.allocate_row_id();
        let s = t
            .insert_version(TupleVersion::committed(
                row,
                vec![Value::Int(1), Value::Null],
                Timestamp(1),
            ))
            .unwrap();
        assert_eq!(t.index_null_count("name"), 1);
        assert_eq!(t.index_null_count("id"), 0);
        // Unindexed columns report zero.
        assert_eq!(t.index_null_count("nope"), 0);
        t.remove_slot(s);
        assert_eq!(t.index_null_count("name"), 0);
    }

    #[test]
    fn remove_slot_cleans_indexes_and_chains() {
        let mut t = table();
        let s1 = ver(&mut t, 1, "alice", 5);
        t.remove_slot(s1);
        assert!(t.get(s1).is_none());
        assert!(t.index_eq("id", &Value::Int(1)).unwrap().is_empty());
        assert_eq!(t.version_count(), 0);
        // Removing twice is harmless.
        t.remove_slot(s1);
    }

    #[test]
    fn scan_skips_vacuumed_slots() {
        let mut t = table();
        let s1 = ver(&mut t, 1, "a", 1);
        let s2 = ver(&mut t, 2, "b", 2);
        t.remove_slot(s1);
        let scanned: Vec<_> = t.scan_slots().collect();
        assert_eq!(scanned, vec![s2]);
    }

    #[test]
    fn page_accounting() {
        let mut t = table();
        for i in 1..=9 {
            ver(&mut t, i, "u", 1);
        }
        assert_eq!(t.heap_page_of(0), 0);
        assert_eq!(t.heap_page_of(3), 0);
        assert_eq!(t.heap_page_of(4), 1);
        assert_eq!(t.heap_page_of(8), 2);
        // Index pages are deterministic.
        assert_eq!(
            t.index_page_of("id", &Value::Int(3)),
            t.index_page_of("id", &Value::Int(3))
        );
    }

    #[test]
    fn rejects_rows_violating_schema() {
        let mut t = table();
        let row = t.allocate_row_id();
        let bad = TupleVersion::committed(row, vec![Value::text("x")], Timestamp(1));
        assert!(t.insert_version(bad).is_err());
    }

    #[test]
    fn mark_deleted_via_get_mut() {
        let mut t = table();
        let s1 = ver(&mut t, 1, "alice", 5);
        t.get_mut(s1).unwrap().deleted = Some(Stamp::Committed(Timestamp(9)));
        assert!(!t.get(s1).unwrap().visible_to(Timestamp(9), None));
        assert!(t.get(s1).unwrap().visible_to(Timestamp(8), None));
    }

    #[test]
    fn approx_bytes_grows_with_data() {
        let mut t = table();
        let empty = t.approx_bytes();
        ver(&mut t, 1, "alice", 5);
        assert!(t.approx_bytes() > empty);
    }
}
