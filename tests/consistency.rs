//! End-to-end transactional-consistency tests (the paper's core guarantee):
//! everything a read-only transaction observes — whether it comes from the
//! cache or from the database — reflects a single snapshot.
//!
//! Every scenario runs twice: once with the in-process cache cluster and
//! once against real `txcached` TCP servers on loopback, through the same
//! `CacheBackend` abstraction the application sees. The scenarios and
//! assertions are identical — the wire protocol must not change semantics.

use std::sync::Arc;

use txcache_repro::cache_server::{CacheCluster, NodeConfig, TxcachedServer};
use txcache_repro::mvdb::{
    ColumnType, Database, DbConfig, Predicate, SelectQuery, TableSchema, Value,
};
use txcache_repro::pincushion::Pincushion;
use txcache_repro::txcache::backend::{CacheBackend, RemoteCluster};
use txcache_repro::txcache::{BackendKind, CacheMode, Transaction, TxCache, TxCacheConfig};
use txcache_repro::txtypes::{Result, SimClock, Staleness};

const TOTAL: i64 = 100;

struct Bank {
    txcache: Arc<TxCache>,
    clock: SimClock,
    /// Loopback `txcached` servers backing a remote deployment; kept alive
    /// for the duration of the test, shut down on drop.
    _servers: Vec<TxcachedServer>,
}

/// Builds the cache tier for the requested deployment kind.
fn build_backend(kind: BackendKind) -> (Arc<dyn CacheBackend>, Vec<TxcachedServer>) {
    match kind {
        BackendKind::InProcess => (Arc::new(CacheCluster::new(2, 4 << 20)), Vec::new()),
        BackendKind::Remote => {
            let servers: Vec<TxcachedServer> = (0..2)
                .map(|i| {
                    TxcachedServer::bind(
                        "127.0.0.1:0",
                        format!("txcached-{i}"),
                        NodeConfig {
                            capacity_bytes: 2 << 20,
                            ..NodeConfig::default()
                        },
                    )
                    .expect("bind loopback txcached")
                })
                .collect();
            let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
            let remote = RemoteCluster::connect(&addrs).expect("connect to loopback txcached");
            (Arc::new(remote), servers)
        }
    }
}

/// Builds a two-account "bank" whose invariant is balance(1) + balance(2) == 100.
fn bank(mode: CacheMode, kind: BackendKind) -> Bank {
    let clock = SimClock::new();
    let db = Arc::new(Database::new(DbConfig::default(), clock.clone()));
    db.create_table(
        TableSchema::new("accounts")
            .column("id", ColumnType::Int)
            .column("balance", ColumnType::Int)
            .unique_index("id"),
    )
    .unwrap();
    db.bulk_load(
        "accounts",
        vec![
            vec![Value::Int(1), Value::Int(60)],
            vec![Value::Int(2), Value::Int(TOTAL - 60)],
        ],
    )
    .unwrap();
    let (cache, servers) = build_backend(kind);
    let pincushion = Arc::new(Pincushion::new(Default::default(), clock.clone()));
    let txcache = Arc::new(TxCache::with_backend(
        db,
        cache,
        pincushion,
        clock.clone(),
        TxCacheConfig {
            mode,
            ..TxCacheConfig::default()
        },
    ));
    assert_eq!(txcache.config().backend, kind);
    Bank {
        txcache,
        clock,
        _servers: servers,
    }
}

impl Bank {
    /// Cached balance lookup for one account.
    fn balance(&self, tx: &mut Transaction<'_>, account: i64) -> Result<i64> {
        self.txcache_balance(tx, account)
    }

    fn txcache_balance(&self, tx: &mut Transaction<'_>, account: i64) -> Result<i64> {
        tx.cached("balance", &account, |tx| {
            let q = SelectQuery::table("accounts").filter(Predicate::eq("id", account));
            let r = tx.query(&q)?;
            Ok(r.get(0, "balance")?.as_int().unwrap_or(0))
        })
    }

    /// Transfers `amount` from account 1 to account 2 in a read/write
    /// transaction, retrying on write conflicts.
    fn transfer(&self, amount: i64) {
        loop {
            let mut tx = self.txcache.begin_rw().unwrap();
            let result = (|| -> Result<()> {
                let q1 = SelectQuery::table("accounts").filter(Predicate::eq("id", 1i64));
                let a = tx.query(&q1)?.get(0, "balance")?.as_int().unwrap_or(0);
                tx.update(
                    "accounts",
                    &Predicate::eq("id", 1i64),
                    &[("balance".to_string(), Value::Int(a - amount))],
                )?;
                let q2 = SelectQuery::table("accounts").filter(Predicate::eq("id", 2i64));
                let b = tx.query(&q2)?.get(0, "balance")?.as_int().unwrap_or(0);
                tx.update(
                    "accounts",
                    &Predicate::eq("id", 2i64),
                    &[("balance".to_string(), Value::Int(b + amount))],
                )?;
                Ok(())
            })();
            match result {
                Ok(()) => {
                    tx.commit().unwrap();
                    return;
                }
                Err(e) if e.is_retryable() => {
                    let _ = tx.abort();
                }
                Err(e) => panic!("transfer failed: {e}"),
            }
        }
    }
}

/// The invariant check: read both balances (through the cache) in one
/// read-only transaction and verify they sum to the constant total.
fn check_invariant(bank: &Bank, staleness: Staleness) -> (i64, i64) {
    let mut tx = bank.txcache.begin_ro(staleness).unwrap();
    let a = bank.balance(&mut tx, 1).unwrap();
    let b = bank.balance(&mut tx, 2).unwrap();
    tx.commit().unwrap();
    (a, b)
}

// ----------------------------------------------------------------------
// Scenario bodies, shared verbatim by both deployments.
// ----------------------------------------------------------------------

fn scenario_mixed_reads_see_a_single_snapshot(kind: BackendKind) {
    let bank = bank(CacheMode::Full, kind);
    // Interleave many transfers with reads at a generous staleness limit, so
    // reads frequently hit cached values produced at different times.
    for round in 0..200 {
        bank.transfer(if round % 2 == 0 { 5 } else { -5 });
        bank.clock.advance_micros(200_000);
        let (a, b) = check_invariant(&bank, Staleness::seconds(30));
        assert_eq!(
            a + b,
            TOTAL,
            "round {round}: transactional consistency violated: {a} + {b} != {TOTAL}"
        );
    }
    // The cache was actually exercised.
    let stats = bank.txcache.stats();
    assert!(stats.cache_hits > 0, "expected cache hits, got {stats:?}");
}

fn scenario_fresh_transactions_observe_latest_state(kind: BackendKind) {
    let bank = bank(CacheMode::Full, kind);
    bank.transfer(10);
    bank.clock.advance_secs(60);
    let (a, b) = check_invariant(&bank, Staleness::seconds(1));
    assert_eq!((a, b), (50, 50));
}

fn scenario_commit_timestamps_provide_causality(kind: BackendKind) {
    let bank = bank(CacheMode::Full, kind);

    // Warm the cache with the current balances.
    check_invariant(&bank, Staleness::seconds(30));

    // The user performs an update...
    bank.transfer(10);

    // ...and their next read must reflect it. Using the commit timestamp as a
    // freshness requirement (here: a tight staleness bound after advancing
    // the clock) guarantees the user does not see time move backwards.
    bank.clock.advance_secs(31);
    let (a, _) = check_invariant(&bank, Staleness::seconds(1));
    assert_eq!(a, 50, "user must observe their own committed transfer");

    // Other users with a loose staleness bound may still see the old,
    // consistent snapshot — that is allowed and expected.
    let (a2, b2) = check_invariant(&bank, Staleness::seconds(120));
    assert_eq!(a2 + b2, TOTAL);
}

fn scenario_disabled_mode_matches_database_exactly(kind: BackendKind) {
    let cached = bank(CacheMode::Full, kind);
    let direct = bank(CacheMode::Disabled, kind);
    for round in 0..20 {
        let amount = if round % 3 == 0 { 7 } else { -3 };
        cached.transfer(amount);
        direct.transfer(amount);
        cached.clock.advance_secs(40);
        direct.clock.advance_secs(40);
        let a = check_invariant(&cached, Staleness::seconds(1));
        let b = check_invariant(&direct, Staleness::seconds(1));
        assert_eq!(
            a, b,
            "cached and uncached deployments must agree on fresh reads"
        );
    }
}

// ----------------------------------------------------------------------
// In-process deployment.
// ----------------------------------------------------------------------

#[test]
fn reads_mixing_cache_and_database_see_a_single_snapshot() {
    scenario_mixed_reads_see_a_single_snapshot(BackendKind::InProcess);
}

#[test]
fn fresh_transactions_observe_the_latest_committed_state() {
    scenario_fresh_transactions_observe_latest_state(BackendKind::InProcess);
}

#[test]
fn commit_timestamps_provide_causality() {
    scenario_commit_timestamps_provide_causality(BackendKind::InProcess);
}

#[test]
fn disabled_mode_matches_database_results_exactly() {
    scenario_disabled_mode_matches_database_exactly(BackendKind::InProcess);
}

#[test]
fn read_only_transactions_reject_writes() {
    let bank = bank(CacheMode::Full, BackendKind::InProcess);
    let mut tx = bank.txcache.begin_ro(Staleness::seconds(30)).unwrap();
    let err = tx
        .update(
            "accounts",
            &Predicate::eq("id", 1i64),
            &[("balance".to_string(), Value::Int(0))],
        )
        .unwrap_err();
    assert!(err.to_string().contains("read-only"));
    tx.abort().unwrap();
}

// ----------------------------------------------------------------------
// Remote deployment: the same scenarios over loopback txcached servers.
// ----------------------------------------------------------------------

#[test]
fn remote_reads_mixing_cache_and_database_see_a_single_snapshot() {
    scenario_mixed_reads_see_a_single_snapshot(BackendKind::Remote);
}

#[test]
fn remote_fresh_transactions_observe_the_latest_committed_state() {
    scenario_fresh_transactions_observe_latest_state(BackendKind::Remote);
}

#[test]
fn remote_commit_timestamps_provide_causality() {
    scenario_commit_timestamps_provide_causality(BackendKind::Remote);
}

#[test]
fn remote_disabled_mode_matches_database_results_exactly() {
    scenario_disabled_mode_matches_database_exactly(BackendKind::Remote);
}
