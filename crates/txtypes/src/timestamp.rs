//! Logical commit timestamps and simulated wall-clock time.
//!
//! The paper orders everything — tuple versions, cache entries, invalidation
//! messages, pinned snapshots — by the commit time of update transactions
//! (§4.1). We model that as a monotonically increasing logical counter,
//! [`Timestamp`]. Wall-clock time enters the picture only through the
//! staleness limit handed to `BEGIN-RO` (§2.2) and through the pincushion's
//! bookkeeping of when each snapshot was pinned (§5.4); [`WallClock`]
//! represents it as integer microseconds on a simulated clock.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A logical database commit timestamp.
///
/// `Timestamp(n)` identifies the database state produced by the first `n`
/// committed update transactions. `Timestamp::ZERO` is the empty/initial
/// database state. Timestamps are totally ordered and dense enough for our
/// purposes (one unit per commit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The timestamp of the initial (empty) database state.
    pub const ZERO: Timestamp = Timestamp(0);

    /// The largest representable timestamp; useful as a sentinel upper bound.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Returns the next commit timestamp.
    #[must_use]
    pub fn next(self) -> Timestamp {
        Timestamp(self.0.saturating_add(1))
    }

    /// Returns the previous timestamp, saturating at zero.
    #[must_use]
    pub fn prev(self) -> Timestamp {
        Timestamp(self.0.saturating_sub(1))
    }

    /// Returns the raw counter value.
    #[must_use]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl From<u64> for Timestamp {
    fn from(v: u64) -> Self {
        Timestamp(v)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts:{}", self.0)
    }
}

/// Simulated wall-clock time, in microseconds since the start of the run.
///
/// The experiment harness drives a virtual clock; components that need
/// wall-clock time (the pincushion's staleness checks, cache eviction of
/// too-stale entries, the workload generator's think times) read it from
/// there. Using an integer keeps the simulation deterministic.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct WallClock(pub u64);

impl WallClock {
    /// Time zero of the simulation.
    pub const ZERO: WallClock = WallClock(0);

    /// Builds a wall-clock instant from whole seconds.
    #[must_use]
    pub fn from_secs(secs: u64) -> WallClock {
        WallClock(secs.saturating_mul(1_000_000))
    }

    /// Builds a wall-clock instant from milliseconds.
    #[must_use]
    pub fn from_millis(ms: u64) -> WallClock {
        WallClock(ms.saturating_mul(1_000))
    }

    /// Builds a wall-clock instant from microseconds.
    #[must_use]
    pub fn from_micros(us: u64) -> WallClock {
        WallClock(us)
    }

    /// Returns the instant as microseconds.
    #[must_use]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as (truncated) whole seconds.
    #[must_use]
    pub fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the instant as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Adds a duration expressed in microseconds.
    #[must_use]
    pub fn advance_micros(self, us: u64) -> WallClock {
        WallClock(self.0.saturating_add(us))
    }

    /// Adds a duration expressed in seconds.
    #[must_use]
    pub fn advance_secs(self, secs: u64) -> WallClock {
        self.advance_micros(secs.saturating_mul(1_000_000))
    }

    /// Returns the elapsed time since `earlier`, saturating at zero.
    #[must_use]
    pub fn since(self, earlier: WallClock) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for WallClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_ordering_and_arithmetic() {
        let a = Timestamp(5);
        assert!(a < a.next());
        assert_eq!(a.next(), Timestamp(6));
        assert_eq!(a.prev(), Timestamp(4));
        assert_eq!(Timestamp::ZERO.prev(), Timestamp::ZERO);
        assert_eq!(Timestamp::MAX.next(), Timestamp::MAX);
        assert!(Timestamp::ZERO < Timestamp::MAX);
    }

    #[test]
    fn timestamp_display_and_from() {
        assert_eq!(Timestamp::from(7).to_string(), "ts:7");
        assert_eq!(Timestamp::from(7).as_u64(), 7);
    }

    #[test]
    fn wallclock_conversions() {
        let t = WallClock::from_secs(3);
        assert_eq!(t.as_micros(), 3_000_000);
        assert_eq!(t.as_secs(), 3);
        assert_eq!(WallClock::from_millis(1500).as_secs(), 1);
        assert!((WallClock::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn wallclock_advance_and_since() {
        let t0 = WallClock::from_secs(10);
        let t1 = t0.advance_secs(5);
        assert_eq!(t1.since(t0), 5_000_000);
        assert_eq!(t0.since(t1), 0, "since saturates at zero");
        assert_eq!(t0.advance_micros(1).as_micros(), 10_000_001);
    }

    #[test]
    fn wallclock_display() {
        assert_eq!(WallClock::from_millis(1234).to_string(), "1.234s");
    }
}
