//! Pluggable byte transports for the framed protocol.
//!
//! The framing layer ([`crate::FramedStream`]) only needs `Read + Write`,
//! but a *deployment* needs three more capabilities that `TcpStream`
//! provides implicitly and that an in-process simulated network must be able
//! to provide explicitly:
//!
//! * unblocking a connection from another thread (server shutdown),
//! * per-operation I/O timeouts (so a lost frame degrades instead of
//!   hanging the application), and
//! * accepting and establishing connections by address.
//!
//! [`Transport`], [`Listener`], and [`Connector`] capture those three.
//! `TcpStream`/`TcpListener`/[`TcpConnector`] implement them for the real
//! network; [`crate::sim::SimConn`]/[`crate::sim::SimListener`]/
//! [`crate::sim::SimNet`] implement them for the deterministic chaos
//! network used by the fault-injection tests. `TxcachedServer` and
//! `RemoteCluster` are generic over these traits, so the full
//! client/server/invalidation path runs unchanged over either.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::time::Duration;

/// A handle that can close (and thereby unblock) a connection or listener
/// from another thread. Calling it more than once is harmless.
pub struct Closer(Box<dyn Fn() + Send + Sync>);

impl Closer {
    /// Wraps a close action.
    #[must_use]
    pub fn new(f: impl Fn() + Send + Sync + 'static) -> Closer {
        Closer(Box::new(f))
    }

    /// Closes the associated connection or listener.
    pub fn close(&self) {
        (self.0)();
    }
}

impl std::fmt::Debug for Closer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Closer")
    }
}

/// A bidirectional byte stream a [`crate::FramedStream`] can run over.
pub trait Transport: Read + Write + Send + std::fmt::Debug + 'static {
    /// Returns a handle that closes this connection from another thread,
    /// unblocking any read currently parked on it.
    fn closer(&self) -> std::io::Result<Closer>;

    /// Sets the read *and* write timeout for subsequent operations.
    /// `None` blocks forever. A timed-out read surfaces as
    /// [`std::io::ErrorKind::WouldBlock`] or
    /// [`std::io::ErrorKind::TimedOut`].
    fn set_io_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()>;

    /// A human-readable label of the peer, for logs and connection
    /// summaries.
    fn peer_label(&self) -> String;
}

/// An accept loop's source of incoming [`Transport`] connections.
pub trait Listener: Send + 'static {
    /// The connection type this listener produces.
    type Conn: Transport;

    /// Blocks until the next connection arrives. After [`Listener::closer`]
    /// fires, returns an error promptly instead of blocking forever.
    fn accept(&self) -> std::io::Result<Self::Conn>;

    /// A human-readable label of the listening address.
    fn local_label(&self) -> String;

    /// Returns a handle that unblocks a pending [`Listener::accept`] from
    /// another thread.
    fn closer(&self) -> std::io::Result<Closer>;
}

/// A client-side factory of [`Transport`] connections, keyed by address
/// string (the same strings placed on the consistent-hash ring).
pub trait Connector: Send + Sync + std::fmt::Debug + 'static {
    /// The connection type this connector produces.
    type Conn: Transport;

    /// Establishes a connection to `addr`, observing `connect_timeout`.
    fn connect(&self, addr: &str, connect_timeout: Duration) -> std::io::Result<Self::Conn>;
}

// ----------------------------------------------------------------------
// Real-network implementations.
// ----------------------------------------------------------------------

impl Transport for TcpStream {
    fn closer(&self) -> std::io::Result<Closer> {
        let clone = self.try_clone()?;
        Ok(Closer::new(move || {
            let _ = clone.shutdown(Shutdown::Both);
        }))
    }

    fn set_io_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)?;
        self.set_write_timeout(timeout)
    }

    fn peer_label(&self) -> String {
        self.peer_addr()
            .map_or_else(|_| "unknown".to_string(), |a| a.to_string())
    }
}

impl Listener for TcpListener {
    type Conn = TcpStream;

    fn accept(&self) -> std::io::Result<TcpStream> {
        let (stream, _) = TcpListener::accept(self)?;
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    fn local_label(&self) -> String {
        self.local_addr()
            .map_or_else(|_| "unknown".to_string(), |a| a.to_string())
    }

    fn closer(&self) -> std::io::Result<Closer> {
        // A TCP accept cannot be cancelled portably; connecting a throwaway
        // client unblocks it, and the accept loop then observes its
        // shutdown flag.
        let addr = self.local_addr()?;
        Ok(Closer::new(move || {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
        }))
    }
}

/// The real-network [`Connector`]: resolves the address and dials each
/// candidate with the connect timeout, enabling `TCP_NODELAY`.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpConnector;

impl Connector for TcpConnector {
    type Conn = TcpStream;

    fn connect(&self, addr: &str, connect_timeout: Duration) -> std::io::Result<TcpStream> {
        let addrs: Vec<std::net::SocketAddr> =
            std::net::ToSocketAddrs::to_socket_addrs(addr)?.collect();
        let mut last_err = std::io::Error::new(
            std::io::ErrorKind::AddrNotAvailable,
            "no addresses resolved",
        );
        for candidate in addrs {
            match TcpStream::connect_timeout(&candidate, connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    return Ok(stream);
                }
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }
}
