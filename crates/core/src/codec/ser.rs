//! The serializer half of the TxCache binary codec.

use bytes::Bytes;
use serde::ser::{self, Serialize};

use super::CodecError;

/// Streaming encoder for the TxCache binary format.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    #[must_use]
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Consumes the encoder and returns the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Bytes {
        Bytes::from(self.buf)
    }

    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_len(&mut self, len: usize) {
        self.put_u64(len as u64);
    }
}

impl<'a> ser::Serializer for &'a mut Encoder {
    type Ok = ();
    type Error = CodecError;

    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.buf.push(u8::from(v));
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<(), CodecError> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i16(self, v: i16) -> Result<(), CodecError> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i32(self, v: i32) -> Result<(), CodecError> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i64(self, v: i64) -> Result<(), CodecError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i128(self, v: i128) -> Result<(), CodecError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<(), CodecError> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u16(self, v: u16) -> Result<(), CodecError> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u32(self, v: u32) -> Result<(), CodecError> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u64(self, v: u64) -> Result<(), CodecError> {
        self.put_u64(v);
        Ok(())
    }
    fn serialize_u128(self, v: u128) -> Result<(), CodecError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), CodecError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), CodecError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.put_u32(v as u32);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.buf.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.buf.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), CodecError> {
        self.buf.push(0);
        Ok(())
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), CodecError> {
        self.buf.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.put_u32(variant_index);
        Ok(())
    }

    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.put_u32(variant_index);
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Compound<'a>, CodecError> {
        let len = len
            .ok_or_else(|| ser::Error::custom("sequences with unknown length are not supported"))?;
        self.put_len(len);
        Ok(Compound { enc: self })
    }

    fn serialize_tuple(self, _len: usize) -> Result<Compound<'a>, CodecError> {
        Ok(Compound { enc: self })
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CodecError> {
        Ok(Compound { enc: self })
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CodecError> {
        self.put_u32(variant_index);
        Ok(Compound { enc: self })
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Compound<'a>, CodecError> {
        let len =
            len.ok_or_else(|| ser::Error::custom("maps with unknown length are not supported"))?;
        self.put_len(len);
        Ok(Compound { enc: self })
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CodecError> {
        Ok(Compound { enc: self })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CodecError> {
        self.put_u32(variant_index);
        Ok(Compound { enc: self })
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Serializer state for compound types (sequences, maps, structs, variants).
#[derive(Debug)]
pub struct Compound<'a> {
    enc: &'a mut Encoder,
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut *self.enc)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut *self.enc)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut *self.enc)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut *self.enc)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), CodecError> {
        key.serialize(&mut *self.enc)
    }
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut *self.enc)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut *self.enc)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut *self.enc)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}
