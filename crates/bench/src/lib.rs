//! Shared helpers for the figure/table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the paper's
//! evaluation (see `DESIGN.md` §2 and `EXPERIMENTS.md`). They accept a small
//! set of command-line flags so the full-scale experiments can be run when
//! more time is available:
//!
//! * `--scale <f>`    — dataset scale factor (default 0.01 = 1% of the paper's sizes)
//! * `--requests <n>` — measured requests per experiment point (default 2000)
//! * `--quick`        — shrink everything for a fast smoke run

#![forbid(unsafe_code)]

use harness::{DbKind, ExperimentConfig};

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Dataset scale factor relative to the paper's configuration.
    pub scale: f64,
    /// Measured requests per experiment point.
    pub requests: usize,
    /// Warm-up requests per experiment point.
    pub warmup: usize,
    /// Application-server thread counts for the concurrency sweep
    /// (`--threads 1,2,4,8`).
    pub threads: Vec<usize>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: 0.01,
            requests: 2_000,
            warmup: 1_200,
            threads: vec![1, 2, 4, 8],
        }
    }
}

impl BenchArgs {
    /// Parses the common flags from `std::env::args`, ignoring unknown
    /// arguments (binaries may add their own).
    #[must_use]
    pub fn parse() -> BenchArgs {
        let mut out = BenchArgs::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" if i + 1 < args.len() => {
                    if let Ok(v) = args[i + 1].parse() {
                        out.scale = v;
                    }
                    i += 1;
                }
                "--requests" if i + 1 < args.len() => {
                    if let Ok(v) = args[i + 1].parse() {
                        out.requests = v;
                    }
                    i += 1;
                }
                "--threads" if i + 1 < args.len() => {
                    let parsed: Vec<usize> = args[i + 1]
                        .split(',')
                        .filter_map(|t| t.trim().parse().ok())
                        .filter(|&t| t > 0)
                        .collect();
                    if !parsed.is_empty() {
                        out.threads = parsed;
                    }
                    i += 1;
                }
                "--quick" => {
                    out.scale = 0.004;
                    out.requests = 600;
                    out.warmup = 300;
                }
                _ => {}
            }
            i += 1;
        }
        out.warmup = out.warmup.min(out.requests);
        out
    }

    /// Builds an experiment configuration for `db_kind` with these sizes.
    #[must_use]
    pub fn config(&self, db_kind: DbKind) -> ExperimentConfig {
        ExperimentConfig {
            scale_factor: self.scale,
            requests: self.requests,
            warmup_requests: self.warmup,
            ..ExperimentConfig::new(db_kind)
        }
    }
}

/// Formats a byte count as the paper writes cache sizes ("64MB", "1GB").
#[must_use]
pub fn format_size(bytes: usize) -> String {
    if bytes >= 1 << 30 {
        format!("{}GB", bytes >> 30)
    } else {
        format!("{}MB", bytes >> 20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_config() {
        let args = BenchArgs::default();
        let cfg = args.config(DbKind::InMemory);
        assert_eq!(cfg.requests, 2_000);
        assert!((cfg.scale_factor - 0.01).abs() < 1e-12);
        assert_eq!(args.threads, vec![1, 2, 4, 8]);
    }

    #[test]
    fn size_formatting() {
        assert_eq!(format_size(64 << 20), "64MB");
        assert_eq!(format_size(9 << 30), "9GB");
    }
}
