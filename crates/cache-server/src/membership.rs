//! The epoch-versioned membership handle.
//!
//! [`Membership`] publishes the cluster's current [`RingView`] and drives
//! membership changes: a join or leave builds the successor view at
//! `epoch + 1` and atomically swaps it in. The displaced view is retained
//! as the **previous** view for the migration window — the old owner of a
//! relocated key keeps serving reads until the epoch is
//! [retired](Membership::retire_previous), while new entries and
//! still-valid re-inserts flow to the new owner (they route through the
//! current view). Readers clone an `Arc` under a brief read lock; views
//! themselves are immutable.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::ring::{RingBuilder, RingView};

struct MembershipState {
    current: Arc<RingView>,
    /// The displaced view, kept until the migration window is retired so
    /// the old owners of relocated keys can keep serving reads.
    previous: Option<Arc<RingView>>,
}

/// Publishes the current ring view and sequences membership changes.
pub struct Membership {
    state: RwLock<MembershipState>,
}

impl Membership {
    /// Wraps an initial view (no previous epoch to migrate from).
    #[must_use]
    pub fn new(view: Arc<RingView>) -> Membership {
        Membership {
            state: RwLock::new(MembershipState {
                current: view,
                previous: None,
            }),
        }
    }

    /// The current view.
    #[must_use]
    pub fn current(&self) -> Arc<RingView> {
        Arc::clone(&self.state.read().current)
    }

    /// The previous epoch's view, while its migration window is open.
    #[must_use]
    pub fn previous(&self) -> Option<Arc<RingView>> {
        self.state.read().previous.clone()
    }

    /// The current membership epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.state.read().current.epoch()
    }

    /// Publishes the next view through `change`, bumping the epoch by one.
    /// The displaced view becomes the previous view (opening a migration
    /// window); returns the newly published view.
    pub fn publish(&self, change: impl FnOnce(RingBuilder) -> RingBuilder) -> Arc<RingView> {
        let mut state = self.state.write();
        let next = change(state.current.builder()).build(state.current.epoch() + 1);
        state.previous = Some(Arc::clone(&state.current));
        state.current = Arc::clone(&next);
        next
    }

    /// Adds a node at runtime (see [`Membership::publish`]).
    pub fn join(&self, name: impl Into<String>) -> Arc<RingView> {
        let name = name.into();
        self.publish(|b| b.add(name))
    }

    /// Removes a node at runtime (see [`Membership::publish`]).
    pub fn leave(&self, name: &str) -> Arc<RingView> {
        self.publish(|b| b.remove(name))
    }

    /// Closes the migration window: the previous view is dropped, so old
    /// owners stop being consulted for keys that moved.
    pub fn retire_previous(&self) {
        self.state.write().previous = None;
    }
}

impl std::fmt::Debug for Membership {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.read();
        f.debug_struct("Membership")
            .field("epoch", &state.current.epoch())
            .field("nodes", &state.current.len())
            .field("migrating", &state.previous.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_leave_bump_the_epoch_and_keep_the_previous_view() {
        let m = Membership::new(RingBuilder::new().add_all(["a", "b"]).build(1));
        assert_eq!(m.epoch(), 1);
        assert!(m.previous().is_none());

        let v2 = m.join("c");
        assert_eq!(v2.epoch(), 2);
        assert_eq!(m.epoch(), 2);
        assert_eq!(m.current().len(), 3);
        let prev = m.previous().expect("migration window open");
        assert_eq!(prev.epoch(), 1);
        assert_eq!(prev.len(), 2);

        m.retire_previous();
        assert!(m.previous().is_none());

        let v3 = m.leave("a");
        assert_eq!(v3.epoch(), 3);
        assert_eq!(
            m.current().node_names(),
            &["b".to_string(), "c".to_string()]
        );
        assert_eq!(m.previous().expect("window reopened").epoch(), 2);
    }

    #[test]
    fn debug_shows_migration_state() {
        let m = Membership::new(RingBuilder::new().add("a").build(1));
        assert!(format!("{m:?}").contains("migrating: false"));
        m.join("b");
        assert!(format!("{m:?}").contains("migrating: true"));
    }
}
