//! Offline subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's poison-free API: `lock()`
//! returns the guard directly instead of a `Result`. A thread that panics
//! while holding a lock simply releases it (the protected invariants are the
//! caller's responsibility, as in parking_lot proper).

#![forbid(unsafe_code)]

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive with a poison-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

/// A reader-writer lock with poison-free accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_try_variants() {
        let l = RwLock::new(5);
        {
            let r = l.try_read().expect("uncontended try_read succeeds");
            assert_eq!(*r, 5);
            assert!(l.try_write().is_none(), "readers block try_write");
        }
        {
            let mut w = l.try_write().expect("uncontended try_write succeeds");
            *w += 1;
            assert!(l.try_read().is_none(), "a writer blocks try_read");
        }
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
