//! Column values.
//!
//! The database stores dynamically-typed rows. The value set is intentionally
//! small — integers, floats, text, booleans and NULL — which covers the RUBiS
//! and wiki schemas used in the evaluation.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A single column value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Convenience constructor for text values.
    #[must_use]
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Returns the integer payload, if this is an `Int`.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload, accepting `Int` as well.
    #[must_use]
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the text payload, if this is a `Text`.
    #[must_use]
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns `true` if the value is NULL.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate in-memory size in bytes, used by the simulated buffer
    /// manager and the cache's memory accounting.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Bool(_) => 1,
            Value::Text(s) => s.len() + 8,
        }
    }

    /// Renders the value for use inside an invalidation tag or cache key.
    /// The rendering is canonical: equal values render identically.
    #[must_use]
    pub fn render_key(&self) -> String {
        match self {
            Value::Null => "null".to_string(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => format!("{v:?}"),
            Value::Text(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
        }
    }

    /// Discriminant rank used to order values of different types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Text(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Int(v) => v.hash(state),
            Value::Float(v) => v.to_bits().hash(state),
            Value::Text(s) => s.hash(state),
            Value::Bool(b) => b.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
}

impl ColumnType {
    /// Returns `true` if `value` is acceptable for a column of this type
    /// (NULL is always acceptable).
    #[must_use]
    pub fn accepts(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Float, Value::Int(_))
                | (ColumnType::Text, Value::Text(_))
                | (ColumnType::Bool, Value::Bool(_))
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_float(), Some(5.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::text("hi").as_text(), Some("hi"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::text("hi").as_int(), None);
    }

    #[test]
    fn ordering_within_and_across_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::text("a") < Value::text("b"));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
        assert!(Value::Null < Value::Int(0));
        assert_eq!(Value::Int(3), Value::Int(3));
    }

    #[test]
    fn int_float_equality_is_consistent_with_ordering() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
    }

    #[test]
    fn render_key_is_canonical() {
        assert_eq!(Value::Int(42).render_key(), "42");
        assert_eq!(Value::text("Alice").render_key(), "Alice");
        assert_eq!(Value::Bool(false).render_key(), "false");
    }

    #[test]
    fn column_type_accepts() {
        assert!(ColumnType::Int.accepts(&Value::Int(1)));
        assert!(!ColumnType::Int.accepts(&Value::text("x")));
        assert!(ColumnType::Float.accepts(&Value::Int(1)));
        assert!(ColumnType::Text.accepts(&Value::Null));
        assert!(ColumnType::Bool.accepts(&Value::Bool(true)));
    }

    #[test]
    fn from_conversions_and_sizes() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from("x"), Value::text("x"));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert!(Value::text("hello").size_bytes() >= 5);
        assert_eq!(Value::Int(1).size_bytes(), 8);
    }
}
