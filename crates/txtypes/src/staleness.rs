//! Per-transaction staleness limits (§2.2).
//!
//! `BEGIN-RO(staleness)` lets an application declare how old a snapshot it is
//! willing to observe. The limit is expressed in wall-clock time; the
//! pincushion translates it into the set of pinned snapshots that are still
//! fresh enough.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::timestamp::WallClock;

/// How stale a read-only transaction's snapshot is allowed to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Staleness {
    /// The transaction must run on the latest database state (equivalent to a
    /// zero-second bound): no previously pinned snapshot may be reused unless
    /// it is the current one.
    Fresh,
    /// The transaction may run on any snapshot pinned within the last
    /// `micros` microseconds of (simulated) wall-clock time.
    Within {
        /// The staleness bound in microseconds.
        micros: u64,
    },
}

impl Staleness {
    /// A staleness bound of the given number of seconds.
    #[must_use]
    pub fn seconds(secs: u64) -> Staleness {
        Staleness::Within {
            micros: secs.saturating_mul(1_000_000),
        }
    }

    /// A staleness bound of the given number of milliseconds.
    #[must_use]
    pub fn millis(ms: u64) -> Staleness {
        Staleness::Within {
            micros: ms.saturating_mul(1_000),
        }
    }

    /// Returns the bound in microseconds (zero for [`Staleness::Fresh`]).
    #[must_use]
    pub fn as_micros(self) -> u64 {
        match self {
            Staleness::Fresh => 0,
            Staleness::Within { micros } => micros,
        }
    }

    /// The earliest wall-clock pin time acceptable under this bound when the
    /// transaction begins at `now`.
    #[must_use]
    pub fn earliest_acceptable(self, now: WallClock) -> WallClock {
        WallClock(now.0.saturating_sub(self.as_micros()))
    }

    /// Returns `true` if a snapshot pinned at `pinned_at` is acceptable at
    /// time `now`.
    #[must_use]
    pub fn accepts(self, pinned_at: WallClock, now: WallClock) -> bool {
        pinned_at >= self.earliest_acceptable(now)
    }
}

impl Default for Staleness {
    /// The paper's experiments default to a 30-second staleness limit.
    fn default() -> Self {
        Staleness::seconds(30)
    }
}

impl fmt::Display for Staleness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Staleness::Fresh => write!(f, "fresh"),
            Staleness::Within { micros } => write!(f, "{:.1}s", *micros as f64 / 1e6),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_micros() {
        assert_eq!(Staleness::seconds(30).as_micros(), 30_000_000);
        assert_eq!(Staleness::millis(250).as_micros(), 250_000);
        assert_eq!(Staleness::Fresh.as_micros(), 0);
        assert_eq!(Staleness::default(), Staleness::seconds(30));
    }

    #[test]
    fn earliest_acceptable_saturates_at_zero() {
        let s = Staleness::seconds(30);
        assert_eq!(
            s.earliest_acceptable(WallClock::from_secs(100)),
            WallClock::from_secs(70)
        );
        assert_eq!(
            s.earliest_acceptable(WallClock::from_secs(10)),
            WallClock::ZERO
        );
    }

    #[test]
    fn accepts_boundary() {
        let s = Staleness::seconds(30);
        let now = WallClock::from_secs(100);
        assert!(s.accepts(WallClock::from_secs(70), now));
        assert!(s.accepts(WallClock::from_secs(100), now));
        assert!(!s.accepts(WallClock::from_secs(69), now));
        assert!(Staleness::Fresh.accepts(now, now));
        assert!(!Staleness::Fresh.accepts(WallClock::from_secs(99), now));
    }

    #[test]
    fn display() {
        assert_eq!(Staleness::seconds(30).to_string(), "30.0s");
        assert_eq!(Staleness::Fresh.to_string(), "fresh");
    }
}
