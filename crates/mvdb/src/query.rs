//! The query AST.
//!
//! The engine supports the query shapes the RUBiS and wiki workloads need:
//! single-table selects with conjunctive/disjunctive comparison predicates, an
//! optional equi-join against a second table, projection, ordering, limits,
//! and simple aggregates. This is deliberately not a SQL parser — queries are
//! built programmatically — but the plan/execute split and the
//! validity/invalidation bookkeeping are faithful to the paper.

use serde::{Deserialize, Serialize};
use txtypes::{Error, Result};

use crate::schema::TableSchema;
use crate::value::Value;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Applies the operator to two values.
    #[must_use]
    pub fn eval(self, left: &Value, right: &Value) -> bool {
        match self {
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
        }
    }
}

/// A row predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true.
    True,
    /// Compare a column against a constant.
    Cmp {
        /// Column name.
        column: String,
        /// Comparison operator.
        op: CmpOp,
        /// Constant to compare against.
        value: Value,
    },
    /// Membership in a list of constants (`column IN (v1, v2, ...)`).
    In {
        /// Column name.
        column: String,
        /// Candidate values. NULL members never match (SQL semantics).
        values: Vec<Value>,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor for `column = value`.
    #[must_use]
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            column: column.into(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// Convenience constructor for a comparison.
    #[must_use]
    pub fn cmp(column: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            column: column.into(),
            op,
            value: value.into(),
        }
    }

    /// Convenience constructor for `column IN (values)`.
    #[must_use]
    pub fn in_list(
        column: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<Value>>,
    ) -> Predicate {
        Predicate::In {
            column: column.into(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Conjunction of two predicates, flattening nested `And`s.
    #[must_use]
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::And(mut a), Predicate::And(b)) => {
                a.extend(b);
                Predicate::And(a)
            }
            (Predicate::And(mut a), p) => {
                a.push(p);
                Predicate::And(a)
            }
            (p, Predicate::And(mut b)) => {
                b.insert(0, p);
                Predicate::And(b)
            }
            (a, b) => Predicate::And(vec![a, b]),
        }
    }

    /// Evaluates the predicate against a row described by `schema`.
    ///
    /// Unknown columns are an error (they indicate a query/schema mismatch,
    /// not a missing value).
    pub fn eval(&self, schema: &TableSchema, row: &[Value]) -> Result<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::Cmp { column, op, value } => {
                let idx = schema.column_index(column)?;
                let cell = row
                    .get(idx)
                    .ok_or_else(|| Error::Query(format!("row too short for column '{column}'")))?;
                if cell.is_null() || value.is_null() {
                    // SQL three-valued logic collapsed to false.
                    return Ok(false);
                }
                Ok(op.eval(cell, value))
            }
            Predicate::In { column, values } => {
                let idx = schema.column_index(column)?;
                let cell = row
                    .get(idx)
                    .ok_or_else(|| Error::Query(format!("row too short for column '{column}'")))?;
                if cell.is_null() {
                    // NULL IN (...) is unknown; collapsed to false.
                    return Ok(false);
                }
                Ok(values.iter().any(|v| !v.is_null() && v == cell))
            }
            Predicate::And(ps) => {
                for p in ps {
                    if !p.eval(schema, row)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Predicate::Or(ps) => {
                for p in ps {
                    if p.eval(schema, row)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Predicate::Not(p) => Ok(!p.eval(schema, row)?),
        }
    }

    /// Collects the conjunctive top-level comparisons, used by the planner to
    /// find indexable conditions.
    #[must_use]
    pub fn conjuncts(&self) -> Vec<&Predicate> {
        match self {
            Predicate::And(ps) => ps.iter().flat_map(|p| p.conjuncts()).collect(),
            Predicate::True => Vec::new(),
            other => vec![other],
        }
    }
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SortOrder {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// An aggregate function over the result rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregate {
    /// `COUNT(*)`.
    Count,
    /// `SUM(column)`.
    Sum(String),
    /// `MIN(column)`.
    Min(String),
    /// `MAX(column)`.
    Max(String),
    /// `AVG(column)`.
    Avg(String),
}

/// An inner equi-join against a second table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Join {
    /// The inner (joined) table.
    pub table: String,
    /// Join column on the outer table.
    pub left_column: String,
    /// Join column on the inner table.
    pub right_column: String,
    /// Additional predicate on inner-table columns.
    pub predicate: Predicate,
}

/// A select query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectQuery {
    /// The outer table.
    pub table: String,
    /// Predicate over outer-table columns.
    pub predicate: Predicate,
    /// Optional inner equi-join.
    pub join: Option<Join>,
    /// Columns to return (`None` means all columns of the outer table plus,
    /// if joined, all columns of the inner table).
    pub projection: Option<Vec<String>>,
    /// Optional ordering, applied before `limit`.
    pub order_by: Option<(String, SortOrder)>,
    /// Optional row limit.
    pub limit: Option<usize>,
    /// Optional aggregate; when present the result is a single row.
    pub aggregate: Option<Aggregate>,
    /// Forces the planner to use a sequential scan for the outer table.
    /// Used by tests (and diagnostics) to compare an index-assisted plan
    /// against the reference scan plan; never set by applications.
    pub force_seq_scan: bool,
}

impl SelectQuery {
    /// Starts building a query over `table`.
    #[must_use]
    pub fn table(table: impl Into<String>) -> SelectQuery {
        SelectQuery {
            table: table.into(),
            predicate: Predicate::True,
            join: None,
            projection: None,
            order_by: None,
            limit: None,
            aggregate: None,
            force_seq_scan: false,
        }
    }

    /// Sets the predicate (replacing any previous one).
    #[must_use]
    pub fn filter(mut self, predicate: Predicate) -> SelectQuery {
        self.predicate = predicate;
        self
    }

    /// Adds an equality filter on `column`, conjoined with any existing
    /// predicate.
    #[must_use]
    pub fn filter_eq(mut self, column: impl Into<String>, value: impl Into<Value>) -> SelectQuery {
        self.predicate = std::mem::replace(&mut self.predicate, Predicate::True)
            .and(Predicate::eq(column, value));
        self
    }

    /// Adds an inner equi-join.
    #[must_use]
    pub fn join(
        mut self,
        table: impl Into<String>,
        left_column: impl Into<String>,
        right_column: impl Into<String>,
    ) -> SelectQuery {
        self.join = Some(Join {
            table: table.into(),
            left_column: left_column.into(),
            right_column: right_column.into(),
            predicate: Predicate::True,
        });
        self
    }

    /// Sets a predicate on the joined table.
    #[must_use]
    pub fn join_filter(mut self, predicate: Predicate) -> SelectQuery {
        if let Some(join) = &mut self.join {
            join.predicate = std::mem::replace(&mut join.predicate, Predicate::True).and(predicate);
        }
        self
    }

    /// Restricts the returned columns.
    #[must_use]
    pub fn select(mut self, columns: Vec<&str>) -> SelectQuery {
        self.projection = Some(columns.into_iter().map(String::from).collect());
        self
    }

    /// Sets the ordering column and direction.
    #[must_use]
    pub fn order_by(mut self, column: impl Into<String>, order: SortOrder) -> SelectQuery {
        self.order_by = Some((column.into(), order));
        self
    }

    /// Sets the row limit.
    #[must_use]
    pub fn limit(mut self, limit: usize) -> SelectQuery {
        self.limit = Some(limit);
        self
    }

    /// Turns the query into an aggregate query.
    #[must_use]
    pub fn aggregate(mut self, aggregate: Aggregate) -> SelectQuery {
        self.aggregate = Some(aggregate);
        self
    }

    /// Forces the outer table to be read with a sequential scan, disabling
    /// every index-assisted access path. The result (rows and validity
    /// interval) must be identical to the planner's choice; tests rely on
    /// this to prove the fast paths sound.
    #[must_use]
    pub fn force_seq_scan(mut self) -> SelectQuery {
        self.force_seq_scan = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::value::ColumnType;

    fn schema() -> TableSchema {
        TableSchema::new("users")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("rating", ColumnType::Int)
    }

    #[test]
    fn cmp_op_eval() {
        assert!(CmpOp::Eq.eval(&Value::Int(1), &Value::Int(1)));
        assert!(CmpOp::Ne.eval(&Value::Int(1), &Value::Int(2)));
        assert!(CmpOp::Lt.eval(&Value::Int(1), &Value::Int(2)));
        assert!(CmpOp::Ge.eval(&Value::text("b"), &Value::text("a")));
    }

    #[test]
    fn predicate_eval_basic() {
        let s = schema();
        let row = vec![Value::Int(1), Value::text("alice"), Value::Int(5)];
        assert!(Predicate::eq("id", 1i64).eval(&s, &row).unwrap());
        assert!(!Predicate::eq("id", 2i64).eval(&s, &row).unwrap());
        assert!(Predicate::cmp("rating", CmpOp::Ge, 3i64)
            .eval(&s, &row)
            .unwrap());
        assert!(Predicate::True.eval(&s, &row).unwrap());
        assert!(Predicate::eq("missing", 1i64).eval(&s, &row).is_err());
    }

    #[test]
    fn predicate_eval_compound() {
        let s = schema();
        let row = vec![Value::Int(1), Value::text("alice"), Value::Int(5)];
        let p = Predicate::eq("id", 1i64).and(Predicate::cmp("rating", CmpOp::Gt, 3i64));
        assert!(p.eval(&s, &row).unwrap());
        let q = Predicate::Or(vec![
            Predicate::eq("id", 9i64),
            Predicate::eq("name", "alice"),
        ]);
        assert!(q.eval(&s, &row).unwrap());
        let n = Predicate::Not(Box::new(Predicate::eq("id", 1i64)));
        assert!(!n.eval(&s, &row).unwrap());
    }

    #[test]
    fn in_list_matches_membership_and_ignores_nulls() {
        let s = schema();
        let row = vec![Value::Int(1), Value::text("alice"), Value::Int(5)];
        assert!(Predicate::in_list("rating", [4i64, 5, 6])
            .eval(&s, &row)
            .unwrap());
        assert!(!Predicate::in_list("rating", [1i64, 2])
            .eval(&s, &row)
            .unwrap());
        // NULL members never match, and an empty list matches nothing.
        let with_null = Predicate::In {
            column: "rating".into(),
            values: vec![Value::Null, Value::Int(5)],
        };
        assert!(with_null.eval(&s, &row).unwrap());
        let only_null = Predicate::In {
            column: "rating".into(),
            values: vec![Value::Null],
        };
        assert!(!only_null.eval(&s, &row).unwrap());
        assert!(!Predicate::in_list("rating", Vec::<i64>::new())
            .eval(&s, &row)
            .unwrap());
        // A NULL cell is never IN anything.
        let null_row = vec![Value::Int(1), Value::text("a"), Value::Null];
        assert!(!Predicate::in_list("rating", [5i64])
            .eval(&s, &null_row)
            .unwrap());
    }

    #[test]
    fn null_comparisons_are_false() {
        let s = schema();
        let row = vec![Value::Int(1), Value::Null, Value::Int(5)];
        assert!(!Predicate::eq("name", "alice").eval(&s, &row).unwrap());
        assert!(!Predicate::cmp("name", CmpOp::Ne, "alice")
            .eval(&s, &row)
            .unwrap());
    }

    #[test]
    fn and_flattens_and_conjuncts_collects() {
        let p = Predicate::eq("a", 1i64)
            .and(Predicate::eq("b", 2i64))
            .and(Predicate::eq("c", 3i64));
        assert_eq!(p.conjuncts().len(), 3);
        assert_eq!(Predicate::True.conjuncts().len(), 0);
        // True is the identity.
        assert_eq!(
            Predicate::True.and(Predicate::eq("a", 1i64)),
            Predicate::eq("a", 1i64)
        );
    }

    #[test]
    fn query_builder_composes() {
        let q = SelectQuery::table("items")
            .filter(Predicate::eq("category", 3i64))
            .join("users", "seller", "id")
            .join_filter(Predicate::eq("region", 2i64))
            .select(vec!["id", "name"])
            .order_by("id", SortOrder::Desc)
            .limit(20);
        assert_eq!(q.table, "items");
        assert!(q.join.is_some());
        assert_eq!(q.projection.as_ref().unwrap().len(), 2);
        assert_eq!(q.limit, Some(20));
    }

    #[test]
    fn filter_eq_accumulates() {
        let q = SelectQuery::table("t")
            .filter_eq("a", 1i64)
            .filter_eq("b", 2i64);
        assert_eq!(q.predicate.conjuncts().len(), 2);
    }
}
