//! Offline subset of the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply cloneable, thread-safe byte
//! container. Static slices are stored without allocation; owned buffers are
//! reference-counted so cache entries can be shared across threads.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable slice of bytes.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Bytes {
    /// Creates an empty `Bytes`.
    #[must_use]
    pub const fn new() -> Bytes {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps a static slice without allocating.
    #[must_use]
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes(Repr::Static(bytes))
    }

    /// Returns the number of bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Returns true if the container is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Returns the contents as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(v) => v,
        }
    }

    /// Copies the contents into a new `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Repr::Shared(Arc::new(v)))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl serde::Serialize for Bytes {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(self.as_slice())
    }
}

impl<'de> serde::Deserialize<'de> for Bytes {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BytesVisitor;
        impl<'de> serde::de::Visitor<'de> for BytesVisitor {
            type Value = Bytes;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a byte buffer")
            }
            fn visit_bytes<E: serde::de::Error>(self, v: &[u8]) -> Result<Bytes, E> {
                Ok(Bytes::from(v.to_vec()))
            }
            fn visit_byte_buf<E: serde::de::Error>(self, v: Vec<u8>) -> Result<Bytes, E> {
                Ok(Bytes::from(v))
            }
        }
        deserializer.deserialize_byte_buf(BytesVisitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_owned_compare_equal() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(b"abc".to_vec()));
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn deref_supports_slicing() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn clone_is_cheap_and_shares() {
        let b = Bytes::from(vec![0u8; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
    }
}
