#!/usr/bin/env bash
# CI gate for the TxCache reproduction workspace.
#
# Runs the same checks a hosted pipeline would, fully offline:
#   1. rustfmt in check mode
#   2. clippy with warnings denied (all targets, incl. vendored stubs)
#   3. release build of every target (bins and benches included)
#   4. the full test suite
#
# Usage: ./ci.sh [--no-clippy]

set -euo pipefail
cd "$(dirname "$0")"

NO_CLIPPY=0
for arg in "$@"; do
    case "$arg" in
        --no-clippy) NO_CLIPPY=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all --check

if [ "$NO_CLIPPY" -eq 0 ]; then
    echo "==> cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> cargo build --release (all targets)"
cargo build --workspace --release --all-targets

echo "==> cargo test"
cargo test --workspace --quiet

echo "CI gate passed."
