//! Figure 8: breakdown of cache misses by type (compulsory, staleness,
//! capacity, consistency) for the paper's four configurations:
//! in-memory 512 MB / 30 s, in-memory 512 MB / 15 s, in-memory 64 MB / 30 s,
//! and disk-bound 9 GB / 30 s.

use bench::BenchArgs;
use harness::{miss_breakdown_table, run_experiment, DbKind, ExperimentConfig};
use txtypes::Staleness;

fn main() {
    let args = BenchArgs::parse();

    let columns = [
        ("512MB, 30s", DbKind::InMemory, 512usize << 20, 30u64),
        ("512MB, 15s", DbKind::InMemory, 512usize << 20, 15),
        ("64MB, 30s", DbKind::InMemory, 64usize << 20, 30),
        ("disk 9GB, 30s", DbKind::DiskBound, 9usize << 30, 30),
    ];

    let mut results = Vec::new();
    for (label, db_kind, cache_bytes, staleness_secs) in columns {
        let config = ExperimentConfig {
            cache_bytes_full_scale: cache_bytes,
            staleness: Staleness::seconds(staleness_secs),
            ..args.config(db_kind)
        };
        let result = run_experiment(&config).expect("experiment failed");
        results.push((label, result));
    }

    println!("# Figure 8: breakdown of cache misses by type (percent of total misses)");
    println!("{}", miss_breakdown_table(&results));
    println!("Paper reference values:");
    println!("  512MB/30s: compulsory 33.2%, stale/capacity 59.0%, consistency 7.8%");
    println!("  512MB/15s: compulsory 28.5%, stale/capacity 66.1%, consistency 5.4%");
    println!("   64MB/30s: compulsory  4.3%, stale/capacity 95.5%, consistency 0.2%");
    println!("   9GB/30s : compulsory 63.0%, stale/capacity 36.3%, consistency 0.7%");
}
