//! A deterministic in-process network with seeded fault injection.
//!
//! [`SimNet`] plays the role of the operating system's network stack for
//! chaos tests: servers bind [`SimListener`]s under string addresses,
//! clients connect through the net (it implements [`Connector`]), and every
//! connection is a pair of [`SimConn`] endpoints joined by two directed
//! in-memory pipes. Because the whole network lives in one process, the
//! full client/server/invalidation path — `RemoteCluster` on one side,
//! `TxcachedServer` on the other — runs under injected faults with no
//! sockets, no ports, and no timing flakiness.
//!
//! ## Fault model
//!
//! Faults are injected at *frame* granularity (the 4-byte length prefix is
//! parsed as bytes are written), mirroring what a lossy fabric or a
//! crashing peer can do to the protocol:
//!
//! * **drop** — the frame never arrives; the reader times out (the client
//!   treats the connection as failed, §4's degrade-to-miss model);
//! * **duplicate** — the frame arrives twice (protocol v2's sequence
//!   numbers make the second copy a detectable desync);
//! * **delay/reorder** — the frame is held back behind frames sent after
//!   it (released deterministically, never blocking forever);
//! * **reset** — both directions of the connection fail, as a crashed peer
//!   or an RST would;
//! * **partition** — scripted per-address blackholes ([`SimNet::partition`]
//!   / [`SimNet::heal`]), with [`SimNet::sever`] to kill live connections
//!   instantly; reconnects are refused until healed.
//!
//! ## Determinism
//!
//! Every random decision comes from a per-pipe splitmix64 generator seeded
//! from `(net seed, address, connection index, direction)`, and every
//! decision is made at *write* time — which frames exist on a pipe depends
//! only on what the two endpoints said, never on thread scheduling. Two
//! runs with the same seed and the same (deterministic, lock-step) workload
//! therefore produce the same fault schedule bit for bit;
//! [`SimNet::fault_digest`] hashes the schedule so tests can assert exactly
//! that. The chaos harness prints the seed and honours `CHAOS_SEED`, so any
//! failure replays from one environment variable.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::transport::{Closer, Connector, Listener, Transport};

/// Per-frame fault probabilities, in parts per 1024 (so fault decisions
/// stay in cheap, portable integer arithmetic). A frame suffers at most one
/// fault.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Chance a frame is silently dropped.
    pub drop_per_1024: u32,
    /// Chance a frame is delivered twice.
    pub dup_per_1024: u32,
    /// Chance a frame is held back behind 1–3 later frames.
    pub delay_per_1024: u32,
    /// Chance the connection is reset at this frame.
    pub reset_per_1024: u32,
    /// Upper bound on bytes handed out per `read` call. Values below a
    /// frame's size force the framing layer through its partial-read
    /// resumption path; 0 means unlimited.
    pub max_read_chunk: usize,
}

impl ChaosConfig {
    /// No faults at all: a perfectly healthy in-process network.
    #[must_use]
    pub fn healthy() -> ChaosConfig {
        ChaosConfig {
            drop_per_1024: 0,
            dup_per_1024: 0,
            delay_per_1024: 0,
            reset_per_1024: 0,
            max_read_chunk: 0,
        }
    }

    /// A moderate mix of every fault kind, suitable for bounded test
    /// sweeps: most frames arrive, but drops, duplicates, reorderings, and
    /// the occasional reset all fire on runs of a few hundred frames.
    #[must_use]
    pub fn stormy() -> ChaosConfig {
        ChaosConfig {
            drop_per_1024: 12,
            dup_per_1024: 16,
            delay_per_1024: 24,
            reset_per_1024: 6,
            max_read_chunk: 7,
        }
    }
}

/// What the chaos layer decided to do with one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Delivered normally.
    Deliver,
    /// Silently discarded.
    Drop,
    /// Delivered twice.
    Duplicate,
    /// Held back behind `n` later frames.
    Delay(u8),
    /// Connection reset at this frame.
    Reset,
    /// Discarded because the address was partitioned.
    PartitionDrop,
}

/// Aggregate counts of injected faults across the whole net.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Frames delivered unharmed.
    pub delivered: u64,
    /// Frames dropped by random chaos.
    pub dropped: u64,
    /// Frames duplicated.
    pub duplicated: u64,
    /// Frames delayed/reordered.
    pub delayed: u64,
    /// Connections reset by random chaos.
    pub resets: u64,
    /// Frames blackholed by a scripted partition.
    pub partition_drops: u64,
}

impl FaultCounts {
    /// Total number of injected faults (everything except clean delivery).
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.dropped + self.duplicated + self.delayed + self.resets + self.partition_drops
    }
}

/// Deterministic splitmix64; tiny, seedable, and dependency-free. Shared
/// with the chaos harness so every seeded decision in a run — transport
/// faults here, workload choices there — uses one generator whose
/// constants can never silently diverge.
#[derive(Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds a generator.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly-ish distributed value below `n` (`n = 0` yields 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// The FNV-1a offset basis — the seed value for [`fnv1a`] digests.
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Folds `bytes` into an FNV-1a digest (used for the fault-schedule and
/// history digests the reproducibility tests compare).
pub fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *hash ^= u64::from(*b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// One queued item on a directed pipe.
#[derive(Debug)]
enum Segment {
    /// Frame bytes (length prefix included).
    Data(Vec<u8>),
    /// The connection was reset at this point in the stream.
    Reset,
}

/// One direction of a connection: a queue of delivered segments plus the
/// chaos machinery that decides each written frame's fate.
#[derive(Debug)]
struct PipeState {
    /// Bytes written but not yet forming a complete frame.
    partial: Vec<u8>,
    /// Segments visible to the reader, oldest first. The front `Data`
    /// segment may be partially consumed (`cursor` bytes already read).
    visible: VecDeque<Segment>,
    cursor: usize,
    /// Delayed frames: `(release_after_sent, bytes)`; promoted once the
    /// pipe's send counter passes the release mark, or when the reader
    /// would otherwise block (so a delay can never deadlock the run).
    pending: VecDeque<(u64, Vec<u8>)>,
    /// Complete frames written so far (drives delay release).
    sent_frames: u64,
    /// Writer-side failure: writes fail once set.
    write_broken: bool,
    /// Set by [`Closer`]s and by dropping an endpoint: reads drain what is
    /// buffered and then report EOF; writes fail.
    closed: bool,
    rng: SplitMix64,
    /// Which address this pipe belongs to (so [`SimNet::sever`] can find
    /// it).
    addr_tag: u64,
    /// This pipe's fault decisions in order, folded into a digest.
    fault_digest: u64,
}

impl PipeState {
    fn new(seed: u64, addr_tag: u64) -> PipeState {
        PipeState {
            partial: Vec::new(),
            visible: VecDeque::new(),
            cursor: 0,
            pending: VecDeque::new(),
            sent_frames: 0,
            write_broken: false,
            closed: false,
            rng: SplitMix64::new(seed),
            addr_tag,
            fault_digest: FNV_OFFSET,
        }
    }

    fn record(&mut self, action: FaultAction, counts: &mut FaultCounts) {
        let code: u8 = match action {
            FaultAction::Deliver => 0,
            FaultAction::Drop => 1,
            FaultAction::Duplicate => 2,
            FaultAction::Delay(n) => 0x10 | n,
            FaultAction::Reset => 3,
            FaultAction::PartitionDrop => 4,
        };
        let frame = self.sent_frames;
        fnv1a(&mut self.fault_digest, &[code]);
        fnv1a(&mut self.fault_digest, &frame.to_le_bytes());
        match action {
            FaultAction::Deliver => counts.delivered += 1,
            FaultAction::Drop => counts.dropped += 1,
            FaultAction::Duplicate => counts.duplicated += 1,
            FaultAction::Delay(_) => counts.delayed += 1,
            FaultAction::Reset => counts.resets += 1,
            FaultAction::PartitionDrop => counts.partition_drops += 1,
        }
    }

    /// Moves pending frames whose release mark has passed (or, with
    /// `force`, the earliest one) into the visible queue.
    fn promote_pending(&mut self, force: bool) -> bool {
        let mut promoted = false;
        while let Some((release, _)) = self.pending.front() {
            if *release <= self.sent_frames || force {
                let (_, bytes) = self.pending.pop_front().expect("front exists");
                self.visible.push_back(Segment::Data(bytes));
                promoted = true;
                if force {
                    break;
                }
            } else {
                break;
            }
        }
        promoted
    }
}

/// A directed pipe: state plus the condvar readers park on.
#[derive(Debug)]
struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
}

impl Pipe {
    fn new(seed: u64, addr_tag: u64) -> Pipe {
        Pipe {
            state: Mutex::new(PipeState::new(seed, addr_tag)),
            readable: Condvar::new(),
        }
    }

    fn close(&self) {
        self.state.lock().expect("pipe lock").closed = true;
        self.readable.notify_all();
    }

    fn inject_reset(&self) {
        let mut state = self.state.lock().expect("pipe lock");
        state.write_broken = true;
        state.visible.push_back(Segment::Reset);
        drop(state);
        self.readable.notify_all();
    }
}

/// Per-address shared state (partition flag, connection counter).
#[derive(Debug, Default)]
struct AddrState {
    partitioned: AtomicBool,
    accepted: AtomicU64,
}

#[derive(Debug)]
struct ListenerState {
    /// Server-side endpoints waiting to be accepted.
    backlog: Mutex<VecDeque<SimConn>>,
    arrived: Condvar,
    closed: AtomicBool,
    addr: Arc<AddrState>,
}

#[derive(Debug)]
struct NetInner {
    seed: u64,
    chaos: ChaosConfig,
    listeners: Mutex<HashMap<String, Arc<ListenerState>>>,
    counts: Mutex<FaultCounts>,
    /// Every pipe ever created, in creation order, for digests and sever.
    pipes: Mutex<Vec<Arc<Pipe>>>,
}

/// A deterministic in-process network; cheap to clone (shared state).
///
/// Implements [`Connector`], so a `RemoteCluster` can dial straight through
/// it. See the module docs for the fault model.
#[derive(Debug, Clone)]
pub struct SimNet {
    inner: Arc<NetInner>,
}

impl SimNet {
    /// A chaos-free net (useful for exercising the transport abstraction
    /// itself, and as the base for scripted partition scenarios).
    #[must_use]
    pub fn new(seed: u64) -> SimNet {
        SimNet::with_chaos(seed, ChaosConfig::healthy())
    }

    /// A net whose pipes inject faults with the given probabilities,
    /// deterministically derived from `seed`.
    #[must_use]
    pub fn with_chaos(seed: u64, chaos: ChaosConfig) -> SimNet {
        SimNet {
            inner: Arc::new(NetInner {
                seed,
                chaos,
                listeners: Mutex::new(HashMap::new()),
                counts: Mutex::new(FaultCounts::default()),
                pipes: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The seed the net was built with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// Binds a listener under `addr`. Binding the same address twice
    /// replaces the old listener (its pending accepts fail).
    #[must_use]
    pub fn bind(&self, addr: &str) -> SimListener {
        let state = Arc::new(ListenerState {
            backlog: Mutex::new(VecDeque::new()),
            arrived: Condvar::new(),
            closed: AtomicBool::new(false),
            addr: Arc::new(AddrState::default()),
        });
        if let Some(old) = self
            .inner
            .listeners
            .lock()
            .expect("listener registry")
            .insert(addr.to_string(), Arc::clone(&state))
        {
            old.closed.store(true, Ordering::SeqCst);
            old.arrived.notify_all();
        }
        SimListener {
            net: self.clone(),
            addr: addr.to_string(),
            state,
        }
    }

    /// Starts blackholing `addr`: frames on live connections are dropped
    /// in both directions and new connections are refused, until
    /// [`SimNet::heal`]. Already-buffered frames still drain.
    pub fn partition(&self, addr: &str) {
        if let Some(listener) = self.listener(addr) {
            listener.addr.partitioned.store(true, Ordering::SeqCst);
        }
    }

    /// Ends a partition started with [`SimNet::partition`].
    pub fn heal(&self, addr: &str) {
        if let Some(listener) = self.listener(addr) {
            listener.addr.partitioned.store(false, Ordering::SeqCst);
        }
    }

    /// Resets every live connection to `addr` immediately (both
    /// directions), as a crashing node would. Usually paired with
    /// [`SimNet::partition`] so reconnect attempts fail until healed.
    pub fn sever(&self, addr: &str) {
        let tag = SimNet::hash_addr(addr);
        let pipes: Vec<Arc<Pipe>> = self
            .inner
            .pipes
            .lock()
            .expect("pipe registry")
            .iter()
            .filter(|p| p.state.lock().expect("pipe lock").addr_tag == tag)
            .cloned()
            .collect();
        for pipe in pipes {
            pipe.inject_reset();
        }
    }

    /// Aggregate fault counts so far.
    #[must_use]
    pub fn fault_counts(&self) -> FaultCounts {
        *self.inner.counts.lock().expect("counts lock")
    }

    /// A digest of the complete fault schedule: every pipe's decisions in
    /// order, combined in pipe-creation order. Equal digests mean equal
    /// schedules, bit for bit.
    #[must_use]
    pub fn fault_digest(&self) -> u64 {
        let pipes = self.inner.pipes.lock().expect("pipe registry");
        let mut digest = FNV_OFFSET;
        for pipe in pipes.iter() {
            let state = pipe.state.lock().expect("pipe lock");
            fnv1a(&mut digest, &state.fault_digest.to_le_bytes());
            fnv1a(&mut digest, &state.sent_frames.to_le_bytes());
        }
        digest
    }

    fn listener(&self, addr: &str) -> Option<Arc<ListenerState>> {
        self.inner
            .listeners
            .lock()
            .expect("listener registry")
            .get(addr)
            .cloned()
    }

    fn hash_addr(addr: &str) -> u64 {
        let mut h = FNV_OFFSET;
        fnv1a(&mut h, addr.as_bytes());
        h
    }

    /// Establishes a connection to `addr`, producing the client endpoint
    /// and queueing the server endpoint on the listener's backlog.
    fn dial(&self, addr: &str) -> std::io::Result<SimConn> {
        let Some(listener) = self.listener(addr) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                format!("no sim listener bound at {addr}"),
            ));
        };
        if listener.closed.load(Ordering::SeqCst) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                format!("sim listener at {addr} is closed"),
            ));
        }
        if listener.addr.partitioned.load(Ordering::SeqCst) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                format!("sim address {addr} is partitioned"),
            ));
        }
        let conn_index = listener.addr.accepted.fetch_add(1, Ordering::SeqCst);
        let tag = SimNet::hash_addr(addr);
        let base = self
            .inner
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(tag)
            .wrapping_add(conn_index.wrapping_mul(0x517C_C1B7_2722_0A95));
        let c2s = Arc::new(Pipe::new(base ^ 0x5EED, tag));
        let s2c = Arc::new(Pipe::new(base ^ 0xFACE, tag));
        {
            let mut pipes = self.inner.pipes.lock().expect("pipe registry");
            pipes.push(Arc::clone(&c2s));
            pipes.push(Arc::clone(&s2c));
        }
        let client = SimConn {
            net: self.clone(),
            addr_state: Arc::clone(&listener.addr),
            label: format!("{addr}#{conn_index}/client"),
            tx: Arc::clone(&c2s),
            rx: Arc::clone(&s2c),
            timeout: Mutex::new(None),
        };
        let server = SimConn {
            net: self.clone(),
            addr_state: Arc::clone(&listener.addr),
            label: format!("{addr}#{conn_index}/server"),
            tx: s2c,
            rx: c2s,
            timeout: Mutex::new(None),
        };
        let mut backlog = listener.backlog.lock().expect("backlog lock");
        backlog.push_back(server);
        drop(backlog);
        listener.arrived.notify_one();
        Ok(client)
    }
}

impl Connector for SimNet {
    type Conn = SimConn;

    fn connect(&self, addr: &str, _connect_timeout: Duration) -> std::io::Result<SimConn> {
        self.dial(addr)
    }
}

/// The listening end of a [`SimNet`] address.
#[derive(Debug)]
pub struct SimListener {
    net: SimNet,
    addr: String,
    state: Arc<ListenerState>,
}

impl Listener for SimListener {
    type Conn = SimConn;

    fn accept(&self) -> std::io::Result<SimConn> {
        let mut backlog = self.state.backlog.lock().expect("backlog lock");
        loop {
            if let Some(conn) = backlog.pop_front() {
                return Ok(conn);
            }
            if self.state.closed.load(Ordering::SeqCst) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::NotConnected,
                    "sim listener closed",
                ));
            }
            backlog = self.state.arrived.wait(backlog).expect("backlog condvar");
        }
    }

    fn local_label(&self) -> String {
        format!("sim://{}", self.addr)
    }

    fn closer(&self) -> std::io::Result<Closer> {
        let state = Arc::clone(&self.state);
        Ok(Closer::new(move || {
            state.closed.store(true, Ordering::SeqCst);
            state.arrived.notify_all();
        }))
    }
}

impl SimListener {
    /// The address the listener is bound to (for building client address
    /// lists).
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The net the listener belongs to.
    #[must_use]
    pub fn net(&self) -> &SimNet {
        &self.net
    }
}

/// One endpoint of a simulated connection.
pub struct SimConn {
    net: SimNet,
    addr_state: Arc<AddrState>,
    label: String,
    /// The pipe this endpoint writes to.
    tx: Arc<Pipe>,
    /// The pipe this endpoint reads from.
    rx: Arc<Pipe>,
    timeout: Mutex<Option<Duration>>,
}

impl std::fmt::Debug for SimConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimConn")
            .field("label", &self.label)
            .finish()
    }
}

impl Drop for SimConn {
    fn drop(&mut self) {
        // The peer sees EOF once this endpoint is gone, like a closed
        // socket (closing rx as well unblocks any reader racing the drop).
        self.tx.close();
        self.rx.close();
    }
}

/// How long a reader waits on an empty pipe before releasing a delayed
/// frame. The window exists for determinism: a writer mid-burst (same
/// thread, microseconds between frames) always beats it, so delayed frames
/// interleave with later frames in write order, never by reader timing.
const QUIET_PROMOTE_WINDOW: Duration = Duration::from_millis(10);

impl Read for SimConn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let chunk_cap = self.net.inner.chaos.max_read_chunk;
        let timeout = *self.timeout.lock().expect("timeout lock");
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        let mut state = self.rx.state.lock().expect("pipe lock");
        loop {
            state.promote_pending(false);
            match state.visible.front() {
                Some(Segment::Reset) => {
                    state.visible.pop_front();
                    state.cursor = 0;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionReset,
                        "sim connection reset",
                    ));
                }
                Some(Segment::Data(bytes)) => {
                    let cursor = state.cursor;
                    let cap = if chunk_cap == 0 {
                        buf.len()
                    } else {
                        buf.len().min(chunk_cap)
                    };
                    let n = (bytes.len() - cursor).min(cap);
                    buf[..n].copy_from_slice(&bytes[cursor..cursor + n]);
                    let done = cursor + n == bytes.len();
                    if done {
                        state.visible.pop_front();
                        state.cursor = 0;
                    } else {
                        state.cursor = cursor + n;
                    }
                    return Ok(n);
                }
                None => {
                    // Once the buffered stream is drained, a reset pipe
                    // keeps reporting the reset.
                    if state.write_broken {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::ConnectionReset,
                            "sim connection reset",
                        ));
                    }
                    if state.closed {
                        // The writer is gone: whatever is still pending is
                        // all that will ever arrive.
                        if state.promote_pending(true) {
                            continue;
                        }
                        return Ok(0);
                    }
                    let now = std::time::Instant::now();
                    if deadline.is_some_and(|d| now >= d) {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "sim read timed out",
                        ));
                    }
                    // With a delayed frame pending, wait only a quiet
                    // window: if the writer is mid-burst its next frame
                    // arrives first (deterministic write-order interleave);
                    // if the pipe is truly quiet — the peer is lockstep
                    // blocked on us — release the frame instead of
                    // deadlocking the run.
                    let wait_for = if state.pending.is_empty() {
                        deadline.map(|d| d - now)
                    } else {
                        Some(match deadline {
                            Some(d) => QUIET_PROMOTE_WINDOW.min(d - now),
                            None => QUIET_PROMOTE_WINDOW,
                        })
                    };
                    let had_pending = !state.pending.is_empty();
                    state = match wait_for {
                        None => self.rx.readable.wait(state).expect("pipe condvar"),
                        Some(dur) => {
                            let (guard, result) = self
                                .rx
                                .readable
                                .wait_timeout(state, dur)
                                .expect("pipe condvar");
                            let mut guard = guard;
                            if result.timed_out() && had_pending && guard.visible.is_empty() {
                                guard.promote_pending(true);
                            }
                            guard
                        }
                    };
                }
            }
        }
    }
}

impl Write for SimConn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let chaos = self.net.inner.chaos;
        let partitioned = self.addr_state.partitioned.load(Ordering::SeqCst);
        let mut state = self.tx.state.lock().expect("pipe lock");
        // Writes on a dead pipe are still *accepted* and their frames still
        // consume chaos decisions — only delivery is suppressed. This keeps
        // the fault schedule a pure function of what each endpoint wrote:
        // whether a peer's write raced the connection's death (an inherently
        // timing-dependent event) can no longer shift the schedule. The
        // exception is the chaos reset triggered by this very call, which
        // surfaces synchronously so the writer learns of it
        // deterministically; death is otherwise observed on the read side
        // (reset markers, EOF, timeouts).
        let dead = state.closed || state.write_broken;
        state.partial.extend_from_slice(buf);

        // Carve complete frames off the partial buffer and decide each
        // one's fate. Anything that is not yet a full frame waits for more
        // bytes.
        let mut reset = false;
        loop {
            if state.partial.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes([
                state.partial[0],
                state.partial[1],
                state.partial[2],
                state.partial[3],
            ]) as usize;
            if state.partial.len() < 4 + len {
                break;
            }
            let frame: Vec<u8> = state.partial.drain(..4 + len).collect();
            state.sent_frames += 1;
            // Every frame consumes exactly one chaos decision, even when a
            // partition overrides it: the rng stream position then depends
            // only on how many frames this endpoint wrote, so a late write
            // racing a scripted partition toggle cannot shift the schedule
            // of every frame after it.
            let decided = decide(&mut state.rng, chaos);
            let action = if partitioned {
                FaultAction::PartitionDrop
            } else {
                decided
            };
            {
                let mut counts = self.net.inner.counts.lock().expect("counts lock");
                state.record(action, &mut counts);
            }
            match action {
                FaultAction::Deliver => {
                    if !dead {
                        state.visible.push_back(Segment::Data(frame));
                    }
                }
                FaultAction::Drop | FaultAction::PartitionDrop => {}
                FaultAction::Duplicate => {
                    if !dead {
                        state.visible.push_back(Segment::Data(frame.clone()));
                        state.visible.push_back(Segment::Data(frame));
                    }
                }
                FaultAction::Delay(n) => {
                    if !dead {
                        let release = state.sent_frames + u64::from(n);
                        state.pending.push_back((release, frame));
                    }
                }
                FaultAction::Reset => {
                    reset = true;
                    break;
                }
            }
            if !dead {
                state.promote_pending(false);
            }
        }
        drop(state);
        self.tx.readable.notify_all();
        if reset && !dead {
            // A reset severs both directions, like an RST.
            self.tx.inject_reset();
            self.rx.inject_reset();
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "sim connection reset by chaos",
            ));
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn decide(rng: &mut SplitMix64, chaos: ChaosConfig) -> FaultAction {
    let roll = (rng.next_u64() & 0x3FF) as u32; // 0..1024
    let mut threshold = chaos.drop_per_1024;
    if roll < threshold {
        return FaultAction::Drop;
    }
    threshold += chaos.dup_per_1024;
    if roll < threshold {
        return FaultAction::Duplicate;
    }
    threshold += chaos.delay_per_1024;
    if roll < threshold {
        let n = (rng.next_u64() % 3 + 1) as u8;
        return FaultAction::Delay(n);
    }
    threshold += chaos.reset_per_1024;
    if roll < threshold {
        return FaultAction::Reset;
    }
    FaultAction::Deliver
}

impl Transport for SimConn {
    fn closer(&self) -> std::io::Result<Closer> {
        let tx = Arc::clone(&self.tx);
        let rx = Arc::clone(&self.rx);
        Ok(Closer::new(move || {
            tx.close();
            rx.close();
        }))
    }

    fn set_io_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        *self.timeout.lock().expect("timeout lock") = timeout;
        Ok(())
    }

    fn peer_label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut f = (payload.len() as u32).to_le_bytes().to_vec();
        f.extend_from_slice(payload);
        f
    }

    #[test]
    fn healthy_net_delivers_frames_in_order() {
        let net = SimNet::new(1);
        let listener = net.bind("node-a");
        let mut client = net.dial("node-a").unwrap();
        let mut server = listener.accept().unwrap();
        client.write_all(&frame(b"one")).unwrap();
        client.write_all(&frame(b"two")).unwrap();
        let mut buf = [0u8; 64];
        let mut got = Vec::new();
        while got.len() < 14 {
            let n = server.read(&mut buf).unwrap();
            got.extend_from_slice(&buf[..n]);
        }
        let mut expected = frame(b"one");
        expected.extend_from_slice(&frame(b"two"));
        assert_eq!(got, expected);
        assert_eq!(net.fault_counts().injected(), 0);
        assert_eq!(net.fault_counts().delivered, 2);
    }

    #[test]
    fn connect_to_unbound_address_is_refused() {
        let net = SimNet::new(1);
        assert!(net.dial("nowhere").is_err());
    }

    #[test]
    fn partition_refuses_connects_and_drops_frames() {
        let net = SimNet::new(2);
        let listener = net.bind("node-a");
        let mut client = net.dial("node-a").unwrap();
        let mut server = listener.accept().unwrap();
        net.partition("node-a");
        assert!(net.dial("node-a").is_err());
        client.write_all(&frame(b"lost")).unwrap();
        server
            .set_io_timeout(Some(Duration::from_millis(5)))
            .unwrap();
        let mut buf = [0u8; 16];
        assert!(server.read(&mut buf).is_err(), "frame must be blackholed");
        assert_eq!(net.fault_counts().partition_drops, 1);
        net.heal("node-a");
        assert!(net.dial("node-a").is_ok());
    }

    #[test]
    fn sever_resets_live_connections() {
        let net = SimNet::new(3);
        let listener = net.bind("node-a");
        let mut client = net.dial("node-a").unwrap();
        let _server = listener.accept().unwrap();
        net.sever("node-a");
        let mut buf = [0u8; 4];
        let err = client.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
        // Writes on the severed pipe are accepted (for fault-schedule
        // determinism) but never delivered; the next read still reports
        // the reset.
        assert!(client.write_all(&frame(b"x")).is_ok());
        let err = client.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn identical_seeds_produce_identical_fault_schedules() {
        let run = |seed: u64| {
            let net = SimNet::with_chaos(seed, ChaosConfig::stormy());
            let listener = net.bind("node-a");
            let mut client = net.dial("node-a").unwrap();
            let _server = listener.accept().unwrap();
            for i in 0..200u32 {
                // Ignore write errors: chaos resets are part of the run.
                if client.write_all(&frame(&i.to_le_bytes())).is_err() {
                    break;
                }
            }
            (net.fault_digest(), net.fault_counts())
        };
        assert_eq!(run(0xC0FFEE), run(0xC0FFEE));
        assert_ne!(run(0xC0FFEE).0, run(0xBEEF).0, "different seeds differ");
    }

    #[test]
    fn stormy_chaos_actually_injects_faults() {
        let net = SimNet::with_chaos(7, ChaosConfig::stormy());
        let listener = net.bind("node-a");
        let mut client = net.dial("node-a").unwrap();
        let _server = listener.accept().unwrap();
        for i in 0..500u32 {
            if client.write_all(&frame(&i.to_le_bytes())).is_err() {
                // Reconnect after a chaos reset and keep going.
                client = net.dial("node-a").unwrap();
                let _ = listener.accept().unwrap();
            }
        }
        let counts = net.fault_counts();
        assert!(
            counts.injected() > 0,
            "expected injected faults: {counts:?}"
        );
        assert!(counts.delivered > 0, "most frames still arrive: {counts:?}");
    }

    #[test]
    fn delayed_frames_are_released_not_lost() {
        let chaos = ChaosConfig {
            drop_per_1024: 0,
            dup_per_1024: 0,
            delay_per_1024: 1024, // delay every frame
            reset_per_1024: 0,
            max_read_chunk: 0,
        };
        let net = SimNet::with_chaos(9, chaos);
        let listener = net.bind("node-a");
        let mut client = net.dial("node-a").unwrap();
        let mut server = listener.accept().unwrap();
        client.write_all(&frame(b"held")).unwrap();
        // The reader forces the release instead of deadlocking.
        let mut got = Vec::new();
        let mut buf = [0u8; 16];
        while got.len() < frame(b"held").len() {
            let n = server.read(&mut buf).unwrap();
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, frame(b"held"));
        assert_eq!(net.fault_counts().delayed, 1);
    }
}
