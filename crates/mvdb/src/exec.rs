//! Query execution with validity-interval and invalidation-tag tracking.
//!
//! The executor materializes results (the workloads' result sets are small),
//! applies snapshot-isolation visibility checks against the query's snapshot
//! timestamp, and — when validity tracking is enabled — accumulates the
//! result-tuple validity and the invalidity mask described in §5.2. It also
//! charges every heap and index page it touches to the simulated buffer
//! manager so the harness can model in-memory vs disk-bound databases.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use txtypes::{Error, InvalidationTag, Result, TagSet, Timestamp, ValidityInterval};

use crate::buffer::{PageAccess, SharedBuffer};
use crate::plan::{AccessPath, JoinAccess, QueryPlan};
use crate::query::{Aggregate, SortOrder};
use crate::table::{Slot, Table};
use crate::tuple::TxnId;
use crate::validity::ValidityTracker;
use crate::value::Value;

/// Execution options controlling the database-side TxCache machinery.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExecOptions {
    /// Track validity intervals and produce invalidation tags. Disabling this
    /// models the stock (unmodified) database used as the §8.1 baseline.
    pub track_validity: bool,
    /// Evaluate the query predicate before the visibility check during scans
    /// (§5.2). This tightens the invalidity mask (wider cached validity) at
    /// the cost of evaluating predicates on dead tuples.
    pub predicate_before_visibility: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            track_validity: true,
            predicate_before_visibility: true,
        }
    }
}

/// Counters of page activity attributable to a single query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageCounts {
    /// Pages touched that were resident in the buffer pool.
    pub hits: u64,
    /// Pages touched that required a simulated disk read.
    pub misses: u64,
}

impl PageCounts {
    fn record(&mut self, access: PageAccess) {
        match access {
            PageAccess::Hit => self.hits += 1,
            PageAccess::Miss => self.misses += 1,
        }
    }

    /// Total pages touched.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }
}

/// The result of a query, together with the TxCache metadata piggybacked on
/// it (§5.2–5.3): the validity interval and the invalidation tag set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryResult {
    /// Output column names. Outer-table columns keep their bare names; joined
    /// columns are qualified as `table.column`.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// The range of timestamps over which this result is the current result.
    pub validity: ValidityInterval,
    /// The query's database dependencies, for automatic invalidation.
    pub tags: TagSet,
    /// Simulated page activity caused by the query.
    pub pages: PageCounts,
}

impl QueryResult {
    /// Looks up a column by name. Bare names match outer columns exactly and
    /// joined columns by suffix.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        if let Some(i) = self.columns.iter().position(|c| c == name) {
            return Ok(i);
        }
        let suffix = format!(".{name}");
        let mut matches = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.ends_with(&suffix));
        match (matches.next(), matches.next()) {
            (Some((i, _)), None) => Ok(i),
            (Some(_), Some(_)) => Err(Error::Query(format!("ambiguous column '{name}'"))),
            (None, _) => Err(Error::Query(format!("unknown column '{name}'"))),
        }
    }

    /// Returns the value in `column` of row `row`, if both exist.
    pub fn get(&self, row: usize, column: &str) -> Result<&Value> {
        let col = self.column_index(column)?;
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .ok_or_else(|| Error::Query(format!("row {row} out of range")))
    }

    /// Number of result rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Approximate size of the result in bytes (used for cache accounting in
    /// higher layers).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        let cells: usize = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::size_bytes).sum::<usize>())
            .sum();
        let header: usize = self.columns.iter().map(|c| c.len() + 8).sum();
        cells + header + 64
    }
}

/// Executes a planned query at `snapshot_ts`.
///
/// `me` identifies the executing transaction so that a read/write transaction
/// sees its own uncommitted writes. The buffer pool is shared and internally
/// synchronized, so execution needs only shared references to the tables —
/// many queries can run in parallel under reader locks.
pub fn execute_plan(
    plan: &QueryPlan,
    outer: &Table,
    inner: Option<&Table>,
    snapshot_ts: Timestamp,
    me: Option<TxnId>,
    buffer: &SharedBuffer,
    opts: &ExecOptions,
) -> Result<QueryResult> {
    // Index-assisted fast paths. When there is no join, ORDER BY (+ LIMIT),
    // MIN/MAX, and COUNT queries run grouped accounting loops shared by
    // *every* access path, so an index-assisted plan and the forced-SeqScan
    // reference produce bit-identical rows and validity intervals (the
    // equivalence the proptests assert). Index-backed plans merely walk fewer
    // groups to reach the same observations.
    if plan.join.is_none() {
        match &plan.query.aggregate {
            Some(Aggregate::Count) => {
                return exec_count(plan, outer, snapshot_ts, me, buffer, opts)
            }
            Some(Aggregate::Min(_)) | Some(Aggregate::Max(_)) => {
                return exec_endpoint(plan, outer, snapshot_ts, me, buffer, opts)
            }
            None if plan.query.order_by.is_some() => {
                return exec_ordered(plan, outer, snapshot_ts, me, buffer, opts)
            }
            _ => {}
        }
    }

    let mut tracker = ValidityTracker::new(opts.track_validity);
    let mut tags = plan.base_tags.clone();
    let mut pages = PageCounts::default();

    // ---- Outer table ----
    let candidate_slots = fetch_candidates(outer, &plan.access, &mut pages, buffer)?;
    let outer_schema = outer.schema();
    let mut outer_rows: Vec<Vec<Value>> = Vec::new();
    for slot in candidate_slots {
        let Some(version) = outer.get(slot) else {
            continue;
        };
        pages.record(buffer.access(&plan.table, outer.heap_page_of(slot)));
        let keep = filter_version(
            outer,
            &plan.predicate,
            version,
            snapshot_ts,
            me,
            opts,
            &mut tracker,
        )?;
        if keep {
            outer_rows.push(version.values.clone());
        }
    }

    // ---- Join ----
    let (mut columns, mut joined_rows): (Vec<String>, Vec<Vec<Value>>) = (
        outer_schema
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect(),
        Vec::new(),
    );
    if let (Some(join_plan), Some(inner_table)) = (&plan.join, inner) {
        let inner_schema = inner_table.schema();
        columns.extend(
            inner_schema
                .columns
                .iter()
                .map(|c| format!("{}.{}", inner_schema.name, c.name)),
        );
        let left_idx = outer_schema.column_index(&join_plan.join.left_column)?;
        for outer_row in &outer_rows {
            let key = &outer_row[left_idx];
            if key.is_null() {
                continue;
            }
            let inner_slots: Vec<Slot> = match join_plan.access {
                JoinAccess::IndexNestedLoop => {
                    pages.record(buffer.access(
                        &format!("{}#idx:{}", inner_schema.name, join_plan.join.right_column),
                        inner_table.index_page_of(&join_plan.join.right_column, key),
                    ));
                    if opts.track_validity {
                        tags.insert(InvalidationTag::keyed(
                            &inner_schema.name,
                            format!("{}={}", join_plan.join.right_column, key.render_key()),
                        ));
                    }
                    inner_table.index_eq(&join_plan.join.right_column, key)?
                }
                JoinAccess::NestedLoopScan => inner_table.scan_slots().collect(),
            };
            for slot in inner_slots {
                let Some(version) = inner_table.get(slot) else {
                    continue;
                };
                pages.record(buffer.access(&inner_schema.name, inner_table.heap_page_of(slot)));
                // The join condition plus the join predicate.
                let right_idx = inner_schema.column_index(&join_plan.join.right_column)?;
                let join_matches = |vals: &[Value]| vals[right_idx] == *key;
                let keep = filter_join_version(
                    inner_table,
                    &join_plan.join.predicate,
                    version,
                    snapshot_ts,
                    me,
                    opts,
                    &mut tracker,
                    &join_matches,
                )?;
                if keep {
                    let mut row = outer_row.clone();
                    row.extend(version.values.iter().cloned());
                    joined_rows.push(row);
                }
            }
        }
    } else {
        joined_rows = outer_rows;
    }

    // ---- Order by / limit ----
    if plan.query.aggregate.is_none() {
        if let Some((col, order)) = &plan.query.order_by {
            let idx = resolve_column(&columns, col)?;
            joined_rows.sort_by(|a, b| {
                let cmp = a[idx].cmp(&b[idx]);
                match order {
                    SortOrder::Asc => cmp,
                    SortOrder::Desc => cmp.reverse(),
                }
            });
        }
        if let Some(limit) = plan.query.limit {
            joined_rows.truncate(limit);
        }
    }

    // ---- Aggregate ----
    let (columns, rows) = if let Some(aggregate) = &plan.query.aggregate {
        aggregate_rows(aggregate, &columns, &joined_rows)?
    } else if let Some(projection) = &plan.query.projection {
        let indices: Vec<usize> = projection
            .iter()
            .map(|c| resolve_column(&columns, c))
            .collect::<Result<_>>()?;
        let projected = joined_rows
            .iter()
            .map(|r| indices.iter().map(|&i| r[i].clone()).collect())
            .collect();
        (projection.clone(), projected)
    } else {
        (columns, joined_rows)
    };

    Ok(QueryResult {
        columns,
        rows,
        validity: tracker.finalize(snapshot_ts),
        tags: if opts.track_validity {
            tags
        } else {
            TagSet::new()
        },
        pages,
    })
}

/// Candidate slots grouped by the value of one column, walked in key order.
///
/// For index-backed ordered/endpoint paths the groups stream lazily out of
/// the B-tree so the consumer can stop early; `charge_index` names the index
/// whose pages the consumer must charge, one per group actually visited. For
/// every other path the already-fetched candidates are grouped by the column
/// value (including a NULL group, which sorts first like NULLs do in a
/// materialized sort).
struct GroupedCandidates<'t> {
    groups: Box<dyn Iterator<Item = (Value, Vec<Slot>)> + 't>,
    charge_index: Option<String>,
}

fn grouped_candidates<'t>(
    table: &'t Table,
    access: &AccessPath,
    group_col: &str,
    desc: bool,
    pages: &mut PageCounts,
    buffer: &SharedBuffer,
) -> Result<GroupedCandidates<'t>> {
    match access {
        AccessPath::IndexOrdered { column, lo, hi, .. }
        | AccessPath::IndexEndpoint { column, lo, hi, .. }
            if column == group_col =>
        {
            let it = table
                .index_groups(column, lo.as_ref(), hi.as_ref())?
                .map(|(k, s)| (k.clone(), s.to_vec()));
            let groups: Box<dyn Iterator<Item = (Value, Vec<Slot>)> + 't> = if desc {
                Box::new(it.rev())
            } else {
                Box::new(it)
            };
            Ok(GroupedCandidates {
                groups,
                charge_index: Some(column.clone()),
            })
        }
        _ => {
            let slots = fetch_candidates(table, access, pages, buffer)?;
            let col_idx = table.schema().column_index(group_col)?;
            let mut map: BTreeMap<Value, Vec<Slot>> = BTreeMap::new();
            for slot in slots {
                if let Some(version) = table.get(slot) {
                    map.entry(version.values[col_idx].clone())
                        .or_default()
                        .push(slot);
                }
            }
            let it = map.into_iter();
            let groups: Box<dyn Iterator<Item = (Value, Vec<Slot>)> + 't> = if desc {
                Box::new(it.rev())
            } else {
                Box::new(it)
            };
            Ok(GroupedCandidates {
                groups,
                charge_index: None,
            })
        }
    }
}

/// Final tag set for a result under the given options.
fn final_tags(tags: &TagSet, opts: &ExecOptions) -> TagSet {
    if opts.track_validity {
        tags.clone()
    } else {
        TagSet::new()
    }
}

/// ORDER BY (+ LIMIT) pushdown: walk candidate groups in sort order, keep
/// visible matching rows, and stop once `limit` visible rows exist *and* the
/// current key group is complete (completing the group preserves stable tie
/// order and keeps the validity accounting exact — a version beyond the last
/// examined group can never displace a returned row while the returned rows'
/// intersected validity holds, because it sorts strictly after them).
fn exec_ordered(
    plan: &QueryPlan,
    outer: &Table,
    snapshot_ts: Timestamp,
    me: Option<TxnId>,
    buffer: &SharedBuffer,
    opts: &ExecOptions,
) -> Result<QueryResult> {
    let (col, order) = plan
        .query
        .order_by
        .as_ref()
        .ok_or_else(|| Error::Query("ordered path without order_by".into()))?;
    let outer_schema = outer.schema();
    let columns: Vec<String> = outer_schema
        .columns
        .iter()
        .map(|c| c.name.clone())
        .collect();
    let col_idx = resolve_column(&columns, col)?;
    let group_col = columns[col_idx].clone();
    let desc = matches!(order, SortOrder::Desc);

    let mut tracker = ValidityTracker::new(opts.track_validity);
    let mut pages = PageCounts::default();
    let gc = grouped_candidates(outer, &plan.access, &group_col, desc, &mut pages, buffer)?;
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for (key, slots) in gc.groups {
        if let Some(idx_col) = &gc.charge_index {
            pages.record(buffer.access(
                &format!("{}#idx:{}", plan.table, idx_col),
                outer.index_page_of(idx_col, &key),
            ));
        }
        for slot in slots {
            let Some(version) = outer.get(slot) else {
                continue;
            };
            pages.record(buffer.access(&plan.table, outer.heap_page_of(slot)));
            if filter_version(
                outer,
                &plan.predicate,
                version,
                snapshot_ts,
                me,
                opts,
                &mut tracker,
            )? {
                rows.push(version.values.clone());
            }
        }
        if plan.query.limit.is_some_and(|l| rows.len() >= l) {
            break;
        }
    }
    if let Some(limit) = plan.query.limit {
        rows.truncate(limit);
    }

    let (columns, rows) = if let Some(projection) = &plan.query.projection {
        let indices: Vec<usize> = projection
            .iter()
            .map(|c| resolve_column(&columns, c))
            .collect::<Result<_>>()?;
        let projected = rows
            .iter()
            .map(|r| indices.iter().map(|&i| r[i].clone()).collect())
            .collect();
        (projection.clone(), projected)
    } else {
        (columns, rows)
    };

    Ok(QueryResult {
        columns,
        rows,
        validity: tracker.finalize(snapshot_ts),
        tags: final_tags(&plan.base_tags, opts),
        pages,
    })
}

/// MIN/MAX endpoint probe: walk candidate groups from the matching end and
/// stop at the first group with a visible matching row. NULL-keyed groups are
/// skipped wholesale — NULLs can never be the MIN/MAX value, so their versions
/// neither tighten the validity nor enter the mask. Within the answering
/// group, invisible matching versions are discarded too (a phantom with the
/// same key cannot change the answer); invisible matching versions in more
/// extreme groups enter the mask, because their appearance *would* change it.
fn exec_endpoint(
    plan: &QueryPlan,
    outer: &Table,
    snapshot_ts: Timestamp,
    me: Option<TxnId>,
    buffer: &SharedBuffer,
    opts: &ExecOptions,
) -> Result<QueryResult> {
    let (col, max) = match &plan.query.aggregate {
        Some(Aggregate::Min(c)) => (c, false),
        Some(Aggregate::Max(c)) => (c, true),
        _ => return Err(Error::Query("endpoint path without MIN/MAX".into())),
    };
    let outer_schema = outer.schema();
    let columns: Vec<String> = outer_schema
        .columns
        .iter()
        .map(|c| c.name.clone())
        .collect();
    let col_idx = resolve_column(&columns, col)?;
    let group_col = columns[col_idx].clone();

    let mut tracker = ValidityTracker::new(opts.track_validity);
    let mut pages = PageCounts::default();
    let gc = grouped_candidates(outer, &plan.access, &group_col, max, &mut pages, buffer)?;
    let mut answer = Value::Null;
    for (key, slots) in gc.groups {
        if let Some(idx_col) = &gc.charge_index {
            pages.record(buffer.access(
                &format!("{}#idx:{}", plan.table, idx_col),
                outer.index_page_of(idx_col, &key),
            ));
        }
        if key.is_null() {
            continue;
        }
        let mut deferred: Vec<Option<ValidityInterval>> = Vec::new();
        let mut visible_match = false;
        for slot in slots {
            let Some(version) = outer.get(slot) else {
                continue;
            };
            pages.record(buffer.access(&plan.table, outer.heap_page_of(slot)));
            if opts.predicate_before_visibility {
                if !plan.predicate.eval(outer_schema, &version.values)? {
                    continue;
                }
                if !version.visible_to(snapshot_ts, me) {
                    deferred.push(version.committed_validity());
                    continue;
                }
            } else {
                if !version.visible_to(snapshot_ts, me) {
                    tracker.observe_invisible(version.committed_validity());
                    continue;
                }
                if !plan.predicate.eval(outer_schema, &version.values)? {
                    continue;
                }
            }
            tracker.observe_visible(
                version
                    .committed_validity()
                    .unwrap_or_else(|| ValidityInterval::point(snapshot_ts)),
            );
            visible_match = true;
        }
        if visible_match {
            answer = key;
            break;
        }
        for validity in deferred {
            tracker.observe_invisible(validity);
        }
    }

    let name = if max { "max" } else { "min" };
    Ok(QueryResult {
        columns: vec![name.to_string()],
        rows: vec![vec![answer]],
        validity: tracker.finalize(snapshot_ts),
        tags: final_tags(&plan.base_tags, opts),
        pages,
    })
}

/// COUNT shortcut: identical visibility/validity accounting to the generic
/// path, but no tuple values are cloned or materialized.
fn exec_count(
    plan: &QueryPlan,
    outer: &Table,
    snapshot_ts: Timestamp,
    me: Option<TxnId>,
    buffer: &SharedBuffer,
    opts: &ExecOptions,
) -> Result<QueryResult> {
    let mut tracker = ValidityTracker::new(opts.track_validity);
    let mut pages = PageCounts::default();
    let candidate_slots = fetch_candidates(outer, &plan.access, &mut pages, buffer)?;
    let mut count = 0i64;
    for slot in candidate_slots {
        let Some(version) = outer.get(slot) else {
            continue;
        };
        pages.record(buffer.access(&plan.table, outer.heap_page_of(slot)));
        if filter_version(
            outer,
            &plan.predicate,
            version,
            snapshot_ts,
            me,
            opts,
            &mut tracker,
        )? {
            count += 1;
        }
    }
    Ok(QueryResult {
        columns: vec!["count".to_string()],
        rows: vec![vec![Value::Int(count)]],
        validity: tracker.finalize(snapshot_ts),
        tags: final_tags(&plan.base_tags, opts),
        pages,
    })
}

/// Fetches candidate slots according to the access path, charging index page
/// accesses to the buffer manager.
fn fetch_candidates(
    table: &Table,
    access: &AccessPath,
    pages: &mut PageCounts,
    buffer: &SharedBuffer,
) -> Result<Vec<Slot>> {
    let name = &table.schema().name;
    match access {
        AccessPath::IndexEq { column, value } => {
            pages.record(buffer.access(
                &format!("{name}#idx:{column}"),
                table.index_page_of(column, value),
            ));
            table.index_eq(column, value)
        }
        AccessPath::IndexIn { column, values } => {
            // One probe (and one index page) per IN-list key; the union is
            // restored to heap order so downstream row order matches a scan.
            let mut slots = Vec::new();
            for value in values {
                pages.record(buffer.access(
                    &format!("{name}#idx:{column}"),
                    table.index_page_of(column, value),
                ));
                slots.extend(table.index_eq(column, value)?);
            }
            slots.sort_unstable();
            slots.dedup();
            Ok(slots)
        }
        AccessPath::IndexRange { column, lo, hi }
        | AccessPath::IndexOrdered { column, lo, hi, .. }
        | AccessPath::IndexEndpoint { column, lo, hi, .. } => {
            // Charge the index pages actually walked: one per key group
            // visited, at the page the key hashes to. (Ordered/endpoint paths
            // normally stream via `grouped_candidates`; this arm is their
            // range-equivalent fallback.)
            let mut slots = Vec::new();
            for (key, group) in table.index_groups(column, lo.as_ref(), hi.as_ref())? {
                pages.record(buffer.access(
                    &format!("{name}#idx:{column}"),
                    table.index_page_of(column, key),
                ));
                slots.extend_from_slice(group);
            }
            Ok(slots)
        }
        AccessPath::SeqScan => Ok(table.scan_slots().collect()),
    }
}

/// Applies the predicate/visibility pipeline to an outer-table version.
/// Returns whether the version belongs in the result.
fn filter_version(
    table: &Table,
    predicate: &crate::query::Predicate,
    version: &crate::tuple::TupleVersion,
    snapshot_ts: Timestamp,
    me: Option<TxnId>,
    opts: &ExecOptions,
    tracker: &mut ValidityTracker,
) -> Result<bool> {
    let schema = table.schema();
    if opts.predicate_before_visibility {
        if !predicate.eval(schema, &version.values)? {
            return Ok(false);
        }
        if !version.visible_to(snapshot_ts, me) {
            tracker.observe_invisible(version.committed_validity());
            return Ok(false);
        }
        tracker.observe_visible(
            version
                .committed_validity()
                .unwrap_or_else(|| ValidityInterval::point(snapshot_ts)),
        );
        Ok(true)
    } else {
        if !version.visible_to(snapshot_ts, me) {
            // Conservative: every invisible tuple widens the mask, whether or
            // not it would have matched the predicate.
            tracker.observe_invisible(version.committed_validity());
            return Ok(false);
        }
        if !predicate.eval(schema, &version.values)? {
            return Ok(false);
        }
        tracker.observe_visible(
            version
                .committed_validity()
                .unwrap_or_else(|| ValidityInterval::point(snapshot_ts)),
        );
        Ok(true)
    }
}

/// Same pipeline for an inner-table version, where the effective predicate is
/// the join condition plus the join's residual predicate.
#[allow(clippy::too_many_arguments)]
fn filter_join_version(
    table: &Table,
    predicate: &crate::query::Predicate,
    version: &crate::tuple::TupleVersion,
    snapshot_ts: Timestamp,
    me: Option<TxnId>,
    opts: &ExecOptions,
    tracker: &mut ValidityTracker,
    join_matches: &dyn Fn(&[Value]) -> bool,
) -> Result<bool> {
    let schema = table.schema();
    let matches = |vals: &[Value]| -> Result<bool> {
        Ok(join_matches(vals) && predicate.eval(schema, vals)?)
    };
    if opts.predicate_before_visibility {
        if !matches(&version.values)? {
            return Ok(false);
        }
        if !version.visible_to(snapshot_ts, me) {
            tracker.observe_invisible(version.committed_validity());
            return Ok(false);
        }
    } else {
        if !version.visible_to(snapshot_ts, me) {
            tracker.observe_invisible(version.committed_validity());
            return Ok(false);
        }
        if !matches(&version.values)? {
            return Ok(false);
        }
    }
    tracker.observe_visible(
        version
            .committed_validity()
            .unwrap_or_else(|| ValidityInterval::point(snapshot_ts)),
    );
    Ok(true)
}

/// Resolves a (possibly qualified) column name against the output columns.
fn resolve_column(columns: &[String], name: &str) -> Result<usize> {
    if let Some(i) = columns.iter().position(|c| c == name) {
        return Ok(i);
    }
    let suffix = format!(".{name}");
    let mut matches = columns
        .iter()
        .enumerate()
        .filter(|(_, c)| c.ends_with(&suffix));
    match (matches.next(), matches.next()) {
        (Some((i, _)), None) => Ok(i),
        (Some(_), Some(_)) => Err(Error::Query(format!("ambiguous column '{name}'"))),
        (None, _) => Err(Error::Query(format!("unknown column '{name}'"))),
    }
}

/// Computes an aggregate over the materialized rows.
fn aggregate_rows(
    aggregate: &Aggregate,
    columns: &[String],
    rows: &[Vec<Value>],
) -> Result<(Vec<String>, Vec<Vec<Value>>)> {
    let single = |name: &str, value: Value| (vec![name.to_string()], vec![vec![value]]);
    match aggregate {
        Aggregate::Count => Ok(single("count", Value::Int(rows.len() as i64))),
        Aggregate::Sum(col) => {
            let idx = resolve_column(columns, col)?;
            let sum: f64 = rows.iter().filter_map(|r| r[idx].as_float()).sum();
            Ok(single("sum", Value::Float(sum)))
        }
        Aggregate::Avg(col) => {
            let idx = resolve_column(columns, col)?;
            let vals: Vec<f64> = rows.iter().filter_map(|r| r[idx].as_float()).collect();
            let avg = if vals.is_empty() {
                Value::Null
            } else {
                Value::Float(vals.iter().sum::<f64>() / vals.len() as f64)
            };
            Ok(single("avg", avg))
        }
        Aggregate::Min(col) => {
            let idx = resolve_column(columns, col)?;
            let min = rows
                .iter()
                .map(|r| r[idx].clone())
                .filter(|v| !v.is_null())
                .min()
                .unwrap_or(Value::Null);
            Ok(single("min", min))
        }
        Aggregate::Max(col) => {
            let idx = resolve_column(columns, col)?;
            let max = rows
                .iter()
                .map(|r| r[idx].clone())
                .filter(|v| !v.is_null())
                .max()
                .unwrap_or(Value::Null);
            Ok(single("max", max))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_query;
    use crate::query::{Predicate, SelectQuery};
    use crate::schema::TableSchema;
    use crate::tuple::{Stamp, TupleVersion};
    use crate::value::ColumnType;

    fn make_items() -> Table {
        let schema = TableSchema::new("items")
            .column("id", ColumnType::Int)
            .column("seller", ColumnType::Int)
            .column("price", ColumnType::Float)
            .unique_index("id")
            .index("seller");
        let mut t = Table::new(schema, 8).unwrap();
        for i in 1..=6i64 {
            let row = t.allocate_row_id();
            t.insert_version(TupleVersion::committed(
                row,
                vec![
                    Value::Int(i),
                    Value::Int(i % 3),
                    Value::Float(10.0 * i as f64),
                ],
                Timestamp(i as u64),
            ))
            .unwrap();
        }
        t
    }

    fn make_users() -> Table {
        let schema = TableSchema::new("users")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .unique_index("id");
        let mut t = Table::new(schema, 8).unwrap();
        for i in 0..3i64 {
            let row = t.allocate_row_id();
            t.insert_version(TupleVersion::committed(
                row,
                vec![Value::Int(i), Value::text(format!("user{i}"))],
                Timestamp(1),
            ))
            .unwrap();
        }
        t
    }

    fn run(
        query: &SelectQuery,
        outer: &Table,
        inner: Option<&Table>,
        ts: u64,
        opts: &ExecOptions,
    ) -> QueryResult {
        let plan = plan_query(query, outer, inner).unwrap();
        let buffer = SharedBuffer::new(1024, 4);
        execute_plan(&plan, outer, inner, Timestamp(ts), None, &buffer, opts).unwrap()
    }

    #[test]
    fn index_eq_lookup_returns_matching_row_and_keyed_tag() {
        let items = make_items();
        let q = SelectQuery::table("items").filter(Predicate::eq("id", 3i64));
        let r = run(&q, &items, None, 10, &ExecOptions::default());
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(0, "price").unwrap(), &Value::Float(30.0));
        assert!(r
            .tags
            .tags()
            .contains(&InvalidationTag::keyed("items", "id=3")));
        assert!(r.validity.contains(Timestamp(10)));
        assert!(r.validity.is_unbounded());
    }

    #[test]
    fn seq_scan_filters_and_tags_wildcard() {
        let items = make_items();
        let q = SelectQuery::table("items").filter(Predicate::cmp(
            "price",
            crate::query::CmpOp::Ge,
            40.0,
        ));
        let r = run(&q, &items, None, 10, &ExecOptions::default());
        assert_eq!(r.len(), 3);
        assert!(r.tags.tags().contains(&InvalidationTag::wildcard("items")));
    }

    #[test]
    fn snapshot_visibility_excludes_future_rows() {
        let items = make_items();
        let q = SelectQuery::table("items");
        let r = run(&q, &items, None, 3, &ExecOptions::default());
        // Only items committed at ts <= 3.
        assert_eq!(r.len(), 3);
        // The invisible future rows bound the validity above: item 4 commits
        // at ts 4, so this result stops being the current one at 4.
        assert_eq!(
            r.validity,
            ValidityInterval::bounded(Timestamp(3), Timestamp(4)).unwrap()
        );
    }

    #[test]
    fn deleted_rows_bound_validity_below() {
        let mut items = make_items();
        // Delete item 2 at ts 9.
        let slot = items.index_eq("id", &Value::Int(2)).unwrap()[0];
        items.get_mut(slot).unwrap().deleted = Some(Stamp::Committed(Timestamp(9)));
        let q = SelectQuery::table("items");
        let r = run(&q, &items, None, 20, &ExecOptions::default());
        assert_eq!(r.len(), 5);
        // The deleted row's validity [2,9) enters the mask, so the result is
        // valid only from 9 onwards.
        assert_eq!(r.validity, ValidityInterval::unbounded(Timestamp(9)));
    }

    #[test]
    fn predicate_before_visibility_gives_wider_validity() {
        let mut items = make_items();
        // Delete item 5 (price 50) at ts 9; query asks for price <= 20 which
        // never matched item 5.
        let slot = items.index_eq("id", &Value::Int(5)).unwrap()[0];
        items.get_mut(slot).unwrap().deleted = Some(Stamp::Committed(Timestamp(9)));
        let q = SelectQuery::table("items").filter(Predicate::cmp(
            "price",
            crate::query::CmpOp::Le,
            20.0,
        ));

        let tight = run(
            &q,
            &items,
            None,
            20,
            &ExecOptions {
                track_validity: true,
                predicate_before_visibility: true,
            },
        );
        let conservative = run(
            &q,
            &items,
            None,
            20,
            &ExecOptions {
                track_validity: true,
                predicate_before_visibility: false,
            },
        );
        // With early predicate evaluation the dead tuple is filtered out before
        // it can pollute the mask, so the validity extends back to ts 2.
        assert_eq!(tight.validity, ValidityInterval::unbounded(Timestamp(2)));
        // The conservative order masks [5,9), narrowing the result.
        assert_eq!(
            conservative.validity,
            ValidityInterval::unbounded(Timestamp(9))
        );
        assert_eq!(tight.rows, conservative.rows);
    }

    #[test]
    fn join_with_index_produces_combined_rows_and_per_key_tags() {
        let items = make_items();
        let users = make_users();
        let q = SelectQuery::table("items")
            .filter(Predicate::eq("id", 4i64))
            .join("users", "seller", "id");
        let r = run(&q, &items, Some(&users), 10, &ExecOptions::default());
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(0, "name").unwrap(), &Value::text("user1"));
        assert!(r
            .tags
            .tags()
            .contains(&InvalidationTag::keyed("users", "id=1")));
    }

    #[test]
    fn projection_order_limit_and_aggregates() {
        let items = make_items();
        let q = SelectQuery::table("items")
            .select(vec!["id", "price"])
            .order_by("price", SortOrder::Desc)
            .limit(2);
        let r = run(&q, &items, None, 10, &ExecOptions::default());
        assert_eq!(r.columns, vec!["id".to_string(), "price".to_string()]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(0, "id").unwrap(), &Value::Int(6));

        let count = run(
            &SelectQuery::table("items").aggregate(Aggregate::Count),
            &items,
            None,
            10,
            &ExecOptions::default(),
        );
        assert_eq!(count.get(0, "count").unwrap(), &Value::Int(6));

        let maxq = run(
            &SelectQuery::table("items").aggregate(Aggregate::Max("price".into())),
            &items,
            None,
            10,
            &ExecOptions::default(),
        );
        assert_eq!(maxq.get(0, "max").unwrap(), &Value::Float(60.0));

        let avgq = run(
            &SelectQuery::table("items").aggregate(Aggregate::Avg("price".into())),
            &items,
            None,
            10,
            &ExecOptions::default(),
        );
        assert_eq!(avgq.get(0, "avg").unwrap(), &Value::Float(35.0));
    }

    #[test]
    fn disabled_tracking_returns_point_validity_and_no_tags() {
        let items = make_items();
        let q = SelectQuery::table("items").filter(Predicate::eq("id", 3i64));
        let r = run(
            &q,
            &items,
            None,
            10,
            &ExecOptions {
                track_validity: false,
                predicate_before_visibility: true,
            },
        );
        assert_eq!(r.validity, ValidityInterval::point(Timestamp(10)));
        assert!(r.tags.is_empty());
    }

    #[test]
    fn pending_rows_of_own_transaction_are_visible() {
        let mut items = make_items();
        let row = items.allocate_row_id();
        items
            .insert_version(TupleVersion::pending(
                row,
                vec![Value::Int(99), Value::Int(0), Value::Float(1.0)],
                77,
            ))
            .unwrap();
        let q = SelectQuery::table("items").filter(Predicate::eq("id", 99i64));
        let plan = plan_query(&q, &items, None).unwrap();
        let buffer = SharedBuffer::new(64, 2);
        let mine = execute_plan(
            &plan,
            &items,
            None,
            Timestamp(10),
            Some(77),
            &buffer,
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(mine.len(), 1);
        let theirs = execute_plan(
            &plan,
            &items,
            None,
            Timestamp(10),
            Some(78),
            &buffer,
            &ExecOptions::default(),
        )
        .unwrap();
        assert!(theirs.is_empty());
    }

    #[test]
    fn ordered_top_n_matches_forced_seq_scan_rows_and_validity() {
        let mut items = make_items();
        // Delete item 6 at ts 9: the Desc walk examines it first, masks
        // [6, 9), and the top-2 becomes [5, 4].
        let slot = items.index_eq("id", &Value::Int(6)).unwrap()[0];
        items.get_mut(slot).unwrap().deleted = Some(Stamp::Committed(Timestamp(9)));
        let q = SelectQuery::table("items")
            .order_by("id", SortOrder::Desc)
            .limit(2);
        let plan = plan_query(&q, &items, None).unwrap();
        assert!(matches!(plan.access, AccessPath::IndexOrdered { .. }));
        let natural = run(&q, &items, None, 20, &ExecOptions::default());
        let forced = run(
            &q.clone().force_seq_scan(),
            &items,
            None,
            20,
            &ExecOptions::default(),
        );
        assert_eq!(natural.rows, forced.rows);
        assert_eq!(natural.validity, forced.validity);
        assert_eq!(natural.get(0, "id").unwrap(), &Value::Int(5));
        assert_eq!(natural.get(1, "id").unwrap(), &Value::Int(4));
        assert_eq!(natural.validity, ValidityInterval::unbounded(Timestamp(9)));
    }

    #[test]
    fn min_endpoint_matches_forced_scan_and_masks_deleted_minimum() {
        let mut items = make_items();
        // Delete item 1 at ts 9: MIN(id) at ts 20 is 2, and the deleted
        // extreme must bound the validity below (it was the answer until 9).
        let slot = items.index_eq("id", &Value::Int(1)).unwrap()[0];
        items.get_mut(slot).unwrap().deleted = Some(Stamp::Committed(Timestamp(9)));
        let q = SelectQuery::table("items").aggregate(Aggregate::Min("id".into()));
        let plan = plan_query(&q, &items, None).unwrap();
        assert!(matches!(
            plan.access,
            AccessPath::IndexEndpoint { max: false, .. }
        ));
        let natural = run(&q, &items, None, 20, &ExecOptions::default());
        let forced = run(
            &q.clone().force_seq_scan(),
            &items,
            None,
            20,
            &ExecOptions::default(),
        );
        assert_eq!(natural.get(0, "min").unwrap(), &Value::Int(2));
        assert_eq!(natural.rows, forced.rows);
        assert_eq!(natural.validity, forced.validity);
        assert_eq!(natural.validity, ValidityInterval::unbounded(Timestamp(9)));
    }

    #[test]
    fn max_endpoint_stops_at_first_visible_group() {
        let items = make_items();
        let q = SelectQuery::table("items").aggregate(Aggregate::Max("id".into()));
        let r = run(&q, &items, None, 10, &ExecOptions::default());
        assert_eq!(r.get(0, "max").unwrap(), &Value::Int(6));
        // Only the endpoint group is walked: one index page + one heap page.
        assert_eq!(r.pages.total(), 2);
    }

    #[test]
    fn count_shortcut_matches_forced_scan() {
        let items = make_items();
        let q = SelectQuery::table("items")
            .filter(Predicate::eq("seller", 0i64))
            .aggregate(Aggregate::Count);
        let plan = plan_query(&q, &items, None).unwrap();
        assert!(matches!(plan.access, AccessPath::IndexEq { .. }));
        let natural = run(&q, &items, None, 10, &ExecOptions::default());
        let forced = run(
            &q.clone().force_seq_scan(),
            &items,
            None,
            10,
            &ExecOptions::default(),
        );
        assert_eq!(natural.get(0, "count").unwrap(), &Value::Int(2));
        assert_eq!(natural.rows, forced.rows);
        assert_eq!(natural.validity, forced.validity);
    }

    #[test]
    fn in_list_probes_match_forced_scan_and_tag_each_key() {
        let items = make_items();
        // 99 is absent but probed: its keyed tag must still be emitted,
        // because the (empty) result depends on the key staying absent.
        let q = SelectQuery::table("items").filter(Predicate::in_list("id", [5i64, 2, 99]));
        let plan = plan_query(&q, &items, None).unwrap();
        assert!(matches!(plan.access, AccessPath::IndexIn { .. }));
        let natural = run(&q, &items, None, 10, &ExecOptions::default());
        let forced = run(
            &q.clone().force_seq_scan(),
            &items,
            None,
            10,
            &ExecOptions::default(),
        );
        assert_eq!(natural.rows, forced.rows);
        assert_eq!(natural.validity, forced.validity);
        assert_eq!(natural.len(), 2);
        assert_eq!(natural.get(0, "id").unwrap(), &Value::Int(2));
        for key in ["id=2", "id=5", "id=99"] {
            assert!(natural
                .tags
                .tags()
                .contains(&InvalidationTag::keyed("items", key)));
        }
        assert!(!natural
            .tags
            .tags()
            .contains(&InvalidationTag::wildcard("items")));
    }

    #[test]
    fn result_helpers() {
        let items = make_items();
        let q = SelectQuery::table("items").filter(Predicate::eq("id", 1i64));
        let r = run(&q, &items, None, 10, &ExecOptions::default());
        assert!(r.column_index("id").is_ok());
        assert!(r.column_index("nope").is_err());
        assert!(r.get(5, "id").is_err());
        assert!(r.size_bytes() > 0);
        assert!(r.pages.total() > 0);
    }
}
