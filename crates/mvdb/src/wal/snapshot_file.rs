//! Snapshot files: a checksummed, atomically-renamed serialization of the
//! version store *and* the invalidation horizon.
//!
//! The split mirrors spineldb's `aof_writer`/`spldb_saver` pair: the WAL
//! ([`super::log`]) is the always-appending durability path; snapshots are
//! the background compaction path that bounds replay time. A snapshot file
//! is written to `snap-{ts}.snap.tmp`, fsynced, renamed to
//! `snap-{ts}.snap`, and the directory fsynced — a crash mid-write leaves
//! only a `.tmp` that recovery ignores, and a crash mid-rename leaves either
//! the old name or the new one, never a half-file.
//!
//! Layout: `MVSNAP01` magic, a [`wire`]-encoded payload, and a trailing
//! FNV-1a checksum of the payload. Recovery walks snapshots newest-first
//! and uses the first one whose checksum verifies, so a corrupted newest
//! snapshot degrades to "older snapshot + longer replay", never to an error.

use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use txtypes::{Error, Result, Timestamp};
use wire::{Reader, Writer};

use crate::invalidation::InvalidationMessage;
use crate::schema::TableSchema;
use crate::value::Value;
use crate::wal::codec::{checksum_of, get_schema, put_schema};
use crate::wal::log::sync_dir;

const MAGIC: &[u8; 8] = b"MVSNAP01";
const SNAP_PREFIX: &str = "snap-";
const SNAP_SUFFIX: &str = ".snap";

/// One committed tuple version inside a snapshot. Pending stamps never
/// reach disk: a snapshot is consistent as of its timestamp, so in-flight
/// transactions are simply absent.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotVersion {
    /// Logical row identity.
    pub row_id: u64,
    /// Commit timestamp that created the version.
    pub created_ts: Timestamp,
    /// Commit timestamp that deleted it, if any (≤ the snapshot timestamp).
    pub deleted_ts: Option<Timestamp>,
    /// Column values.
    pub values: Vec<Value>,
}

/// One table's slice of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotTable {
    /// The table's schema, including indexes.
    pub schema: TableSchema,
    /// The next row id the table would hand out.
    pub next_row_id: u64,
    /// Every version visible at the snapshot timestamp's horizon, in
    /// arbitrary slot order.
    pub versions: Vec<SnapshotVersion>,
}

/// A full database snapshot: version store + invalidation horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotImage {
    /// The timestamp the snapshot is consistent at: every commit ≤ this is
    /// included, nothing later is.
    pub snapshot_ts: Timestamp,
    /// The vacuum watermark at capture time; restored so pins below it are
    /// refused after recovery exactly as before the crash.
    pub vacuum_watermark: Timestamp,
    /// The invalidation log up to `snapshot_ts` — the recovered horizon
    /// caches seal against at reconnect.
    pub invalidations: Vec<InvalidationMessage>,
    /// All tables.
    pub tables: Vec<SnapshotTable>,
}

fn io_err(what: &str, e: std::io::Error) -> Error {
    Error::Serialization(format!("snapshot io ({what}): {e}"))
}

fn codec_err(what: &str, e: impl std::fmt::Display) -> Error {
    Error::Serialization(format!("snapshot {what}: {e}"))
}

fn encode_payload(image: &SnapshotImage) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_timestamp(image.snapshot_ts);
    w.put_timestamp(image.vacuum_watermark);
    w.put_u32(image.invalidations.len() as u32);
    for m in &image.invalidations {
        w.put_timestamp(m.timestamp);
        w.put_wallclock(m.committed_at);
        w.put_tagset(&m.tags);
    }
    w.put_u32(image.tables.len() as u32);
    for t in &image.tables {
        put_schema(&mut w, &t.schema);
        w.put_u64(t.next_row_id);
        w.put_u32(t.versions.len() as u32);
        for v in &t.versions {
            w.put_u64(v.row_id);
            w.put_timestamp(v.created_ts);
            match v.deleted_ts {
                Some(ts) => {
                    w.put_u8(1);
                    w.put_timestamp(ts);
                }
                None => w.put_u8(0),
            }
            w.put_u32(v.values.len() as u32);
            for value in &v.values {
                super::codec::put_value(&mut w, value);
            }
        }
    }
    w.into_vec()
}

fn decode_payload(payload: &[u8]) -> Result<SnapshotImage> {
    let mut r = Reader::new(payload);
    let snapshot_ts = r.get_timestamp().map_err(|e| codec_err("ts", e))?;
    let vacuum_watermark = r.get_timestamp().map_err(|e| codec_err("watermark", e))?;
    let inv_count = r.get_u32().map_err(|e| codec_err("inv count", e))?;
    let mut invalidations = Vec::with_capacity(inv_count as usize);
    for _ in 0..inv_count {
        let timestamp = r.get_timestamp().map_err(|e| codec_err("inv ts", e))?;
        let committed_at = r.get_wallclock().map_err(|e| codec_err("inv wall", e))?;
        let tags = r.get_tagset().map_err(|e| codec_err("inv tags", e))?;
        invalidations.push(InvalidationMessage {
            timestamp,
            tags,
            committed_at,
        });
    }
    let table_count = r.get_u32().map_err(|e| codec_err("table count", e))?;
    let mut tables = Vec::with_capacity(table_count as usize);
    for _ in 0..table_count {
        let schema = get_schema(&mut r)?;
        let next_row_id = r.get_u64().map_err(|e| codec_err("next row id", e))?;
        let version_count = r.get_u32().map_err(|e| codec_err("version count", e))?;
        let mut versions = Vec::with_capacity(version_count as usize);
        for _ in 0..version_count {
            let row_id = r.get_u64().map_err(|e| codec_err("row id", e))?;
            let created_ts = r.get_timestamp().map_err(|e| codec_err("created", e))?;
            let deleted_ts = if r.get_u8().map_err(|e| codec_err("deleted flag", e))? != 0 {
                Some(r.get_timestamp().map_err(|e| codec_err("deleted", e))?)
            } else {
                None
            };
            let value_count = r.get_u32().map_err(|e| codec_err("value count", e))?;
            let mut values = Vec::with_capacity(value_count as usize);
            for _ in 0..value_count {
                values.push(super::codec::get_value(&mut r)?);
            }
            versions.push(SnapshotVersion {
                row_id,
                created_ts,
                deleted_ts,
                values,
            });
        }
        tables.push(SnapshotTable {
            schema,
            next_row_id,
            versions,
        });
    }
    r.finish().map_err(|e| codec_err("trailing bytes", e))?;
    Ok(SnapshotImage {
        snapshot_ts,
        vacuum_watermark,
        invalidations,
        tables,
    })
}

/// The file name a snapshot at `ts` lives under (zero-padded hex so
/// lexicographic order equals timestamp order).
#[must_use]
pub fn snapshot_file_name(ts: Timestamp) -> String {
    format!("{SNAP_PREFIX}{:016x}{SNAP_SUFFIX}", ts.0)
}

fn parse_snapshot_name(name: &str) -> Option<Timestamp> {
    let hex = name.strip_prefix(SNAP_PREFIX)?.strip_suffix(SNAP_SUFFIX)?;
    u64::from_str_radix(hex, 16).ok().map(Timestamp)
}

/// Serializes `image` and atomically installs it in `dir`: temp file,
/// fsync, rename, directory fsync. `crash_mid_write` (test-only) aborts
/// after the temp file is complete but before the rename, modelling a power
/// cut at the worst moment.
pub fn write_snapshot(dir: &Path, image: &SnapshotImage, crash_mid_write: bool) -> Result<PathBuf> {
    let payload = encode_payload(image);
    let mut bytes = Vec::with_capacity(MAGIC.len() + payload.len() + 8);
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&payload);
    bytes.extend_from_slice(&checksum_of(&payload).to_le_bytes());

    let final_path = dir.join(snapshot_file_name(image.snapshot_ts));
    let tmp_path = final_path.with_extension("snap.tmp");
    {
        let mut f = File::create(&tmp_path).map_err(|e| io_err("create", e))?;
        f.write_all(&bytes).map_err(|e| io_err("write", e))?;
        f.sync_all().map_err(|e| io_err("sync", e))?;
    }
    if crash_mid_write {
        return Err(super::log::crashed_err());
    }
    std::fs::rename(&tmp_path, &final_path).map_err(|e| io_err("rename", e))?;
    sync_dir(dir)?;
    Ok(final_path)
}

/// Reads and verifies one snapshot file. Fails on bad magic, short file, or
/// checksum mismatch.
pub fn read_snapshot(path: &Path) -> Result<SnapshotImage> {
    let bytes = std::fs::read(path).map_err(|e| io_err("read", e))?;
    if bytes.len() < MAGIC.len() + 8 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(codec_err("header", "bad magic or short file"));
    }
    let payload = &bytes[MAGIC.len()..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    if checksum_of(payload) != stored {
        return Err(codec_err("checksum", "mismatch"));
    }
    decode_payload(payload)
}

/// All snapshot files in `dir`, newest first. `.tmp` leftovers from a crash
/// mid-write are ignored (and are not an error).
pub fn list_snapshots(dir: &Path) -> Result<Vec<(Timestamp, PathBuf)>> {
    let mut found = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("read dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read dir entry", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(ts) = parse_snapshot_name(name) {
            found.push((ts, entry.path()));
        }
    }
    found.sort_by_key(|&(ts, _)| std::cmp::Reverse(ts));
    Ok(found)
}

/// Removes snapshots older than the newest `keep` (dead weight once a newer
/// snapshot is durable). Best-effort: removal errors are ignored.
pub fn prune_snapshots(dir: &Path, keep: usize) -> Result<usize> {
    let snaps = list_snapshots(dir)?;
    let mut removed = 0;
    for (_, path) in snaps.into_iter().skip(keep) {
        if std::fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ColumnType;
    use txtypes::{InvalidationTag, WallClock};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mvdb-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_image(ts: u64) -> SnapshotImage {
        SnapshotImage {
            snapshot_ts: Timestamp(ts),
            vacuum_watermark: Timestamp(ts / 2),
            invalidations: vec![InvalidationMessage {
                timestamp: Timestamp(ts),
                tags: [InvalidationTag::keyed("accounts", "id=1")]
                    .into_iter()
                    .collect(),
                committed_at: WallClock::from_secs(3),
            }],
            tables: vec![SnapshotTable {
                schema: TableSchema::new("accounts")
                    .column("id", ColumnType::Int)
                    .column("balance", ColumnType::Int)
                    .unique_index("id"),
                next_row_id: 2,
                versions: vec![
                    SnapshotVersion {
                        row_id: 0,
                        created_ts: Timestamp(1),
                        deleted_ts: Some(Timestamp(ts)),
                        values: vec![Value::Int(1), Value::Int(900)],
                    },
                    SnapshotVersion {
                        row_id: 1,
                        created_ts: Timestamp(ts),
                        deleted_ts: None,
                        values: vec![Value::Int(2), Value::Int(1100)],
                    },
                ],
            }],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = temp_dir("roundtrip");
        let image = sample_image(7);
        let path = write_snapshot(&dir, &image, false).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), image);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn listing_is_newest_first_and_skips_tmp() {
        let dir = temp_dir("list");
        write_snapshot(&dir, &sample_image(3), false).unwrap();
        write_snapshot(&dir, &sample_image(9), false).unwrap();
        // A crash mid-write leaves a .tmp behind.
        let err = write_snapshot(&dir, &sample_image(12), true);
        assert!(err.is_err());
        let snaps = list_snapshots(&dir).unwrap();
        assert_eq!(
            snaps.iter().map(|(ts, _)| ts.0).collect::<Vec<_>>(),
            vec![9, 3]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksum_is_rejected() {
        let dir = temp_dir("corrupt");
        let path = write_snapshot(&dir, &sample_image(5), false).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = bytes.len() / 2;
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_snapshot(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pruning_keeps_the_newest() {
        let dir = temp_dir("prune");
        for ts in [2, 4, 6, 8] {
            write_snapshot(&dir, &sample_image(ts), false).unwrap();
        }
        assert_eq!(prune_snapshots(&dir, 2).unwrap(), 2);
        let snaps = list_snapshots(&dir).unwrap();
        assert_eq!(
            snaps.iter().map(|(ts, _)| ts.0).collect::<Vec<_>>(),
            vec![8, 6]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
