//! Minimal readiness polling over Linux `epoll(7)`.
//!
//! The event-driven `txcached` server needs exactly four operations: create
//! an interest set, add/modify/remove a file descriptor with a caller-chosen
//! token, and block until some registered descriptor is ready. This crate
//! wraps the three `epoll` syscalls behind a safe [`Poller`] type and nothing
//! more — no reactor, no callbacks, no executor. The server supplies its own
//! loop, buffers, and wake channel.
//!
//! ## Model
//!
//! * **Level-triggered.** `wait` reports a descriptor as long as it *is*
//!   ready, not only on the edge where it becomes ready. The server can
//!   therefore read or write as much as it likes per wakeup without fear of
//!   losing a readiness notification — the descriptor shows up again on the
//!   next `wait` if bytes remain. The cost (spurious wakeups when a buffer
//!   is intentionally left full) is handled by deregistering interest the
//!   server cannot act on, e.g. dropping `EPOLLOUT` once a connection's
//!   write buffer drains, or dropping the listener's `EPOLLIN` while
//!   accepting is backed off after fd exhaustion.
//! * **Tokens, not pointers.** Each registration carries a `u64` token that
//!   comes back in the [`Event`]; the server maps tokens to connections.
//!   Nothing is borrowed across the syscall boundary.
//! * **Errors surface as readiness.** `EPOLLERR`/`EPOLLHUP` are always
//!   reported (they cannot be masked); they are exposed via
//!   [`Event::is_error`] / [`Event::is_hangup`] so the loop can tear the
//!   connection down through its normal read path (a read on such a
//!   descriptor returns 0 or an error).
//!
//! The FFI layer declares the three syscall wrappers `std` itself links from
//! libc; no external crate is required. `epoll_event` is `packed` on x86-64
//! only, matching the kernel ABI quirk inherited from the 32-bit layout.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::c_int;
use std::time::Duration;

// epoll_event carries a 32-bit event mask and a 64-bit user datum. On
// x86-64 the kernel ABI packs the struct (no padding after `events`);
// everywhere else natural alignment applies.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// Which readiness conditions a registration asks to be told about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    read: bool,
    write: bool,
}

impl Interest {
    /// Interest in readability (and peer hangup).
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Interest in writability.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Interest in both directions.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
    /// No readiness interest — the registration stays (errors and hangups
    /// are always reported) but neither readable nor writable wakes the
    /// poller. Used to park a connection under backpressure.
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.read {
            m |= EPOLLIN;
        }
        if self.write {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness notification from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token supplied when the descriptor was registered.
    pub token: u64,
    mask: u32,
}

impl Event {
    /// The descriptor has bytes to read (or a pending connection to
    /// accept). Also set on peer half-close so the read path observes the
    /// EOF.
    #[must_use]
    pub fn is_readable(self) -> bool {
        self.mask & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0
    }

    /// The descriptor can accept more outgoing bytes.
    #[must_use]
    pub fn is_writable(self) -> bool {
        self.mask & EPOLLOUT != 0
    }

    /// An error condition is pending (e.g. connection reset); the next
    /// read or write will surface it.
    #[must_use]
    pub fn is_error(self) -> bool {
        self.mask & EPOLLERR != 0
    }

    /// The peer closed its end (full or half close).
    #[must_use]
    pub fn is_hangup(self) -> bool {
        self.mask & (EPOLLHUP | EPOLLRDHUP) != 0
    }
}

/// Reusable buffer for readiness notifications, sized once and filled by
/// each [`Poller::wait`] call.
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// Creates a buffer that can carry up to `capacity` notifications per
    /// wait (excess readiness is simply reported on the next wait —
    /// level-triggering makes that lossless).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Iterates over the notifications from the most recent wait.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| Event {
            token: raw.data,
            mask: raw.events,
        })
    }

    /// Number of notifications delivered by the most recent wait.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the most recent wait timed out with nothing ready.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A level-triggered epoll interest set.
///
/// The poller owns only the epoll descriptor; registered descriptors are
/// borrowed by raw fd and must outlive their registration (the server
/// deregisters before closing a connection).
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates an empty interest set.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 allocates a new descriptor; no pointers.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        let mut event = event;
        let ptr = event
            .as_mut()
            .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
        // SAFETY: `ptr` is null (DEL) or points at a live stack value for
        // the duration of the call; the kernel copies it synchronously.
        if unsafe { epoll_ctl(self.epfd, op, fd, ptr) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Adds `fd` to the interest set under `token`.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Changes the interest (and token) of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Removes `fd` from the interest set. Must happen before the fd is
    /// closed if any other clone of the description remains open.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Blocks until at least one registered descriptor is ready, the
    /// timeout elapses (`events` left empty), or a signal interrupts the
    /// wait (reported as ready-nothing rather than an error, so callers
    /// simply loop). `None` waits forever.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: c_int = match timeout {
            None => -1,
            // Round up so a 100µs timeout spins on 1ms ticks instead of 0ms
            // busy-waiting.
            Some(d) => c_int::try_from(d.as_millis().max(u128::from(!d.is_zero() as u8)))
                .unwrap_or(c_int::MAX),
        };
        let capacity = c_int::try_from(events.buf.len()).unwrap_or(c_int::MAX);
        // SAFETY: the buffer outlives the call and its length is passed.
        let n = unsafe { epoll_wait(self.epfd, events.buf.as_mut_ptr(), capacity, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                events.len = 0;
                return Ok(());
            }
            return Err(err);
        }
        events.len = n as usize;
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: closing the epoll fd we created; errors on close are
        // unreportable here and harmless.
        unsafe {
            let _ = close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readable_after_peer_writes() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Events::with_capacity(8);
        // Nothing written yet: a zero-ish timeout reports nothing ready.
        poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert!(events.is_empty());

        a.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let event = events.iter().next().expect("readable event");
        assert_eq!(event.token, 7);
        assert!(event.is_readable());
        assert!(!event.is_writable());
    }

    #[test]
    fn level_triggering_reports_until_drained() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        let poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 1, Interest::READ).unwrap();
        a.write_all(b"abc").unwrap();

        let mut events = Events::with_capacity(4);
        for _ in 0..2 {
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "still ready while bytes remain");
        }
        let mut buf = [0u8; 8];
        let n = b.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"abc");
        poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert!(events.is_empty(), "drained socket is no longer readable");
    }

    #[test]
    fn modify_and_deregister_change_what_is_reported() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let poller = Poller::new().unwrap();
        // A fresh socket with write interest is immediately writable.
        poller.register(b.as_raw_fd(), 2, Interest::WRITE).unwrap();
        let mut events = Events::with_capacity(4);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().next().unwrap().is_writable());

        // Switch to read interest: no longer reported merely-writable.
        poller.modify(b.as_raw_fd(), 2, Interest::READ).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert!(events.is_empty());

        // Deregister: even readable data goes unreported.
        a.write_all(b"x").unwrap();
        poller.deregister(b.as_raw_fd()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn hangup_is_reported_as_readable() {
        let (a, b) = UnixStream::pair().unwrap();
        let poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 3, Interest::READ).unwrap();
        drop(a);
        let mut events = Events::with_capacity(4);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let event = events.iter().next().expect("hangup event");
        assert!(event.is_hangup());
        // Readable too, so a read loop observes the EOF naturally.
        assert!(event.is_readable());
    }
}
