//! Cache-node thread-scaling sweep and CI regression gate.
//!
//! Drives a mixed lookup/insert workload (90% versioned lookups, 10%
//! inserts) against ONE cache node at `--threads 1,2,4,8`, twice:
//!
//! * **in-process** — threads call the sharded [`CacheNode`] directly, the
//!   configuration the `CacheCluster` backend uses;
//! * **loopback TCP** — each thread owns one connection to a real
//!   [`TxcachedServer`], the `RemoteCluster` configuration.
//!
//! With the sharded store, lookups on distinct keys take shared or disjoint
//! shard locks, so in-process throughput should scale with cores; the
//! per-shard wait counters printed below show where contention remains. The
//! binary doubles as the CI gate (`ci.sh --bench-smoke`): the in-process
//! sweep is recorded as JSON and compared against
//! `crates/bench/BENCH_cache_scaling.baseline.json` with the same
//! regression/speedup rules as the fig5 gate.
//!
//! A third phase measures **instrumentation overhead**: the same
//! single-connection workload against a fully instrumented server
//! (`NodeConfig::metrics = true`, the default: per-opcode latency
//! histograms, per-request tracing, slow-op ring) and against one with
//! metrics off (no per-request clock reads at all). Each round measures
//! the trimmed mean ns/op (middle 80%), rounds run in adjacent on/off
//! pairs, and the comparison is the median per-pair cost ratio — host
//! drift cancels within a pair and scheduling bursts are discarded by the
//! median. With `--overhead-gate` the binary fails if the instrumented
//! cost exceeds the no-op mode by more than 5%.
//!
//! ```text
//! cache_scaling [--threads 1,2,4,8] [--requests N] [--json PATH]
//!               [--baseline PATH] [--max-regress 0.2] [--min-speedup X]
//!               [--skip-tcp] [--overhead-gate]
//! ```

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use bench::{gate_failures, BenchArgs, SweepReport};
use bytes::Bytes;
use cache_server::{CacheNode, LookupRequest, NodeConfig, TxcachedServer};
use txtypes::{CacheKey, TagSet, Timestamp, ValidityInterval, WallClock};
use wire::{FramedStream, Request, Response};

/// Keys warmed into the node before measuring.
const WARM_KEYS: u64 = 4_096;
const VALUE_BYTES: usize = 128;

fn key(i: u64) -> CacheKey {
    CacheKey::new("get_item", format!("[{i}]"))
}

/// Deterministic mixer so the op stream needs no RNG dependency.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn node() -> CacheNode {
    // Generous capacity: this sweep measures lock scaling, not eviction.
    let node = CacheNode::new(
        "bench",
        NodeConfig {
            capacity_bytes: 256 << 20,
            ..NodeConfig::default()
        },
    );
    for i in 0..WARM_KEYS {
        node.insert(
            key(i),
            Bytes::from(vec![7u8; VALUE_BYTES]),
            ValidityInterval::unbounded(Timestamp(1)),
            TagSet::new(),
            WallClock::ZERO,
        );
    }
    // Advance the invalidation horizon so still-valid entries are servable.
    node.note_timestamp(Timestamp(1_000_000));
    node
}

/// One thread's share of the mixed workload against the in-process node.
fn drive_in_process(node: &CacheNode, thread: u64, ops: u64) {
    let request = LookupRequest::at(Timestamp(500));
    let mut fresh = WARM_KEYS + thread * 10_000_000;
    for i in 0..ops {
        let r = mix(thread.wrapping_mul(0x1_0000_0001).wrapping_add(i));
        if r.is_multiple_of(10) {
            fresh += 1;
            node.insert(
                key(fresh),
                Bytes::from(vec![7u8; VALUE_BYTES]),
                ValidityInterval::unbounded(Timestamp(1)),
                TagSet::new(),
                WallClock::ZERO,
            );
        } else {
            let hit = node.lookup(&key(r % WARM_KEYS), &request).is_hit();
            assert!(hit, "warm key must hit");
        }
    }
}

/// One thread's share against the TCP server, over its own connection.
fn drive_tcp(addr: std::net::SocketAddr, thread: u64, ops: u64) {
    let stream = TcpStream::connect(addr).expect("connect loopback txcached");
    stream.set_nodelay(true).expect("set nodelay");
    let mut conn = FramedStream::new(stream);
    let mut fresh = WARM_KEYS + thread * 10_000_000;
    for i in 0..ops {
        let r = mix(thread.wrapping_mul(0x2_0000_0003).wrapping_add(i));
        if r.is_multiple_of(10) {
            fresh += 1;
            let ack = conn
                .call(&Request::Put {
                    key: key(fresh),
                    value: Bytes::from(vec![7u8; VALUE_BYTES]),
                    validity: ValidityInterval::unbounded(Timestamp(1)),
                    tags: TagSet::new(),
                    now: WallClock::ZERO,
                })
                .expect("put");
            assert_eq!(ack, Response::PutAck);
        } else {
            let got = conn
                .call(&Request::VersionedGet {
                    key: key(r % WARM_KEYS),
                    pinset_lo: Timestamp(500),
                    pinset_hi: Timestamp(500),
                    freshness_lo: Timestamp(500),
                })
                .expect("get");
            assert!(matches!(got, Response::Hit { .. }), "warm key must hit");
        }
    }
}

/// Warms a TCP server with the standard key set and advances its
/// invalidation horizon so still-valid entries are servable.
fn warm_tcp(addr: std::net::SocketAddr) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("set nodelay");
    let mut warm = FramedStream::new(stream);
    for i in 0..WARM_KEYS {
        warm.call(&Request::Put {
            key: key(i),
            value: Bytes::from(vec![7u8; VALUE_BYTES]),
            validity: ValidityInterval::unbounded(Timestamp(1)),
            tags: TagSet::new(),
            now: WallClock::ZERO,
        })
        .expect("warm put");
    }
    warm.call(&Request::InvalidationBatch {
        events: Vec::new(),
        heartbeat: Timestamp(1_000_000),
    })
    .expect("warm heartbeat");
}

/// Runs the sweep, returning measured ops/s per thread count.
fn sweep(
    label: &str,
    threads: &[usize],
    requests: usize,
    run: impl Fn(u64, u64) + Sync,
) -> Vec<f64> {
    let mut rates = Vec::with_capacity(threads.len());
    println!("\n  {label}:");
    for &t in threads {
        let ops_per_thread = (requests / t.max(1)).max(1) as u64;
        let started = Instant::now();
        std::thread::scope(|scope| {
            for thread in 0..t as u64 {
                let run = &run;
                scope.spawn(move || run(thread, ops_per_thread));
            }
        });
        let elapsed = started.elapsed().as_secs_f64().max(1e-9);
        let total_ops = ops_per_thread * t as u64;
        let rate = total_ops as f64 / elapsed;
        println!("    {t:>2} thread(s): {rate:>10.0} ops/s ({total_ops} ops)");
        rates.push(rate);
    }
    rates
}

/// One overhead round: a fresh server with metrics on or off, the standard
/// warm set, then `requests` timed round-trips over one connection.
/// Returns the trimmed mean ns/op over the middle 80% of per-op latencies —
/// host scheduling noise lands in the tails of the per-op distribution, so
/// trimming isolates the steady-state cost wall-clock throughput can't.
/// The instrumented server is also asked for its metrics snapshot so the
/// phase doubles as a sanity check that the histograms really recorded (an
/// accidentally dead no-op path would otherwise "win" the comparison).
fn overhead_round(requests: usize, metrics: bool) -> f64 {
    let server = TxcachedServer::bind(
        "127.0.0.1:0",
        "bench-node",
        NodeConfig {
            capacity_bytes: 256 << 20,
            metrics,
            ..NodeConfig::default()
        },
    )
    .expect("bind loopback txcached");
    let addr = server.local_addr();
    warm_tcp(addr);

    let stream = TcpStream::connect(addr).expect("connect loopback txcached");
    stream.set_nodelay(true).expect("set nodelay");
    let mut conn = FramedStream::new(stream);
    let ops = requests.max(100) as u64;
    let mut fresh = WARM_KEYS + 20_000_000;
    let mut samples_ns = Vec::with_capacity(ops as usize);
    for i in 0..ops {
        let r = mix(0x5eed_0b50_u64.wrapping_add(i));
        let started = Instant::now();
        if r.is_multiple_of(10) {
            fresh += 1;
            let ack = conn
                .call(&Request::Put {
                    key: key(fresh),
                    value: Bytes::from(vec![7u8; VALUE_BYTES]),
                    validity: ValidityInterval::unbounded(Timestamp(1)),
                    tags: TagSet::new(),
                    now: WallClock::ZERO,
                })
                .expect("put");
            assert_eq!(ack, Response::PutAck);
        } else {
            let got = conn
                .call(&Request::VersionedGet {
                    key: key(r % WARM_KEYS),
                    pinset_lo: Timestamp(500),
                    pinset_hi: Timestamp(500),
                    freshness_lo: Timestamp(500),
                })
                .expect("get");
            assert!(matches!(got, Response::Hit { .. }), "warm key must hit");
        }
        samples_ns.push(started.elapsed().as_nanos() as u64);
    }

    let recorded: u64 = server
        .metrics()
        .histograms
        .iter()
        .map(|(_, h)| h.count)
        .sum();
    if metrics {
        assert!(
            recorded >= ops,
            "instrumented server must have recorded per-op latencies \
             (got {recorded} for {ops} ops)"
        );
    } else {
        assert_eq!(
            recorded, 0,
            "metrics-off server must take no latency samples"
        );
    }

    let lo = samples_ns.len() / 10;
    let hi = samples_ns.len() - lo;
    samples_ns.select_nth_unstable(lo);
    samples_ns[lo..].select_nth_unstable(hi - 1 - lo);
    let middle = &samples_ns[lo..hi];
    middle.iter().sum::<u64>() as f64 / middle.len() as f64
}

/// Instrumented vs no-op per-op cost. Rounds run in adjacent on/off pairs
/// and the comparison is the MEDIAN of the per-pair ratios: host-load drift
/// over seconds is nearly identical within a pair (so it cancels in the
/// ratio), and the median discards pairs where a scheduling burst landed on
/// one side anyway. Returns `(best instrumented ns/op, best no-op ns/op,
/// median overhead fraction)`.
fn overhead_phase(requests: usize, rounds: usize) -> (f64, f64, f64) {
    let mut best_on = f64::INFINITY;
    let mut best_off = f64::INFINITY;
    let mut ratios = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let on = overhead_round(requests, true);
        let off = overhead_round(requests, false);
        best_on = best_on.min(on);
        best_off = best_off.min(off);
        ratios.push(on / off.max(1e-9));
    }
    ratios.sort_by(f64::total_cmp);
    (best_on, best_off, ratios[ratios.len() / 2] - 1.0)
}

fn print_shard_stats(shards: &[cache_server::CacheShardStats]) {
    println!("\n  cache shard contention at the widest sweep point:");
    for s in shards {
        println!(
            "    shard[{}]: {:>9} reads ({} waited), {:>8} writes ({} waited), {:.2}% contended",
            s.shard,
            s.read_locks,
            s.read_waits,
            s.write_locks,
            s.write_waits,
            s.contention_rate() * 100.0
        );
    }
}

fn main() {
    let args = BenchArgs::parse();
    let skip_tcp = std::env::args().any(|a| a == "--skip-tcp");
    let threads: Vec<usize> = args.threads.iter().copied().filter(|&t| t > 0).collect();
    // A fuller default than the 2000-request experiment default: each sweep
    // point is pure cache ops, so cheap enough to measure properly.
    let requests = args.requests.max(10_000);

    println!(
        "cache_scaling: {} warm keys, {}-byte values, {} requests/point, shards={}",
        WARM_KEYS,
        VALUE_BYTES,
        requests,
        NodeConfig::default().shards
    );

    // ---- in-process (the CacheCluster backend's configuration) ----
    let in_process = Arc::new(node());
    in_process.reset_stats();
    let rates = sweep("in-process", &threads, requests, |thread, ops| {
        drive_in_process(&in_process, thread, ops);
    });
    print_shard_stats(&in_process.shard_stats());

    // ---- loopback TCP (the RemoteCluster backend's configuration) ----
    if !skip_tcp {
        let server = TxcachedServer::bind(
            "127.0.0.1:0",
            "bench-node",
            NodeConfig {
                capacity_bytes: 256 << 20,
                ..NodeConfig::default()
            },
        )
        .expect("bind loopback txcached");
        let addr = server.local_addr();
        warm_tcp(addr);
        sweep("loopback TCP", &threads, requests, |thread, ops| {
            drive_tcp(addr, thread, ops);
        });
        print_shard_stats(&server.shard_stats());
    }

    // ---- instrumentation overhead (metrics on vs off, wire path) ----
    let overhead_gate = std::env::args().any(|a| a == "--overhead-gate");
    if !skip_tcp {
        let (on, off, overhead) = overhead_phase(requests, 5);
        println!(
            "\n  instrumentation overhead: {on:.0} ns/op instrumented vs {off:.0} ns/op \
             metrics-off ({:.1}% median paired overhead{})",
            overhead * 100.0,
            if overhead_gate { ", gate: <= 5%" } else { "" }
        );
        if overhead_gate && overhead > 0.05 {
            eprintln!(
                "BENCH GATE FAILED: instrumentation overhead {:.1}% exceeds 5%",
                overhead * 100.0
            );
            std::process::exit(1);
        }
    }

    // ---- JSON + CI gate (the in-process series, like the fig5 gate) ----
    let report = SweepReport {
        available_parallelism: std::thread::available_parallelism().map_or(1, usize::from),
        threads: threads.clone(),
        txn_per_sec: rates,
    };
    if let Some(path) = &args.json_out {
        std::fs::write(path, report.to_json()).expect("failed to write sweep JSON");
        println!("\n  sweep written to {path}");
    }
    let failures = gate_failures(&args, &report);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("BENCH GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
}
