//! A MediaWiki-style port (§7.2): a small wiki whose page-rendering path is
//! built from cacheable functions, including the §2.1 "user edit count"
//! example of a non-obvious invalidation dependency that TxCache handles
//! automatically.
//!
//! Run with `cargo run --example wiki_cache`.

use std::sync::Arc;

use txcache_repro::cache_server::CacheCluster;
use txcache_repro::mvdb::{
    Aggregate, ColumnType, Database, DbConfig, Predicate, SelectQuery, TableSchema, Value,
};
use txcache_repro::pincushion::Pincushion;
use txcache_repro::txcache::{Transaction, TxCache, TxCacheConfig};
use txcache_repro::txtypes::{Result, SimClock, Staleness};

struct Wiki {
    txcache: Arc<TxCache>,
}

impl Wiki {
    /// Renders an article: its latest revision text plus the author's edit
    /// count (computed from the revisions table, like MediaWiki's USER
    /// object).
    fn render_article(&self, tx: &mut Transaction<'_>, title: &str) -> Result<String> {
        tx.cached("render_article", &title.to_string(), |tx| {
            let q = SelectQuery::table("revisions")
                .filter(Predicate::eq("title", title))
                .order_by("id", txcache_repro::mvdb::SortOrder::Desc)
                .limit(1);
            let r = tx.query(&q)?;
            if r.is_empty() {
                return Ok(format!("<article '{title}' does not exist>"));
            }
            let text = r.get(0, "text")?.as_text().unwrap_or_default().to_string();
            let author = r.get(0, "author")?.as_int().unwrap_or_default();
            let edits = self.user_edit_count(tx, author)?;
            Ok(format!("{title}: {text} (by user {author}, {edits} edits)"))
        })
    }

    /// A nested cacheable function: the author's edit count.
    fn user_edit_count(&self, tx: &mut Transaction<'_>, user: i64) -> Result<i64> {
        tx.cached("user_edit_count", &user, |tx| {
            let q = SelectQuery::table("revisions")
                .filter(Predicate::eq("author", user))
                .aggregate(Aggregate::Count);
            let r = tx.query(&q)?;
            Ok(r.get(0, "count")?.as_int().unwrap_or(0))
        })
    }

    /// Saving an edit inserts a revision. The cached article *and* the cached
    /// edit count are both invalidated automatically — the bug class
    /// described in §2.1 cannot happen.
    fn save_edit(&self, title: &str, author: i64, text: &str) -> Result<()> {
        let mut tx = self.txcache.begin_rw()?;
        let q = SelectQuery::table("revisions").aggregate(Aggregate::Max("id".into()));
        let next = tx.query(&q)?.get(0, "max")?.as_int().unwrap_or(0) + 1;
        tx.insert(
            "revisions",
            vec![
                Value::Int(next),
                Value::text(title),
                Value::Int(author),
                Value::text(text),
            ],
        )?;
        tx.commit()?;
        Ok(())
    }
}

fn main() -> Result<()> {
    let clock = SimClock::new();
    let db = Arc::new(Database::new(DbConfig::default(), clock.clone()));
    db.create_table(
        TableSchema::new("revisions")
            .column("id", ColumnType::Int)
            .column("title", ColumnType::Text)
            .column("author", ColumnType::Int)
            .column("text", ColumnType::Text)
            .unique_index("id")
            .index("title")
            .index("author"),
    )?;
    db.bulk_load(
        "revisions",
        vec![vec![
            Value::Int(1),
            Value::text("Main_Page"),
            Value::Int(7),
            Value::text("welcome to the wiki"),
        ]],
    )?;

    let cache = Arc::new(CacheCluster::new(1, 8 << 20));
    let pincushion = Arc::new(Pincushion::new(Default::default(), clock.clone()));
    let txcache = Arc::new(TxCache::new(
        db,
        cache,
        pincushion,
        clock.clone(),
        TxCacheConfig::default(),
    ));
    let wiki = Wiki {
        txcache: txcache.clone(),
    };

    let mut tx = txcache.begin_ro(Staleness::seconds(30))?;
    println!("{}", wiki.render_article(&mut tx, "Main_Page")?);
    tx.commit()?;

    // Cached on the second view.
    let mut tx = txcache.begin_ro(Staleness::seconds(30))?;
    println!("{}  [cached]", wiki.render_article(&mut tx, "Main_Page")?);
    tx.commit()?;

    // Edit the page: both the article and the edit count are invalidated.
    wiki.save_edit("Main_Page", 7, "welcome to the *TxCache* wiki")?;
    clock.advance_secs(31);
    let mut tx = txcache.begin_ro(Staleness::seconds(1))?;
    println!(
        "{}  [after edit]",
        wiki.render_article(&mut tx, "Main_Page")?
    );
    tx.commit()?;

    let stats = txcache.stats();
    println!(
        "\ncacheable calls: {}, hits: {}, misses: {}",
        stats.cacheable_calls, stats.cache_hits, stats.cache_misses
    );
    Ok(())
}
