//! The pinned-snapshot table and its maintenance operations.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use txtypes::{SimClock, Staleness, Timestamp, WallClock};

/// One entry in the pincushion's table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PinnedSnapshot {
    /// The snapshot's identifier: the commit timestamp of the last
    /// transaction visible to it.
    pub timestamp: Timestamp,
    /// Wall-clock time at which the snapshot was pinned (as reported by the
    /// database).
    pub pinned_at: WallClock,
    /// Number of running transactions that might be using the snapshot.
    pub in_use: usize,
}

/// Configuration of the pincushion.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PincushionConfig {
    /// Unused snapshots older than this many microseconds are reaped (the
    /// database is asked to `UNPIN` them).
    pub reap_after_micros: u64,
}

impl Default for PincushionConfig {
    fn default() -> Self {
        PincushionConfig {
            // The paper keeps snapshots around on the order of the largest
            // staleness limit in use; two minutes is ample for every
            // experiment in §8.
            reap_after_micros: 120 * 1_000_000,
        }
    }
}

/// Operation counters for the pincushion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PincushionStats {
    /// `fresh_pins` requests served.
    pub queries: u64,
    /// Snapshots registered.
    pub registrations: u64,
    /// Snapshots reaped (handed back to the caller to `UNPIN`).
    pub reaped: u64,
}

struct Inner {
    pins: BTreeMap<Timestamp, PinnedSnapshot>,
    stats: PincushionStats,
}

/// The pincushion service.
pub struct Pincushion {
    inner: Mutex<Inner>,
    config: PincushionConfig,
    clock: SimClock,
}

impl Pincushion {
    /// Creates an empty pincushion using the shared simulated clock.
    #[must_use]
    pub fn new(config: PincushionConfig, clock: SimClock) -> Pincushion {
        Pincushion {
            inner: Mutex::new(Inner {
                pins: BTreeMap::new(),
                stats: PincushionStats::default(),
            }),
            config,
            clock,
        }
    }

    /// Creates a pincushion with default configuration and a private clock.
    #[must_use]
    pub fn with_defaults() -> Pincushion {
        Pincushion::new(PincushionConfig::default(), SimClock::new())
    }

    /// Returns every pinned snapshot fresh enough for `staleness`, newest
    /// first, and marks each as possibly in use by one more transaction.
    ///
    /// The library calls this at `BEGIN-RO`; the result seeds the
    /// transaction's pin set.
    pub fn fresh_pins(&self, staleness: Staleness) -> Vec<PinnedSnapshot> {
        let now = self.clock.now();
        let earliest = staleness.earliest_acceptable(now);
        let mut inner = self.inner.lock();
        inner.stats.queries += 1;
        let mut fresh: Vec<PinnedSnapshot> = inner
            .pins
            .values_mut()
            .filter(|p| p.pinned_at >= earliest)
            .map(|p| {
                p.in_use += 1;
                *p
            })
            .collect();
        fresh.sort_by_key(|p| std::cmp::Reverse(p.timestamp));
        fresh
    }

    /// Registers a snapshot the library just pinned on the database.
    /// The snapshot starts with one user (the registering transaction).
    pub fn register(&self, timestamp: Timestamp, pinned_at: WallClock) -> PinnedSnapshot {
        let mut inner = self.inner.lock();
        inner.stats.registrations += 1;
        let entry = inner.pins.entry(timestamp).or_insert(PinnedSnapshot {
            timestamp,
            pinned_at,
            in_use: 0,
        });
        entry.in_use += 1;
        *entry
    }

    /// Releases one use of every snapshot in `timestamps`; called when a
    /// transaction finishes. Unknown timestamps are ignored (they may already
    /// have been reaped).
    pub fn release(&self, timestamps: &[Timestamp]) {
        let mut inner = self.inner.lock();
        for ts in timestamps {
            if let Some(p) = inner.pins.get_mut(ts) {
                p.in_use = p.in_use.saturating_sub(1);
            }
        }
    }

    /// Scans for unused snapshots older than the reap threshold and removes
    /// them from the table. Returns the removed timestamps so the caller can
    /// issue `UNPIN` commands to the database.
    pub fn reap(&self) -> Vec<Timestamp> {
        let now = self.clock.now();
        let mut inner = self.inner.lock();
        let cutoff = now
            .as_micros()
            .saturating_sub(self.config.reap_after_micros);
        let doomed: Vec<Timestamp> = inner
            .pins
            .values()
            .filter(|p| p.in_use == 0 && p.pinned_at.as_micros() < cutoff)
            .map(|p| p.timestamp)
            .collect();
        for ts in &doomed {
            inner.pins.remove(ts);
        }
        inner.stats.reaped += doomed.len() as u64;
        doomed
    }

    /// The most recently pinned snapshot, if any.
    #[must_use]
    pub fn newest(&self) -> Option<PinnedSnapshot> {
        self.inner.lock().pins.values().next_back().copied()
    }

    /// The oldest snapshot still tracked, if any. Unlike
    /// [`fresh_pins`](Self::fresh_pins) this does not mark the snapshot as in
    /// use; it exists for maintenance tasks (cache staleness eviction) that
    /// only need a horizon.
    #[must_use]
    pub fn oldest(&self) -> Option<PinnedSnapshot> {
        self.inner.lock().pins.values().next().copied()
    }

    /// Number of snapshots currently tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().pins.len()
    }

    /// Returns `true` if no snapshots are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Operation counters.
    #[must_use]
    pub fn stats(&self) -> PincushionStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc_with_clock() -> (Pincushion, SimClock) {
        let clock = SimClock::new();
        (
            Pincushion::new(PincushionConfig::default(), clock.clone()),
            clock,
        )
    }

    #[test]
    fn register_and_query_fresh_pins() {
        let (pc, clock) = pc_with_clock();
        pc.register(Timestamp(5), clock.now());
        clock.advance_secs(10);
        pc.register(Timestamp(9), clock.now());
        clock.advance_secs(10);

        // 30-second staleness sees both, newest first.
        let fresh = pc.fresh_pins(Staleness::seconds(30));
        assert_eq!(
            fresh.iter().map(|p| p.timestamp).collect::<Vec<_>>(),
            vec![Timestamp(9), Timestamp(5)]
        );
        // 15-second staleness sees only the newer one.
        let fresh = pc.fresh_pins(Staleness::seconds(15));
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].timestamp, Timestamp(9));
        // Fresh (zero staleness) sees nothing pinned in the past.
        assert!(pc.fresh_pins(Staleness::Fresh).is_empty());
        assert_eq!(pc.stats().queries, 3);
        assert_eq!(pc.stats().registrations, 2);
    }

    #[test]
    fn fresh_pins_marks_snapshots_in_use() {
        let (pc, clock) = pc_with_clock();
        pc.register(Timestamp(5), clock.now());
        let fresh = pc.fresh_pins(Staleness::seconds(30));
        // register() counted one use, fresh_pins another.
        assert_eq!(fresh[0].in_use, 2);
        pc.release(&[Timestamp(5), Timestamp(5)]);
        let again = pc.fresh_pins(Staleness::seconds(30));
        assert_eq!(again[0].in_use, 1);
        // Releasing an unknown timestamp is harmless.
        pc.release(&[Timestamp(999)]);
    }

    #[test]
    fn reap_removes_only_old_unused_snapshots() {
        let (pc, clock) = pc_with_clock();
        pc.register(Timestamp(5), clock.now()); // in_use = 1
        pc.register(Timestamp(9), clock.now());
        pc.release(&[Timestamp(9)]); // now unused
        clock.advance_secs(300);
        pc.register(Timestamp(20), clock.now());
        pc.release(&[Timestamp(20)]); // unused but recent

        let reaped = pc.reap();
        assert_eq!(reaped, vec![Timestamp(9)], "only the old, unused snapshot");
        assert_eq!(pc.len(), 2);
        assert_eq!(pc.stats().reaped, 1);

        // Once the old in-use snapshot is released it is reaped too.
        pc.release(&[Timestamp(5)]);
        assert_eq!(pc.reap(), vec![Timestamp(5)]);
    }

    #[test]
    fn newest_and_emptiness() {
        let (pc, clock) = pc_with_clock();
        assert!(pc.is_empty());
        assert!(pc.newest().is_none());
        pc.register(Timestamp(5), clock.now());
        pc.register(Timestamp(9), clock.now());
        assert_eq!(pc.newest().unwrap().timestamp, Timestamp(9));
        assert_eq!(pc.oldest().unwrap().timestamp, Timestamp(5));
        assert_eq!(pc.len(), 2);
    }

    #[test]
    fn registering_same_snapshot_twice_increments_usage() {
        let (pc, clock) = pc_with_clock();
        pc.register(Timestamp(5), clock.now());
        let again = pc.register(Timestamp(5), clock.now());
        assert_eq!(again.in_use, 2);
        assert_eq!(pc.len(), 1);
    }

    #[test]
    fn with_defaults_constructs() {
        let pc = Pincushion::with_defaults();
        assert!(pc.is_empty());
    }
}
