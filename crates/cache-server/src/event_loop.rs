//! The readiness-driven connection engine behind [`crate::TxcachedServer::bind`].
//!
//! The thread-per-connection model from the first networked PR spends one
//! OS thread (and its stack) per client; at the connection counts the paper
//! assumes for a shared cache tier that neither scales nor schedules well.
//! This module replaces it for TCP with the classic single-reactor /
//! worker-pool shape:
//!
//! * **One reactor thread** owns a level-triggered [`poll::Poller`] watching
//!   the (nonblocking) listener, every (nonblocking) client socket, and a
//!   wake pipe. It does all socket I/O: accepts, reads into per-connection
//!   receive buffers, carves complete frames out of them, and writes queued
//!   response frames back out.
//! * **A small worker pool** (sized to the machine, capped low — the cache
//!   node's shards, not the workers, are the concurrency) executes decoded
//!   requests via [`crate::server::apply_request`] and hands the encoded
//!   response frame back to the reactor over a completion channel, nudging
//!   it through the wake pipe. Responses therefore leave in *completion*
//!   order, not arrival order — legal since protocol v4's correlation ids.
//!
//! ## Buffer reuse
//!
//! Each connection keeps one growable receive buffer that survives across
//! readiness events; frames are parsed out of it in place and only the
//! consumed prefix is dropped. Each complete frame becomes a single
//! refcounted [`bytes::Bytes`] allocation whose payload slices flow through
//! [`wire::Request::decode_shared`] into the cache without further copies.
//! Outbound frames accumulate in a per-connection transmit buffer drained
//! by writability events.
//!
//! ## Backpressure
//!
//! Two watermarks bound a misbehaving peer instead of letting it balloon
//! server memory: a connection whose transmit buffer passes
//! [`TX_HIGH_WATER`] or with more than [`MAX_CONN_IN_FLIGHT`] undispatched
//! requests stops being read (its `EPOLLIN` interest is dropped) until the
//! pressure drains. Accept-side, fd exhaustion (`EMFILE`/`ENFILE`) parks
//! the listener's interest for [`ACCEPT_BACKOFF`] instead of hot-looping
//! the accept syscall — existing connections keep being served, and
//! accepting resumes once descriptors free up.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use poll::{Events, Interest, Poller};
use wire::{Request, Transport, MAX_FRAME_BYTES, SEQ_BYTES};

use obs::Trace;

use crate::server::{error_frame, log_closed, ConnectionSummary, Shared};
use crate::telemetry;

/// Token of the listening socket in the poller.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token of the reactor's wake pipe.
const TOKEN_WAKE: u64 = u64::MAX - 1;
/// Transmit-buffer size past which a connection stops being read.
const TX_HIGH_WATER: usize = 1 << 20;
/// Transmit-buffer size below which reading resumes.
const TX_LOW_WATER: usize = 64 << 10;
/// Most requests one connection may have queued or executing before its
/// reads pause.
const MAX_CONN_IN_FLIGHT: usize = 1024;
/// How long to stop accepting after fd exhaustion.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);
/// Reactor-wide scratch size for draining readable sockets.
const READ_CHUNK: usize = 64 << 10;
/// Upper bound on reactor worker threads; the node's shards carry the
/// parallelism, the workers only need to keep them fed.
const MAX_WORKERS: usize = 4;

/// A decoded request traveling reactor → worker, with the arrival instant
/// captured at parse time (`None` when metrics are off) so queue wait shows
/// up in the span trail the worker resumes from it.
type Job = (u64, u64, Request, Option<std::time::Instant>);
/// An encoded response frame traveling worker → reactor.
type Done = (u64, Vec<u8>);

/// Join/wake handle for a running event loop, owned by the server.
pub(crate) struct EventLoopHandle {
    wake_tx: UnixStream,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl EventLoopHandle {
    /// Unblocks the reactor (which observes the server's shutdown flag and
    /// tears every connection down) and joins all threads. Idempotent.
    pub(crate) fn shutdown(&mut self) {
        let _ = (&self.wake_tx).write_all(&[1]);
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Starts the reactor and worker threads for a bound listener.
pub(crate) fn spawn(
    listener: TcpListener,
    shared: Arc<Shared>,
) -> std::io::Result<EventLoopHandle> {
    listener.set_nonblocking(true)?;
    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;

    let (job_tx, job_rx) = unbounded::<Job>();
    let (done_tx, done_rx) = unbounded::<Done>();

    let worker_count = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(MAX_WORKERS);
    let mut workers = Vec::with_capacity(worker_count);
    for i in 0..worker_count {
        let job_rx = job_rx.clone();
        let done_tx = done_tx.clone();
        let worker_shared = Arc::clone(&shared);
        let worker_wake = wake_tx.try_clone()?;
        workers.push(
            std::thread::Builder::new()
                .name(format!("txcached-worker-{i}"))
                .spawn(move || worker_loop(&job_rx, &done_tx, &worker_shared, &worker_wake))?,
        );
    }

    let reactor = std::thread::Builder::new()
        .name("txcached-reactor".to_string())
        .spawn(move || {
            let mut reactor = match Reactor::new(listener, wake_rx, shared, job_tx, done_rx) {
                Ok(reactor) => reactor,
                Err(_) => return,
            };
            reactor.run();
        })?;

    Ok(EventLoopHandle {
        wake_tx,
        reactor: Some(reactor),
        workers,
    })
}

fn worker_loop(job_rx: &Receiver<Job>, done_tx: &Sender<Done>, shared: &Shared, wake: &UnixStream) {
    let mut wake = wake;
    while let Ok((conn_id, seq, request, arrived)) = job_rx.recv() {
        if shared.obs.enabled {
            shared.obs.queue_depth.dec();
        }
        let trace = arrived.map(|t0| {
            let mut t = Trace::resume(seq, t0);
            t.span("queued");
            t
        });
        let response = telemetry::apply_timed(shared, request, trace);
        let frame = encode_response_frame(seq, &response);
        if done_tx.send((conn_id, frame)).is_err() {
            break;
        }
        // Nudge the reactor out of epoll_wait; an error means the reactor
        // is gone, which the next recv observes.
        let _ = wake.write_all(&[0]);
    }
}

/// Encodes a complete wire frame — length prefix, correlation id, body.
fn encode_response_frame(seq: u64, response: &wire::Response) -> Vec<u8> {
    let body = response.encode();
    let mut frame = Vec::with_capacity(4 + SEQ_BYTES + body.len());
    frame.extend_from_slice(&((SEQ_BYTES + body.len()) as u32).to_le_bytes());
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// One multiplexed client connection.
struct Conn {
    stream: TcpStream,
    peer: String,
    /// Received-but-unparsed bytes; complete frames are carved off the
    /// front, the remainder waits for the next readable event.
    rx: Vec<u8>,
    /// Encoded-but-unsent response frames; `tx_pos` marks how much of the
    /// front has already been written.
    tx: Vec<u8>,
    tx_pos: usize,
    /// Requests dispatched to workers whose responses are not yet queued.
    in_flight: usize,
    /// The peer half-closed (EOF read); finish in-flight work, flush, then
    /// close.
    closing: bool,
    /// What the poller is currently asked to report, to skip redundant
    /// `epoll_ctl` calls.
    interest: Interest,
    requests: u64,
    bytes_in: u64,
    bytes_out: u64,
}

impl Conn {
    fn tx_backlog(&self) -> usize {
        self.tx.len() - self.tx_pos
    }

    /// The interest this connection's state wants from the poller.
    fn desired_interest(&self) -> Interest {
        let paused = self.tx_backlog() >= TX_HIGH_WATER || self.in_flight >= MAX_CONN_IN_FLIGHT;
        let read = !self.closing && (!paused || self.tx_backlog() < TX_LOW_WATER);
        match (read, self.tx_backlog() > 0) {
            (true, true) => Interest::BOTH,
            (true, false) => Interest::READ,
            (false, true) => Interest::WRITE,
            (false, false) => Interest::NONE,
        }
    }
}

struct Reactor {
    poller: Poller,
    events: Events,
    listener: TcpListener,
    wake_rx: UnixStream,
    shared: Arc<Shared>,
    job_tx: Sender<Job>,
    done_rx: Receiver<Done>,
    conns: HashMap<u64, Conn>,
    /// While set, the listener is out of the interest set (fd exhaustion);
    /// accepting resumes at the deadline.
    accept_paused_until: Option<Instant>,
    scratch: Vec<u8>,
}

impl Reactor {
    fn new(
        listener: TcpListener,
        wake_rx: UnixStream,
        shared: Arc<Shared>,
        job_tx: Sender<Job>,
        done_rx: Receiver<Done>,
    ) -> std::io::Result<Reactor> {
        let poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.register(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;
        Ok(Reactor {
            poller,
            events: Events::with_capacity(256),
            listener,
            wake_rx,
            shared,
            job_tx,
            done_rx,
            conns: HashMap::new(),
            accept_paused_until: None,
            scratch: vec![0u8; READ_CHUNK],
        })
    }

    fn run(&mut self) {
        loop {
            let timeout = self
                .accept_paused_until
                .map(|deadline| deadline.saturating_duration_since(Instant::now()));
            if self.poller.wait(&mut self.events, timeout).is_err() {
                break;
            }
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            if let Some(deadline) = self.accept_paused_until {
                if Instant::now() >= deadline {
                    self.accept_paused_until = None;
                    // Descriptors may have freed up; rejoin the interest
                    // set and drain the backlog.
                    if self
                        .poller
                        .register(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
                        .is_ok()
                    {
                        self.accept_ready();
                    }
                }
            }
            let ready: Vec<poll::Event> = self.events.iter().collect();
            for event in ready {
                match event.token {
                    TOKEN_WAKE => self.drain_wake(),
                    TOKEN_LISTENER => self.accept_ready(),
                    conn_id => self.conn_ready(conn_id, event),
                }
            }
            self.drain_completions();
        }
        self.teardown();
    }

    fn drain_wake(&mut self) {
        loop {
            match self.wake_rx.read(&mut self.scratch) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    fn accept_ready(&mut self) {
        if self.accept_paused_until.is_some() {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.shutting_down.load(Ordering::SeqCst) {
                        // Raced with shutdown (e.g. the listener closer's
                        // throwaway connect): drop without counting.
                        continue;
                    }
                    self.admit(stream);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if is_fd_exhaustion(&e) => {
                    // Out of descriptors: stop asking about the listener so
                    // the reactor doesn't spin on a backlog it cannot
                    // accept, and retry after a beat. Existing connections
                    // keep being served meanwhile.
                    let _ = self.poller.deregister(self.listener.as_raw_fd());
                    self.accept_paused_until = Some(Instant::now() + ACCEPT_BACKOFF);
                    break;
                }
                // Transient per-connection accept failures (ECONNABORTED
                // and friends): just move on to the next pending one.
                Err(_) => {}
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let conn_id = self
            .shared
            .counters
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        if self
            .poller
            .register(stream.as_raw_fd(), conn_id, Interest::READ)
            .is_err()
        {
            self.shared
                .counters
                .connections_accepted
                .fetch_sub(1, Ordering::Relaxed);
            return;
        }
        if let Ok(closer) = stream.closer() {
            self.shared.open_conns.lock().insert(conn_id, closer);
        }
        let peer = stream.peer_label();
        self.conns.insert(
            conn_id,
            Conn {
                stream,
                peer,
                rx: Vec::new(),
                tx: Vec::new(),
                tx_pos: 0,
                in_flight: 0,
                closing: false,
                interest: Interest::READ,
                requests: 0,
                bytes_in: 0,
                bytes_out: 0,
            },
        );
    }

    fn conn_ready(&mut self, conn_id: u64, event: poll::Event) {
        if !self.conns.contains_key(&conn_id) {
            return;
        }
        let mut dead = false;
        if event.is_readable() {
            dead = !self.read_and_dispatch(conn_id);
        }
        if !dead && event.is_writable() {
            dead = !self.flush(conn_id);
        }
        if dead {
            self.close_conn(conn_id);
        } else {
            self.settle(conn_id);
        }
    }

    /// Drains the socket into the receive buffer and dispatches every
    /// complete frame. Returns false if the connection must die now.
    fn read_and_dispatch(&mut self, conn_id: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return false;
        };
        loop {
            // Respect backpressure mid-drain too: a paused connection
            // leaves its bytes in the kernel buffer (level-triggering
            // re-reports them later).
            if conn.tx_backlog() >= TX_HIGH_WATER || conn.in_flight >= MAX_CONN_IN_FLIGHT {
                self.shared.obs.backpressure_pauses.bump();
                break;
            }
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.closing = true;
                    break;
                }
                Ok(n) => {
                    conn.rx.extend_from_slice(&self.scratch[..n]);
                    conn.bytes_in += n as u64;
                    self.shared.counters.bytes_in.add(n as u64);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        self.parse_and_dispatch(conn_id)
    }

    /// Carves complete frames off the receive buffer, decoding and
    /// dispatching each. Returns false on a frame-level violation (the
    /// stream can no longer be trusted to be at a boundary).
    fn parse_and_dispatch(&mut self, conn_id: u64) -> bool {
        let mut consumed = 0;
        loop {
            let Some(conn) = self.conns.get_mut(&conn_id) else {
                return false;
            };
            let avail = &conn.rx[consumed..];
            if avail.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
            if !(SEQ_BYTES..=MAX_FRAME_BYTES).contains(&len) {
                // Oversize or too short to carry a correlation id: the
                // framing itself is broken, close.
                conn.rx.drain(..consumed);
                return false;
            }
            if avail.len() < 4 + len {
                break;
            }
            // One allocation per frame; the decoder hands out refcounted
            // slices of it from here on.
            let body = Bytes::from(avail[4..4 + len].to_vec());
            consumed += 4 + len;
            let seq = u64::from_le_bytes(body[..SEQ_BYTES].try_into().expect("checked above"));
            let payload = body.slice(SEQ_BYTES..);
            match Request::decode_shared(&payload) {
                Ok(request) => {
                    conn.requests += 1;
                    conn.in_flight += 1;
                    self.shared.counters.requests.bump();
                    let arrived = self.shared.obs.trace_start();
                    if arrived.is_some() {
                        self.shared.obs.queue_depth.inc();
                    }
                    if self.job_tx.send((conn_id, seq, request, arrived)).is_err() {
                        return false;
                    }
                }
                Err(e) => {
                    // Body-level decode error: the stream is still at a
                    // frame boundary, answer and keep serving (same
                    // contract as the threaded path).
                    self.shared.counters.protocol_errors.bump();
                    let frame = encode_response_frame(seq, &error_frame(&e));
                    conn.tx.extend_from_slice(&frame);
                }
            }
        }
        if consumed > 0 {
            if let Some(conn) = self.conns.get_mut(&conn_id) {
                conn.rx.drain(..consumed);
            }
        }
        self.flush(conn_id)
    }

    /// Writes as much of the transmit buffer as the socket accepts.
    /// Returns false if the connection must die now.
    fn flush(&mut self, conn_id: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return false;
        };
        while conn.tx_pos < conn.tx.len() {
            match conn.stream.write(&conn.tx[conn.tx_pos..]) {
                Ok(0) => return false,
                Ok(n) => {
                    conn.tx_pos += n;
                    conn.bytes_out += n as u64;
                    self.shared.counters.bytes_out.add(n as u64);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        if conn.tx_pos == conn.tx.len() {
            conn.tx.clear();
            conn.tx_pos = 0;
        } else if conn.tx_pos > TX_LOW_WATER {
            // Compact occasionally so a slow reader doesn't pin the whole
            // history of its responses in memory.
            conn.tx.drain(..conn.tx_pos);
            conn.tx_pos = 0;
        }
        true
    }

    /// Reconciles a connection's poller interest with its state, closing it
    /// if it has fully drained after a half-close.
    fn settle(&mut self, conn_id: u64) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        if conn.closing && conn.in_flight == 0 && conn.tx_backlog() == 0 {
            self.close_conn(conn_id);
            return;
        }
        let desired = conn.desired_interest();
        if desired != conn.interest {
            let fd = conn.stream.as_raw_fd();
            if self.poller.modify(fd, conn_id, desired).is_ok() {
                conn.interest = desired;
            }
        }
    }

    /// Queues completed responses onto their connections and flushes.
    fn drain_completions(&mut self) {
        let completions: Vec<Done> = self.done_rx.try_iter().collect();
        for (conn_id, frame) in completions {
            let Some(conn) = self.conns.get_mut(&conn_id) else {
                // The connection died while the request executed; its
                // response has nowhere to go.
                continue;
            };
            conn.in_flight -= 1;
            conn.tx.extend_from_slice(&frame);
            if self.flush(conn_id) {
                self.settle(conn_id);
            } else {
                self.close_conn(conn_id);
            }
        }
    }

    fn close_conn(&mut self, conn_id: u64) {
        let Some(conn) = self.conns.remove(&conn_id) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.shared.open_conns.lock().remove(&conn_id);
        self.shared.counters.connections_closed.bump();
        log_closed(
            &self.shared,
            ConnectionSummary {
                peer: conn.peer,
                requests: conn.requests,
                bytes_in: conn.bytes_in,
                bytes_out: conn.bytes_out,
            },
        );
    }

    fn teardown(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for conn_id in ids {
            // Best-effort final flush so responses already computed reach
            // clients that are still reading.
            let _ = self.flush(conn_id);
            self.close_conn(conn_id);
        }
        // Dropping `job_tx` (with the reactor) disconnects the workers,
        // which exit on their next recv.
    }
}

fn is_fd_exhaustion(e: &std::io::Error) -> bool {
    // EMFILE (24): per-process limit. ENFILE (23): system-wide table full.
    matches!(e.raw_os_error(), Some(23) | Some(24))
}
