//! Shared helpers for the figure/table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the paper's
//! evaluation (see `DESIGN.md` §2 and `EXPERIMENTS.md`). They accept a small
//! set of command-line flags so the full-scale experiments can be run when
//! more time is available:
//!
//! * `--scale <f>`    — dataset scale factor (default 0.01 = 1% of the paper's sizes)
//! * `--requests <n>` — measured requests per experiment point (default 2000)
//! * `--quick`        — shrink everything for a fast smoke run
//!
//! `fig5_throughput` additionally supports the CI bench-smoke flags:
//!
//! * `--threads <list>`   — application-server thread counts (default 1,2,4,8,16)
//! * `--scaling-only`     — skip the figure panels, run only the thread sweep
//! * `--json <path>`      — write the thread-sweep results as JSON
//! * `--baseline <path>`  — compare against a checked-in JSON baseline and
//!   exit non-zero if throughput at the highest common thread count regressed
//! * `--max-regress <f>`  — allowed fractional regression (default 0.20)
//! * `--min-speedup <f>`  — required speedup at the highest thread count,
//!   enforced only when the host has that much hardware parallelism

#![forbid(unsafe_code)]

use harness::{DbKind, ExperimentConfig};

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Dataset scale factor relative to the paper's configuration.
    pub scale: f64,
    /// Measured requests per experiment point.
    pub requests: usize,
    /// Warm-up requests per experiment point.
    pub warmup: usize,
    /// Application-server thread counts for the concurrency sweep
    /// (`--threads 1,2,4,8,16`).
    pub threads: Vec<usize>,
    /// Run only the thread-scaling sweep (`--scaling-only`).
    pub scaling_only: bool,
    /// Write the thread-sweep results as JSON to this path (`--json`).
    pub json_out: Option<String>,
    /// Compare the sweep against this JSON baseline (`--baseline`).
    pub baseline: Option<String>,
    /// Allowed fractional throughput regression against the baseline
    /// (`--max-regress`, default 0.20).
    pub max_regress: f64,
    /// Required speedup at the highest thread count, enforced only when the
    /// host has at least that many CPUs (`--min-speedup`, default 0 = off).
    pub min_speedup: f64,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: 0.01,
            requests: 2_000,
            warmup: 1_200,
            threads: vec![1, 2, 4, 8, 16],
            scaling_only: false,
            json_out: None,
            baseline: None,
            max_regress: 0.20,
            min_speedup: 0.0,
        }
    }
}

impl BenchArgs {
    /// Parses the common flags from `std::env::args`, ignoring unknown
    /// arguments (binaries may add their own).
    #[must_use]
    pub fn parse() -> BenchArgs {
        let mut out = BenchArgs::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" if i + 1 < args.len() => {
                    if let Ok(v) = args[i + 1].parse() {
                        out.scale = v;
                    }
                    i += 1;
                }
                "--requests" if i + 1 < args.len() => {
                    if let Ok(v) = args[i + 1].parse() {
                        out.requests = v;
                    }
                    i += 1;
                }
                "--threads" if i + 1 < args.len() => {
                    let parsed: Vec<usize> = args[i + 1]
                        .split(',')
                        .filter_map(|t| t.trim().parse().ok())
                        .filter(|&t| t > 0)
                        .collect();
                    if !parsed.is_empty() {
                        out.threads = parsed;
                    }
                    i += 1;
                }
                "--quick" => {
                    out.scale = 0.004;
                    out.requests = 600;
                    out.warmup = 300;
                }
                "--scaling-only" => out.scaling_only = true,
                "--json" if i + 1 < args.len() => {
                    out.json_out = Some(args[i + 1].clone());
                    i += 1;
                }
                "--baseline" if i + 1 < args.len() => {
                    out.baseline = Some(args[i + 1].clone());
                    i += 1;
                }
                "--max-regress" if i + 1 < args.len() => {
                    if let Ok(v) = args[i + 1].parse::<f64>() {
                        out.max_regress = v.clamp(0.0, 1.0);
                    }
                    i += 1;
                }
                "--min-speedup" if i + 1 < args.len() => {
                    if let Ok(v) = args[i + 1].parse::<f64>() {
                        out.min_speedup = v.max(0.0);
                    }
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        out.warmup = out.warmup.min(out.requests);
        out
    }

    /// Builds an experiment configuration for `db_kind` with these sizes.
    #[must_use]
    pub fn config(&self, db_kind: DbKind) -> ExperimentConfig {
        ExperimentConfig {
            scale_factor: self.scale,
            requests: self.requests,
            warmup_requests: self.warmup,
            ..ExperimentConfig::new(db_kind)
        }
    }
}

/// Applies the CI bench gate to a sweep: regression against the baseline
/// file (absolute throughput is only compared when the host matches the
/// baseline's CPU count) and, on hosts with enough CPUs, the scaling floor.
/// Returns error strings; empty = pass. Shared by `fig5_throughput` and
/// `cache_scaling`.
#[must_use]
pub fn gate_failures(args: &BenchArgs, report: &SweepReport) -> Vec<String> {
    let mut failures = Vec::new();

    if let Some(path) = &args.baseline {
        match std::fs::read_to_string(path)
            .ok()
            .as_deref()
            .map(SweepReport::from_json)
        {
            Some(Some(baseline))
                if baseline.available_parallelism != report.available_parallelism =>
            {
                // Absolute txn/s only compares like with like: a baseline
                // recorded on a different machine class (e.g. the 1-CPU dev
                // container vs a 4-CPU hosted runner) would make the gate
                // flap. The --min-speedup ratio gate still applies there.
                println!(
                    "\n  bench gate: baseline was recorded with {} CPU(s), this host has {}; \
                     absolute-throughput comparison skipped",
                    baseline.available_parallelism, report.available_parallelism
                );
            }
            Some(Some(baseline)) => {
                let common = report
                    .threads
                    .iter()
                    .filter(|t| baseline.rate_at(**t).is_some())
                    .max()
                    .copied();
                match common {
                    Some(threads) => {
                        let old = baseline.rate_at(threads).unwrap_or(0.0);
                        let new = report.rate_at(threads).unwrap_or(0.0);
                        let floor = old * (1.0 - args.max_regress);
                        if new < floor {
                            failures.push(format!(
                                "throughput regression at {threads} threads: {new:.0} txn/s < \
                                 {floor:.0} (baseline {old:.0}, max regression {:.0}%)",
                                args.max_regress * 100.0
                            ));
                        } else {
                            println!(
                                "\n  bench gate: {new:.0} txn/s at {threads} threads vs baseline \
                                 {old:.0} (floor {floor:.0}) — ok"
                            );
                        }
                    }
                    None => failures.push(format!(
                        "baseline {path} shares no thread count with this run"
                    )),
                }
            }
            _ => failures.push(format!("could not read baseline {path}")),
        }
    }

    if args.min_speedup > 0.0 {
        let top = report.threads.iter().max().copied().unwrap_or(1);
        if report.available_parallelism >= top {
            match report.top_speedup() {
                Some(speedup) if speedup < args.min_speedup => failures.push(format!(
                    "speedup at {top} threads is {speedup:.2}x, below the {:.2}x floor",
                    args.min_speedup
                )),
                Some(speedup) => {
                    println!("  bench gate: speedup {speedup:.2}x at {top} threads — ok");
                }
                None => failures.push("cannot compute speedup (no 1-thread run)".into()),
            }
        } else {
            println!(
                "  bench gate: host has {} CPU(s) < {top} threads; speedup floor skipped",
                report.available_parallelism
            );
        }
    }

    failures
}

/// Formats a byte count as the paper writes cache sizes ("64MB", "1GB").
#[must_use]
pub fn format_size(bytes: usize) -> String {
    if bytes >= 1 << 30 {
        format!("{}GB", bytes >> 30)
    } else {
        format!("{}MB", bytes >> 20)
    }
}

/// The thread-scaling sweep result serialized to / parsed from
/// `BENCH_fig5.json`. The format is a flat JSON object written and read by
/// the helpers below — no JSON dependency needed for the handful of numeric
/// fields the CI gate compares.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Hardware parallelism of the host that produced the numbers.
    pub available_parallelism: usize,
    /// Thread counts driven.
    pub threads: Vec<usize>,
    /// Measured aggregate throughput at each thread count.
    pub txn_per_sec: Vec<f64>,
}

impl SweepReport {
    /// Throughput measured at `threads`, if that count was driven.
    #[must_use]
    pub fn rate_at(&self, threads: usize) -> Option<f64> {
        self.threads
            .iter()
            .position(|&t| t == threads)
            .map(|i| self.txn_per_sec[i])
    }

    /// Speedup of the highest thread count over the single-thread run.
    #[must_use]
    pub fn top_speedup(&self) -> Option<f64> {
        let single = self.rate_at(1)?;
        let top = *self.threads.iter().max()?;
        let rate = self.rate_at(top)?;
        if single > 0.0 {
            Some(rate / single)
        } else {
            None
        }
    }

    /// Renders the report as JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let threads: Vec<String> = self.threads.iter().map(ToString::to_string).collect();
        let rates: Vec<String> = self.txn_per_sec.iter().map(|r| format!("{r:.1}")).collect();
        format!(
            "{{\n  \"available_parallelism\": {},\n  \"threads\": [{}],\n  \"txn_per_sec\": [{}]\n}}\n",
            self.available_parallelism,
            threads.join(", "),
            rates.join(", ")
        )
    }

    /// Parses a report produced by [`to_json`](Self::to_json). Returns `None`
    /// if a required key is missing or the arrays disagree in length.
    #[must_use]
    pub fn from_json(text: &str) -> Option<SweepReport> {
        let threads: Vec<usize> = json_numbers(text, "threads")?
            .into_iter()
            .map(|v| v as usize)
            .collect();
        let txn_per_sec = json_numbers(text, "txn_per_sec")?;
        if threads.is_empty() || threads.len() != txn_per_sec.len() {
            return None;
        }
        let available_parallelism = json_number(text, "available_parallelism")? as usize;
        Some(SweepReport {
            available_parallelism,
            threads,
            txn_per_sec,
        })
    }
}

/// Extracts the array of numbers stored under `"key": [...]`.
fn json_numbers(text: &str, key: &str) -> Option<Vec<f64>> {
    let rest = after_key(text, key)?;
    let open = rest.find('[')?;
    let close = rest[open..].find(']')? + open;
    rest[open + 1..close]
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<f64>().ok())
        .collect()
}

/// Extracts the scalar number stored under `"key": n`.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let rest = after_key(text, key)?;
    let value: String = rest
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    value.parse().ok()
}

fn after_key<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let colon = text[at..].find(':')? + at + 1;
    Some(&text[colon..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_config() {
        let args = BenchArgs::default();
        let cfg = args.config(DbKind::InMemory);
        assert_eq!(cfg.requests, 2_000);
        assert!((cfg.scale_factor - 0.01).abs() < 1e-12);
        assert_eq!(args.threads, vec![1, 2, 4, 8, 16]);
        assert!(!args.scaling_only);
        assert!((args.max_regress - 0.20).abs() < 1e-12);
        assert_eq!(args.min_speedup, 0.0);
    }

    #[test]
    fn size_formatting() {
        assert_eq!(format_size(64 << 20), "64MB");
        assert_eq!(format_size(9 << 30), "9GB");
    }

    #[test]
    fn sweep_report_round_trips_through_json() {
        let report = SweepReport {
            available_parallelism: 8,
            threads: vec![1, 4],
            txn_per_sec: vec![1000.5, 3200.0],
        };
        let json = report.to_json();
        let parsed = SweepReport::from_json(&json).unwrap();
        assert_eq!(parsed.available_parallelism, 8);
        assert_eq!(parsed.threads, vec![1, 4]);
        assert_eq!(parsed.rate_at(4), Some(3200.0));
        assert_eq!(parsed.rate_at(16), None);
        let speedup = parsed.top_speedup().unwrap();
        assert!((speedup - 3200.0 / 1000.5).abs() < 1e-9);
    }

    #[test]
    fn sweep_report_rejects_malformed_json() {
        assert!(SweepReport::from_json("{}").is_none());
        assert!(SweepReport::from_json("{\"threads\": [1], \"txn_per_sec\": []}").is_none());
        assert!(SweepReport::from_json("not json at all").is_none());
    }
}
