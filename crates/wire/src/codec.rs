//! Primitive encoders/decoders for the wire format.
//!
//! All integers are little-endian and fixed-width; strings and byte blobs are
//! `u32` length-prefixed; options are a one-byte presence tag. The protocol's
//! composite types (`CacheKey`, `TagSet`, `ValidityInterval`, …) are built
//! from these primitives here so `msg` stays a plain catalogue of frames.

use bytes::Bytes;
use txtypes::{CacheKey, InvalidationTag, TagSet, Timestamp, ValidityInterval, WallClock};

use crate::{WireError, MAX_FRAME_BYTES};

/// Appends wire-format primitives to a growable buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Creates a writer with pre-reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Writer {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the writer, returning the encoded bytes.
    #[must_use]
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length-prefixed byte blob.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Writes an optional string as presence tag + string.
    pub fn put_opt_str(&mut self, v: Option<&str>) {
        match v {
            None => self.put_u8(0),
            Some(s) => {
                self.put_u8(1);
                self.put_str(s);
            }
        }
    }

    /// Writes a logical timestamp.
    pub fn put_timestamp(&mut self, ts: Timestamp) {
        self.put_u64(ts.as_u64());
    }

    /// Writes a wall-clock instant.
    pub fn put_wallclock(&mut self, at: WallClock) {
        self.put_u64(at.as_micros());
    }

    /// Writes a validity interval as lower bound + optional upper bound.
    pub fn put_interval(&mut self, iv: ValidityInterval) {
        self.put_timestamp(iv.lower);
        match iv.upper {
            None => self.put_u8(0),
            Some(u) => {
                self.put_u8(1);
                self.put_timestamp(u);
            }
        }
    }

    /// Writes a cache key as function + args strings.
    pub fn put_key(&mut self, key: &CacheKey) {
        self.put_str(&key.function);
        self.put_str(&key.args);
    }

    /// Writes a tag set as a count-prefixed list of (table, optional key).
    pub fn put_tagset(&mut self, tags: &TagSet) {
        self.put_u32(tags.len() as u32);
        for tag in tags.iter() {
            self.put_str(&tag.table);
            self.put_opt_str(tag.key.as_deref());
        }
    }
}

/// Reads wire-format primitives from a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// When decoding straight out of a received frame buffer, value blobs
    /// are handed out as zero-copy [`Bytes`] slices of this backing instead
    /// of being copied into fresh allocations (see [`Reader::get_value`]).
    backing: Option<&'a Bytes>,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice for decoding.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader {
            buf,
            pos: 0,
            backing: None,
        }
    }

    /// Wraps a shared frame buffer for decoding. Equivalent to
    /// [`Reader::new`] except that [`Reader::get_value`] returns slices of
    /// `backing` (sharing its allocation) instead of copying — the hot-path
    /// zero-copy decode used by the framing layer.
    #[must_use]
    pub fn new_shared(backing: &'a Bytes) -> Reader<'a> {
        Reader {
            buf: backing.as_slice(),
            pos: 0,
            backing: Some(backing),
        }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`WireError::TrailingBytes`] unless the input is exhausted.
    pub fn finish(&self) -> crate::Result<()> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::TrailingBytes(n)),
        }
    }

    fn take(&mut self, n: usize) -> crate::Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> crate::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> crate::Result<u32> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> crate::Result<u64> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    /// Reads a length-prefixed byte blob.
    pub fn get_bytes(&mut self) -> crate::Result<Vec<u8>> {
        let len = self.get_u32()? as usize;
        if len > MAX_FRAME_BYTES {
            return Err(WireError::TooLarge(len));
        }
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed blob into a shareable [`Bytes`].
    ///
    /// On a [`Reader::new_shared`] reader this is zero-copy: the returned
    /// `Bytes` is a subrange of the backing frame buffer, alive for as long
    /// as any clone of it is (the backing is reference-counted).
    pub fn get_value(&mut self) -> crate::Result<Bytes> {
        match self.backing {
            Some(backing) => {
                let len = self.get_u32()? as usize;
                if len > MAX_FRAME_BYTES {
                    return Err(WireError::TooLarge(len));
                }
                let start = self.pos;
                self.take(len)?;
                Ok(backing.slice(start..start + len))
            }
            None => Ok(Bytes::from(self.get_bytes()?)),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> crate::Result<String> {
        String::from_utf8(self.get_bytes()?).map_err(|_| WireError::BadUtf8)
    }

    /// Reads an optional string.
    pub fn get_opt_str(&mut self) -> crate::Result<Option<String>> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_str()?)),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Reads a logical timestamp.
    pub fn get_timestamp(&mut self) -> crate::Result<Timestamp> {
        Ok(Timestamp(self.get_u64()?))
    }

    /// Reads a wall-clock instant.
    pub fn get_wallclock(&mut self) -> crate::Result<WallClock> {
        Ok(WallClock::from_micros(self.get_u64()?))
    }

    /// Reads a validity interval.
    pub fn get_interval(&mut self) -> crate::Result<ValidityInterval> {
        let lower = self.get_timestamp()?;
        let upper = match self.get_u8()? {
            0 => None,
            1 => Some(self.get_timestamp()?),
            t => return Err(WireError::BadTag(t)),
        };
        Ok(ValidityInterval { lower, upper })
    }

    /// Reads a cache key.
    pub fn get_key(&mut self) -> crate::Result<CacheKey> {
        let function = self.get_str()?;
        let args = self.get_str()?;
        Ok(CacheKey { function, args })
    }

    /// Reads a tag set.
    pub fn get_tagset(&mut self) -> crate::Result<TagSet> {
        let count = self.get_u32()? as usize;
        if count > MAX_FRAME_BYTES / 8 {
            return Err(WireError::TooLarge(count));
        }
        let mut tags = TagSet::new();
        for _ in 0..count {
            let table = self.get_str()?;
            let key = self.get_opt_str()?;
            tags.insert(InvalidationTag { table, key });
        }
        Ok(tags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtypes::InvalidationTag;

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_str("héllo");
        w.put_opt_str(None);
        w.put_opt_str(Some("k=v"));
        w.put_bytes(b"blob");
        let buf = w.into_vec();

        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_opt_str().unwrap(), None);
        assert_eq!(r.get_opt_str().unwrap(), Some("k=v".to_string()));
        assert_eq!(r.get_bytes().unwrap(), b"blob");
        r.finish().unwrap();
    }

    #[test]
    fn composites_roundtrip() {
        let key = CacheKey::new("get_item", "[42]");
        let tags: TagSet = [
            InvalidationTag::keyed("items", "id=42"),
            InvalidationTag::wildcard("bids"),
        ]
        .into_iter()
        .collect();
        let iv = ValidityInterval::bounded(Timestamp(3), Timestamp(9)).unwrap();
        let open = ValidityInterval::unbounded(Timestamp(5));

        let mut w = Writer::new();
        w.put_key(&key);
        w.put_tagset(&tags);
        w.put_interval(iv);
        w.put_interval(open);
        w.put_timestamp(Timestamp::MAX);
        w.put_wallclock(WallClock::from_secs(9));
        let buf = w.into_vec();

        let mut r = Reader::new(&buf);
        assert_eq!(r.get_key().unwrap(), key);
        assert_eq!(r.get_tagset().unwrap(), tags);
        assert_eq!(r.get_interval().unwrap(), iv);
        assert_eq!(r.get_interval().unwrap(), open);
        assert_eq!(r.get_timestamp().unwrap(), Timestamp::MAX);
        assert_eq!(r.get_wallclock().unwrap(), WallClock::from_secs(9));
        r.finish().unwrap();
    }

    #[test]
    fn truncated_and_trailing_inputs_are_rejected() {
        let mut w = Writer::new();
        w.put_u64(1);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf[..4]);
        assert!(matches!(r.get_u64(), Err(WireError::Truncated)));

        let mut r = Reader::new(&buf);
        r.get_u32().unwrap();
        assert!(matches!(r.finish(), Err(WireError::TrailingBytes(4))));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.get_bytes(), Err(WireError::TooLarge(_))));
    }

    #[test]
    fn shared_readers_hand_out_zero_copy_slices() {
        let mut w = Writer::new();
        w.put_str("k");
        w.put_bytes(b"payload");
        w.put_u64(7);
        let frame = Bytes::from(w.into_vec());

        let mut r = Reader::new_shared(&frame);
        assert_eq!(r.get_str().unwrap(), "k");
        let value = r.get_value().unwrap();
        assert_eq!(&value[..], b"payload");
        assert_eq!(r.get_u64().unwrap(), 7);
        r.finish().unwrap();
        // The value is a subrange of the frame buffer, not a copy: slicing
        // the frame at the same offsets yields an equal Bytes.
        let start = 4 + 1 + 4;
        assert_eq!(value, frame.slice(start..start + 7));
        // Truncated shared values are rejected like copied ones.
        let short = Bytes::from(frame.as_slice()[..start + 3].to_vec());
        let mut r = Reader::new_shared(&short);
        r.get_str().unwrap();
        assert!(matches!(r.get_value(), Err(WireError::Truncated)));
    }

    #[test]
    fn bad_utf8_and_bad_tags_are_rejected() {
        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe]);
        let buf = w.into_vec();
        assert!(matches!(
            Reader::new(&buf).get_str(),
            Err(WireError::BadUtf8)
        ));

        let mut w = Writer::new();
        w.put_u8(9);
        let buf = w.into_vec();
        assert!(matches!(
            Reader::new(&buf).get_opt_str(),
            Err(WireError::BadTag(9))
        ));
    }
}
