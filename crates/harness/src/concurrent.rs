//! Multi-threaded workload driving.
//!
//! The single-threaded runner in [`crate::experiment`] measures resource
//! demand and converts it to a modelled cluster throughput. This module
//! instead drives the cluster from N real application-server threads sharing
//! one `Arc<Database>`, `Arc<CacheCluster>`, and `Arc<Pincushion>`, and
//! reports *measured* aggregate transactions per second. `mvdb` shards its
//! locking per table — queries take only shared locks, and beginning a
//! transaction at the latest snapshot takes no global lock at all — so this
//! curve now measures real parallelism. Each run also carries the database's
//! per-table lock-contention counters ([`ConcurrentResult::db_shards`]), so
//! a scaling regression can be traced to the shard that serialized it.
//!
//! Note that measured speedup is bounded by the hardware: on a single-core
//! host the curve stays flat no matter how well the engine scales.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use cache_server::{CacheCluster, CacheStats};
use mvdb::{Database, ShardStats};
use obs::HistogramSnapshot;
use pincushion::Pincushion;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rubis::{ClientSession, RubisApp, WorkloadConfig};
use txcache::TxCache;
use txtypes::{Result, SimClock};

use crate::costmodel::ResourceUsage;
use crate::experiment::{ExperimentConfig, SimCluster};

fn assert_send_sync<T: Send + Sync>() {}

/// Compile-time proof that every component shared between application-server
/// threads is `Send + Sync`. Removing a bound from any of these types breaks
/// this function, not a test at runtime.
#[allow(dead_code)]
fn shared_components_are_thread_safe() {
    assert_send_sync::<Database>();
    assert_send_sync::<CacheCluster>();
    assert_send_sync::<Pincushion>();
    assert_send_sync::<TxCache>();
    assert_send_sync::<RubisApp>();
    assert_send_sync::<SimClock>();
    assert_send_sync::<SimCluster>();
    assert_send_sync::<Arc<Database>>();
    assert_send_sync::<Arc<CacheCluster>>();
    assert_send_sync::<Arc<Pincushion>>();
    assert_send_sync::<Arc<TxCache>>();
}

/// A merge-able latency accumulator: a thin view over the shared
/// [`obs::HistogramSnapshot`] log2 histogram, so per-thread tallies merge
/// bucket-wise (associative, exact) instead of concatenating sample vecs,
/// and percentiles are nearest-rank with no small-N index bias.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    hist: HistogramSnapshot,
}

impl LatencyStats {
    /// Records one operation's latency.
    pub fn record_us(&mut self, us: u64) {
        self.hist.record(us);
    }

    /// Merges another accumulator (e.g. a different thread's) into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.hist.merge(&other.hist);
    }

    /// Number of recorded operations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.hist.count
    }

    /// Smallest recorded latency in microseconds, 0 when empty.
    #[must_use]
    pub fn min_us(&self) -> u64 {
        self.hist.min()
    }

    /// Largest recorded latency, in microseconds.
    #[must_use]
    pub fn max_us(&self) -> u64 {
        self.hist.max
    }

    /// Mean latency in microseconds.
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        self.hist.mean()
    }

    /// Nearest-rank percentile (`p` in [0, 1]), an upper bound within one
    /// power-of-two bucket of the true order statistic (see
    /// [`obs::HistogramSnapshot::percentile`]).
    #[must_use]
    pub fn percentile_us(&self, p: f64) -> u64 {
        self.hist.percentile(p)
    }

    /// The underlying histogram, for callers that want bucket detail.
    #[must_use]
    pub fn histogram(&self) -> &HistogramSnapshot {
        &self.hist
    }
}

/// What one application-server thread measured.
#[derive(Debug, Clone)]
pub struct ThreadReport {
    /// Thread index (0-based).
    pub thread: usize,
    /// Resource usage accumulated by this thread during measurement.
    pub usage: ResourceUsage,
    /// Per-interaction wall-clock latency on this thread.
    pub latency: LatencyStats,
    /// Interactions that failed even after a retry.
    pub failed: u64,
    /// Interactions that needed a conflict retry.
    pub retried: u64,
    /// Seconds this thread spent in the measurement phase.
    pub wall_seconds: f64,
}

/// The outcome of one multi-threaded run.
#[derive(Debug, Clone)]
pub struct ConcurrentResult {
    /// The configuration driven (requests are split across threads).
    pub config: ExperimentConfig,
    /// Number of application-server threads.
    pub threads: usize,
    /// Wall-clock duration of the measurement phase (slowest thread).
    pub wall_seconds: f64,
    /// Measured aggregate throughput: transactions per wall-clock second.
    pub throughput_rps: f64,
    /// Merged resource usage across threads.
    pub usage: ResourceUsage,
    /// Merged per-interaction latency across threads.
    pub latency: LatencyStats,
    /// Cluster-wide cache statistics for the measurement phase.
    pub cache_stats: CacheStats,
    /// Cache hit rate over cacheable calls.
    pub hit_rate: f64,
    /// Total failed interactions.
    pub failed: u64,
    /// Total retried interactions.
    pub retried: u64,
    /// Per-thread breakdown.
    pub per_thread: Vec<ThreadReport>,
    /// The database's per-table lock counters at the end of the run (reads,
    /// writes, and how many of each had to wait).
    pub db_shards: Vec<ShardStats>,
}

impl ConcurrentResult {
    /// Measured speedup over another (typically single-threaded) run.
    #[must_use]
    pub fn speedup_over(&self, baseline: &ConcurrentResult) -> f64 {
        if baseline.throughput_rps <= 0.0 {
            0.0
        } else {
            self.throughput_rps / baseline.throughput_rps
        }
    }
}

/// Runs the RUBiS bidding mix from `threads` application-server threads
/// sharing one simulated cluster, and reports measured aggregate throughput.
///
/// `config.requests` and `config.warmup_requests` are totals, split evenly
/// across threads; each thread drives its own partition of the client
/// sessions with a thread-specific RNG stream, so the *workload* each thread
/// submits is deterministic for a given `(seed, threads)` pair. The measured
/// results are not: real thread interleaving decides which transactions
/// conflict and what each lookup finds, so throughput, hit rate, and retry
/// counts vary run to run.
pub fn run_concurrent(config: &ExperimentConfig, threads: usize) -> Result<ConcurrentResult> {
    let threads = threads.max(1);
    let cluster = SimCluster::build(config)?;

    let warmup_per_thread = config.warmup_requests.div_ceil(threads);
    let measured_per_thread = config.requests.div_ceil(threads);
    let sessions_per_thread = (config.sessions / threads).max(1);

    // Two rendezvous points: after warmup (the leader resets cache counters,
    // as the single-threaded runner does) and before timing starts.
    let post_warmup = Barrier::new(threads);
    let start_line = Barrier::new(threads);

    let reports: Vec<ThreadReport> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for thread in 0..threads {
            let cluster = &cluster;
            let post_warmup = &post_warmup;
            let start_line = &start_line;
            handles.push(scope.spawn(move || {
                let app = cluster.app.clone();
                let mut sessions: Vec<ClientSession> = (0..sessions_per_thread)
                    .map(|i| {
                        ClientSession::new(
                            config
                                .seed
                                .wrapping_add((thread * sessions_per_thread + i) as u64 + 1),
                            cluster.scale,
                            WorkloadConfig {
                                staleness: config.staleness,
                                ..WorkloadConfig::default()
                            },
                        )
                    })
                    .collect();
                let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed ^ (thread as u64) << 32);

                let run_one = |i: usize,
                               sessions: &mut Vec<ClientSession>,
                               rng: &mut StdRng,
                               usage: &mut ResourceUsage,
                               latency: &mut LatencyStats,
                               failed: &mut u64,
                               retried: &mut u64,
                               measuring: bool| {
                    // Exponential inter-arrival on the shared simulated clock;
                    // every request advances it the same way as the
                    // single-threaded runner, so the update density per
                    // staleness window is independent of the thread count.
                    let u: f64 = rng.random_range(f64::EPSILON..1.0);
                    let dt = (-(config.interarrival_micros as f64) * u.ln()) as u64;
                    cluster.clock.advance_micros(dt.max(1));

                    // Each driver thread pumps the invalidation stream to the
                    // active cache backend (cheap no-op when nothing new
                    // committed); maintenance additionally reaps pins and
                    // evicts hopelessly stale entries.
                    cluster.txcache.pump_invalidations();
                    if i.is_multiple_of(128) {
                        cluster.txcache.maintenance();
                    }

                    let session = &mut sessions[i % sessions_per_thread];
                    let interaction = session.next_interaction();
                    let t0 = Instant::now();
                    match session.run(&app, interaction) {
                        Ok(report) => {
                            if measuring {
                                usage.absorb(&report.commit);
                                if report.retried {
                                    *retried += 1;
                                }
                            }
                        }
                        Err(_) => {
                            if measuring {
                                *failed += 1;
                            }
                        }
                    }
                    if measuring {
                        latency
                            .record_us(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                    }
                };

                let mut usage = ResourceUsage::default();
                let mut latency = LatencyStats::default();
                let (mut failed, mut retried) = (0u64, 0u64);

                for i in 0..warmup_per_thread {
                    run_one(
                        i,
                        &mut sessions,
                        &mut rng,
                        &mut usage,
                        &mut latency,
                        &mut failed,
                        &mut retried,
                        false,
                    );
                }

                if post_warmup.wait().is_leader() {
                    cluster.cache.reset_stats();
                    // Shard lock counters likewise cover only the measured
                    // window, so the reported contention is comparable with
                    // the measured throughput.
                    cluster.db.reset_shard_stats();
                }
                start_line.wait();

                let t0 = Instant::now();
                for i in 0..measured_per_thread {
                    run_one(
                        warmup_per_thread + i,
                        &mut sessions,
                        &mut rng,
                        &mut usage,
                        &mut latency,
                        &mut failed,
                        &mut retried,
                        true,
                    );
                }
                let wall_seconds = t0.elapsed().as_secs_f64();

                ThreadReport {
                    thread,
                    usage,
                    latency,
                    failed,
                    retried,
                    wall_seconds,
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("application-server thread panicked"))
            .collect()
    });

    let mut usage = ResourceUsage::default();
    let mut latency = LatencyStats::default();
    let (mut failed, mut retried) = (0u64, 0u64);
    let mut wall_seconds: f64 = 0.0;
    for r in &reports {
        usage.merge(&r.usage);
        latency.merge(&r.latency);
        failed += r.failed;
        retried += r.retried;
        wall_seconds = wall_seconds.max(r.wall_seconds);
    }

    let throughput_rps = if wall_seconds > 0.0 {
        usage.requests as f64 / wall_seconds
    } else {
        0.0
    };

    Ok(ConcurrentResult {
        config: *config,
        threads,
        wall_seconds,
        throughput_rps,
        hit_rate: usage.hit_rate(),
        usage,
        latency,
        cache_stats: cluster.cache.stats(),
        failed,
        retried,
        per_thread: reports,
        db_shards: cluster.db.shard_stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DbKind;
    use txcache::CacheMode;

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig {
            scale_factor: 0.002,
            requests: 400,
            warmup_requests: 200,
            sessions: 8,
            ..ExperimentConfig::new(DbKind::InMemory)
        }
    }

    #[test]
    fn latency_stats_record_and_merge() {
        let mut a = LatencyStats::default();
        for us in [10, 20, 40, 80] {
            a.record_us(us);
        }
        let mut b = LatencyStats::default();
        b.record_us(1000);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.min_us(), 10);
        assert_eq!(a.max_us(), 1000);
        assert!(a.mean_us() > 0.0);
        assert!(a.percentile_us(0.5) <= a.percentile_us(1.0));
        assert!(a.percentile_us(1.0) >= 1000);
    }

    #[test]
    fn concurrent_run_preserves_workload_and_uses_all_threads() {
        let result = run_concurrent(&quick_config(), 4).unwrap();
        assert_eq!(result.threads, 4);
        assert_eq!(result.per_thread.len(), 4);
        assert!(
            result.db_shards.iter().any(|s| s.read_locks > 0),
            "the run must have taken shared table locks"
        );
        assert!(result.usage.requests >= 400);
        assert!(result.throughput_rps > 0.0);
        assert!(result.hit_rate > 0.1, "hit rate {}", result.hit_rate);
        assert!(
            result.failed <= result.usage.requests / 20,
            "too many failures: {} of {}",
            result.failed,
            result.usage.requests
        );
        for t in &result.per_thread {
            assert!(t.usage.requests > 0, "thread {} did no work", t.thread);
        }
    }

    #[test]
    fn single_thread_matches_the_sequential_runner_shape() {
        let result = run_concurrent(&quick_config(), 1).unwrap();
        assert_eq!(result.threads, 1);
        assert!(result.usage.cacheable_calls > 0);
        assert!(result.latency.count() >= 400);
    }

    #[test]
    fn concurrent_run_works_with_cache_disabled() {
        let config = ExperimentConfig {
            mode: CacheMode::Disabled,
            ..quick_config()
        };
        let result = run_concurrent(&config, 2).unwrap();
        assert_eq!(result.hit_rate, 0.0);
        assert!(result.usage.requests >= 400);
    }
}
