//! Deserialization half of the vendored serde subset.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Error trait for deserializers.
pub trait Error: Sized + std::error::Error {
    fn custom<T: Display>(msg: T) -> Self;

    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }

    fn invalid_length(len: usize, expected: &dyn Display) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {expected}"))
    }
}

/// A data structure that can be deserialized from any serde data format.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A type that can be deserialized without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A stateful deserialization driver (the seed form of [`Deserialize`]).
pub trait DeserializeSeed<'de>: Sized {
    type Value;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A serde data format that can deserialize any supported data structure.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Receives values produced by a [`Deserializer`].
pub trait Visitor<'de>: Sized {
    type Value;

    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected bool {v}")))
    }
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(i64::from(v))
    }
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(i64::from(v))
    }
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(i64::from(v))
    }
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected i64 {v}")))
    }
    fn visit_i128<E: Error>(self, v: i128) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected i128 {v}")))
    }
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(u64::from(v))
    }
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(u64::from(v))
    }
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(u64::from(v))
    }
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected u64 {v}")))
    }
    fn visit_u128<E: Error>(self, v: u128) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected u128 {v}")))
    }
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(f64::from(v))
    }
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected f64 {v}")))
    }
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        let mut buf = [0u8; 4];
        self.visit_str(v.encode_utf8(&mut buf))
    }
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected string {v:?}")))
    }
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom("unexpected bytes"))
    }
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected Option::None"))
    }
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::custom("unexpected Option::Some"))
    }
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected unit"))
    }
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::custom("unexpected newtype struct"))
    }
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(Error::custom("unexpected sequence"))
    }
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(Error::custom("unexpected map"))
    }
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(Error::custom("unexpected enum"))
    }
}

/// Access to the elements of a serialized sequence.
pub trait SeqAccess<'de> {
    type Error: Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a serialized map.
pub trait MapAccess<'de> {
    type Error: Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(key) => Ok(Some((key, self.next_value()?))),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of a serialized enum.
pub trait EnumAccess<'de>: Sized {
    type Error: Error;
    type Variant: VariantAccess<'de, Error = Self::Error>;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of a serialized enum variant.
pub trait VariantAccess<'de>: Sized {
    type Error: Error;

    fn unit_variant(self) -> Result<(), Self::Error>;

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of a plain value into a [`Deserializer`] that yields it.
pub trait IntoDeserializer<'de, E: Error> {
    type Deserializer: Deserializer<'de, Error = E>;
    fn into_deserializer(self) -> Self::Deserializer;
}

macro_rules! primitive_into_deserializer {
    ($($ty:ty => $name:ident, $visit:ident;)*) => {
        $(
            /// Deserializer wrapping a plain value.
            pub struct $name<E> {
                value: $ty,
                marker: PhantomData<E>,
            }

            impl<'de, E: Error> IntoDeserializer<'de, E> for $ty {
                type Deserializer = $name<E>;
                fn into_deserializer(self) -> $name<E> {
                    $name { value: self, marker: PhantomData }
                }
            }

            impl<'de, E: Error> Deserializer<'de> for $name<E> {
                type Error = E;

                fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                    visitor.$visit(self.value)
                }

                forward_to_any! {
                    deserialize_bool deserialize_i8 deserialize_i16 deserialize_i32
                    deserialize_i64 deserialize_i128 deserialize_u8 deserialize_u16
                    deserialize_u32 deserialize_u64 deserialize_u128 deserialize_f32
                    deserialize_f64 deserialize_char deserialize_str deserialize_string
                    deserialize_bytes deserialize_byte_buf deserialize_option
                    deserialize_unit deserialize_seq deserialize_map
                    deserialize_identifier deserialize_ignored_any
                }

                fn deserialize_unit_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    visitor: V,
                ) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }
                fn deserialize_newtype_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    visitor: V,
                ) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }
                fn deserialize_tuple<V: Visitor<'de>>(
                    self,
                    _len: usize,
                    visitor: V,
                ) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }
                fn deserialize_tuple_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    _len: usize,
                    visitor: V,
                ) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }
                fn deserialize_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    _fields: &'static [&'static str],
                    visitor: V,
                ) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }
                fn deserialize_enum<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    _variants: &'static [&'static str],
                    visitor: V,
                ) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }
            }
        )*
    };
}

macro_rules! forward_to_any {
    ($($method:ident)*) => {
        $(
            fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
        )*
    };
}

primitive_into_deserializer! {
    u8 => U8Deserializer, visit_u8;
    u16 => U16Deserializer, visit_u16;
    u32 => U32Deserializer, visit_u32;
    u64 => U64Deserializer, visit_u64;
    i64 => I64Deserializer, visit_i64;
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! primitive_deserialize {
    ($($ty:ty => $method:ident, $visit:ident;)*) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct PrimitiveVisitor;
                    impl<'de> Visitor<'de> for PrimitiveVisitor {
                        type Value = $ty;
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str(stringify!($ty))
                        }
                        fn $visit<E: Error>(self, v: $ty) -> Result<$ty, E> {
                            Ok(v)
                        }
                    }
                    deserializer.$method(PrimitiveVisitor)
                }
            }
        )*
    };
}

primitive_deserialize! {
    bool => deserialize_bool, visit_bool;
    i8 => deserialize_i8, visit_i8;
    i16 => deserialize_i16, visit_i16;
    i32 => deserialize_i32, visit_i32;
    i64 => deserialize_i64, visit_i64;
    i128 => deserialize_i128, visit_i128;
    u8 => deserialize_u8, visit_u8;
    u16 => deserialize_u16, visit_u16;
    u32 => deserialize_u32, visit_u32;
    u64 => deserialize_u64, visit_u64;
    u128 => deserialize_u128, visit_u128;
    char => deserialize_char, visit_char;
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct F32Visitor;
        impl<'de> Visitor<'de> for F32Visitor {
            type Value = f32;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("f32")
            }
            fn visit_f32<E: Error>(self, v: f32) -> Result<f32, E> {
                Ok(v)
            }
            fn visit_f64<E: Error>(self, v: f64) -> Result<f32, E> {
                Ok(v as f32)
            }
        }
        deserializer.deserialize_f32(F32Visitor)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct F64Visitor;
        impl<'de> Visitor<'de> for F64Visitor {
            type Value = f64;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("f64")
            }
            fn visit_f64<E: Error>(self, v: f64) -> Result<f64, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_f64(F64Visitor)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = u64::deserialize(deserializer)?;
        usize::try_from(v).map_err(|_| Error::custom("u64 out of range for usize"))
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = i64::deserialize(deserializer)?;
        isize::try_from(v).map_err(|_| Error::custom("i64 out of range for isize"))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K, V> Visitor<'de> for MapVisitor<K, V>
        where
            K: Deserialize<'de> + Ord,
            V: Deserialize<'de>,
        {
            type Value = std::collections::BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for MapVisitor<K, V, H>
        where
            K: Deserialize<'de> + Eq + std::hash::Hash,
            V: Deserialize<'de>,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashMap::with_capacity_and_hasher(0, H::default());
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(deserializer)?;
        Ok(items.into_iter().collect())
    }
}

macro_rules! tuple_deserialize {
    ($(($len:expr => $($n:tt $ty:ident),+),)*) => {
        $(
            impl<'de, $($ty: Deserialize<'de>),+> Deserialize<'de> for ($($ty,)+) {
                fn deserialize<__D: Deserializer<'de>>(
                    deserializer: __D,
                ) -> Result<Self, __D::Error> {
                    struct TupleVisitor<$($ty),+>(PhantomData<($($ty,)+)>);
                    impl<'de, $($ty: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($ty),+> {
                        type Value = ($($ty,)+);
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str(concat!("a tuple of length ", stringify!($len)))
                        }
                        fn visit_seq<__A: SeqAccess<'de>>(
                            self,
                            mut seq: __A,
                        ) -> Result<Self::Value, __A::Error> {
                            Ok(($(
                                match seq.next_element::<$ty>()? {
                                    Some(value) => value,
                                    None => return Err(Error::invalid_length($n, &$len)),
                                },
                            )+))
                        }
                    }
                    deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
                }
            }
        )*
    };
}

tuple_deserialize! {
    (1 => 0 A),
    (2 => 0 A, 1 B),
    (3 => 0 A, 1 B, 2 C),
    (4 => 0 A, 1 B, 2 C, 3 D),
    (5 => 0 A, 1 B, 2 C, 3 D, 4 E),
    (6 => 0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
    (7 => 0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G),
    (8 => 0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H),
}
