//! Experiment configuration and execution.
//!
//! An experiment assembles a simulated cluster — one `mvdb` database, a set
//! of cache nodes, a pincushion, and the TxCache library — loads a RUBiS
//! dataset, warms the cache, drives the bidding workload for a configured
//! number of requests, and reports the measured hit rates, miss breakdown,
//! and modelled peak throughput.

use std::sync::Arc;

use cache_server::{CacheCluster, CacheStats};
use mvdb::{Database, DbConfig, ExecOptions};
use pincushion::{Pincushion, PincushionConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rubis::{ClientSession, RubisApp, RubisScale, WorkloadConfig};
use serde::{Deserialize, Serialize};
use txcache::backend::{CacheBackend, RemoteCluster};
use txcache::{CacheMode, TimestampPolicy, TxCache, TxCacheConfig};
use txtypes::{Result, SimClock, Staleness};

use crate::costmodel::{Bottleneck, CostModel, ResourceUsage};

/// Which of the paper's two database configurations to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DbKind {
    /// Working set fits in the buffer cache (§8: 850 MB database).
    InMemory,
    /// Database several times larger than the buffer cache (§8: 6 GB).
    DiskBound,
}

impl DbKind {
    /// The cost model matching this configuration.
    #[must_use]
    pub fn cost_model(self) -> CostModel {
        match self {
            DbKind::InMemory => CostModel::in_memory(),
            DbKind::DiskBound => CostModel::disk_bound(),
        }
    }

    /// The RUBiS scale for this configuration at the given scale factor.
    #[must_use]
    pub fn scale(self, factor: f64) -> RubisScale {
        match self {
            DbKind::InMemory => RubisScale::in_memory(factor),
            DbKind::DiskBound => RubisScale::disk_bound(factor),
        }
    }
}

/// Full description of one experiment point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Database configuration.
    pub db_kind: DbKind,
    /// Fraction of the paper's full-scale dataset to generate (and to scale
    /// cache sizes by). 1.0 reproduces the paper's sizes exactly.
    pub scale_factor: f64,
    /// Total cache capacity across all nodes, expressed at *full* scale in
    /// bytes (it is multiplied by `scale_factor` like the dataset).
    pub cache_bytes_full_scale: usize,
    /// Number of cache nodes.
    pub cache_nodes: usize,
    /// Cache mode (TxCache, no-consistency baseline, or no caching).
    pub mode: CacheMode,
    /// Timestamp selection policy (lazy, or eager for the ablation).
    pub policy: TimestampPolicy,
    /// Read-only transaction staleness limit.
    pub staleness: Staleness,
    /// Number of measured requests.
    pub requests: usize,
    /// Number of warm-up requests executed before measurement.
    pub warmup_requests: usize,
    /// Number of emulated client sessions.
    pub sessions: usize,
    /// Mean inter-arrival time between requests on the simulated clock, in
    /// microseconds. Together with the staleness limit this determines how
    /// many updates fall inside a staleness window.
    pub interarrival_micros: u64,
    /// RNG seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// A reasonable default configuration for the given database kind,
    /// matching the paper's defaults (30-second staleness, 512 MB / 9 GB
    /// cache).
    #[must_use]
    pub fn new(db_kind: DbKind) -> ExperimentConfig {
        let cache_bytes_full_scale = match db_kind {
            DbKind::InMemory => 512 << 20,
            DbKind::DiskBound => 9 << 30,
        };
        ExperimentConfig {
            db_kind,
            scale_factor: 0.02,
            cache_bytes_full_scale,
            cache_nodes: db_kind.cost_model().cache_nodes,
            mode: CacheMode::Full,
            policy: TimestampPolicy::Lazy,
            staleness: Staleness::seconds(30),
            requests: 4_000,
            warmup_requests: 2_000,
            sessions: 64,
            interarrival_micros: 10_000,
            seed: 42,
        }
    }

    /// Scaled cache capacity in bytes.
    #[must_use]
    pub fn cache_bytes(&self) -> usize {
        ((self.cache_bytes_full_scale as f64) * self.scale_factor) as usize
    }
}

/// A fully assembled simulated cluster.
pub struct SimCluster {
    /// The shared simulated clock.
    pub clock: SimClock,
    /// The database server.
    pub db: Arc<Database>,
    /// The cache tier — the in-process cluster by default, or a remote
    /// `txcached` deployment when built with [`SimCluster::build_remote`].
    pub cache: Arc<dyn CacheBackend>,
    /// The pincushion.
    pub pincushion: Arc<Pincushion>,
    /// The TxCache library instance shared by the web servers.
    pub txcache: Arc<TxCache>,
    /// The RUBiS application.
    pub app: RubisApp,
    /// The generated dataset's scale.
    pub scale: RubisScale,
}

impl SimCluster {
    /// Builds the cluster for `config` with the in-process cache backend and
    /// loads the RUBiS dataset.
    pub fn build(config: &ExperimentConfig) -> Result<SimCluster> {
        SimCluster::build_with(config, None)
    }

    /// Builds the cluster against an already-running set of `txcached`
    /// servers (one consistent-hash ring node per address). The servers'
    /// capacity is whatever they were started with; `config.cache_bytes()`
    /// is ignored in this mode.
    pub fn build_remote(config: &ExperimentConfig, addrs: &[String]) -> Result<SimCluster> {
        let backend: Arc<dyn CacheBackend> = Arc::new(RemoteCluster::connect(addrs)?);
        SimCluster::build_with(config, Some(backend))
    }

    fn build_with(
        config: &ExperimentConfig,
        backend: Option<Arc<dyn CacheBackend>>,
    ) -> Result<SimCluster> {
        let clock = SimClock::new();
        let scale = config.db_kind.scale(config.scale_factor);

        // Size the buffer pool: the in-memory configuration holds the whole
        // working set; the disk-bound configuration holds only a fraction.
        let rows_per_page = 32usize;
        let total_rows = scale.users
            + scale.total_items() * (1 + scale.bids_per_item)
            + scale.users * scale.comments_per_user
            + scale.active_items;
        let total_pages = (total_rows / rows_per_page).max(64);
        let buffer_pages = match config.db_kind {
            DbKind::InMemory => total_pages * 4,
            DbKind::DiskBound => (total_pages / 8).max(64),
        };

        let db = Arc::new(Database::new(
            DbConfig {
                buffer_pages,
                rows_per_page,
                wildcard_threshold: 64,
                exec: ExecOptions::default(),
                ..DbConfig::default()
            },
            clock.clone(),
        ));
        rubis::create_tables(&db)?;
        rubis::populate(&db, &scale, config.seed)?;

        let cache: Arc<dyn CacheBackend> = match backend {
            Some(backend) => backend,
            None => Arc::new(CacheCluster::with_total_capacity(
                config.cache_nodes,
                config.cache_bytes().max(1),
            )),
        };
        let pincushion = Arc::new(Pincushion::new(PincushionConfig::default(), clock.clone()));
        let txcache = Arc::new(TxCache::with_backend(
            Arc::clone(&db),
            Arc::clone(&cache),
            Arc::clone(&pincushion),
            clock.clone(),
            TxCacheConfig {
                mode: config.mode,
                policy: config.policy,
                ..TxCacheConfig::default()
            },
        ));
        let app = RubisApp::new(Arc::clone(&txcache));
        Ok(SimCluster {
            clock,
            db,
            cache,
            pincushion,
            txcache,
            app,
            scale,
        })
    }
}

/// The measured outcome of one experiment point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// Modelled peak throughput of the cluster, in requests per second.
    pub peak_throughput: f64,
    /// Which tier saturates at peak load.
    pub bottleneck: Bottleneck,
    /// Cache hit rate over cacheable calls during measurement.
    pub hit_rate: f64,
    /// Aggregated resource usage during measurement.
    pub usage: ResourceUsage,
    /// Cache-cluster statistics during measurement (includes the §8.3 miss
    /// breakdown).
    pub cache_stats: CacheStats,
    /// Interactions that failed even after a retry (should be rare).
    pub failed_requests: u64,
    /// Interactions that needed a conflict retry.
    pub retried_requests: u64,
}

impl ExperimentResult {
    /// Speedup relative to another (baseline) result.
    #[must_use]
    pub fn speedup_over(&self, baseline: &ExperimentResult) -> f64 {
        if baseline.peak_throughput <= 0.0 {
            0.0
        } else {
            self.peak_throughput / baseline.peak_throughput
        }
    }
}

/// Runs one experiment point: build, warm up, measure.
pub fn run_experiment(config: &ExperimentConfig) -> Result<ExperimentResult> {
    let cluster = SimCluster::build(config)?;
    let mut sessions: Vec<ClientSession> = (0..config.sessions)
        .map(|i| {
            ClientSession::new(
                config.seed.wrapping_add(i as u64 + 1),
                cluster.scale,
                WorkloadConfig {
                    staleness: config.staleness,
                    ..WorkloadConfig::default()
                },
            )
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed);

    let mut usage = ResourceUsage::default();
    let mut failed = 0u64;
    let mut retried = 0u64;

    let total = config.warmup_requests + config.requests;
    for i in 0..total {
        // Advance the simulated clock by an exponential inter-arrival time.
        let u: f64 = rng.random_range(f64::EPSILON..1.0);
        let dt = (-(config.interarrival_micros as f64) * u.ln()) as u64;
        cluster.clock.advance_micros(dt.max(1));

        // The driver loop owns invalidation delivery: pump the database's
        // stream to whichever cache backend is active (a no-op when nothing
        // committed since the last pump), standing in for the paper's
        // asynchronous multicast.
        cluster.txcache.pump_invalidations();

        // Periodic maintenance: reap pins, evict entries too stale to use.
        if i % 128 == 0 {
            cluster.txcache.maintenance();
        }

        let session = &mut sessions[i % config.sessions.max(1)];
        let interaction = session.next_interaction();
        let measuring = i >= config.warmup_requests;
        match session.run(&cluster.app, interaction) {
            Ok(report) => {
                if measuring {
                    usage.absorb(&report.commit);
                    if report.retried {
                        retried += 1;
                    }
                }
            }
            Err(_) => {
                if measuring {
                    failed += 1;
                }
            }
        }

        // Reset measurement counters at the warmup/measurement boundary (the
        // cache itself stays warm, as in the paper's snapshot-restore setup).
        if i + 1 == config.warmup_requests {
            cluster.cache.reset_stats();
        }
    }

    let model = config.db_kind.cost_model();
    let cache_stats = cluster.cache.stats();
    Ok(ExperimentResult {
        config: *config,
        peak_throughput: usage.peak_throughput(&model),
        bottleneck: usage.bottleneck(&model),
        hit_rate: usage.hit_rate(),
        usage,
        cache_stats,
        failed_requests: failed,
        retried_requests: retried,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(mode: CacheMode) -> ExperimentConfig {
        ExperimentConfig {
            scale_factor: 0.002,
            requests: 300,
            warmup_requests: 150,
            sessions: 8,
            mode,
            ..ExperimentConfig::new(DbKind::InMemory)
        }
    }

    #[test]
    fn txcache_beats_the_no_cache_baseline() {
        let cached = run_experiment(&quick_config(CacheMode::Full)).unwrap();
        let baseline = run_experiment(&quick_config(CacheMode::Disabled)).unwrap();
        assert!(
            cached.hit_rate > 0.2,
            "hit rate {} too low",
            cached.hit_rate
        );
        assert!(
            cached.speedup_over(&baseline) > 1.2,
            "caching should speed things up: {} vs {}",
            cached.peak_throughput,
            baseline.peak_throughput
        );
        assert_eq!(baseline.hit_rate, 0.0);
        assert!(cached.failed_requests <= 3);
    }

    #[test]
    fn consistency_misses_are_a_small_fraction() {
        let result = run_experiment(&quick_config(CacheMode::Full)).unwrap();
        let misses = result.cache_stats.misses().max(1);
        let consistency_fraction = result.cache_stats.consistency_misses as f64 / misses as f64;
        assert!(
            consistency_fraction < 0.30,
            "consistency misses should be the rarest class, got {consistency_fraction}"
        );
    }

    #[test]
    fn cluster_builder_sizes_buffer_by_kind() {
        let in_mem = ExperimentConfig {
            scale_factor: 0.002,
            ..ExperimentConfig::new(DbKind::InMemory)
        };
        let cluster = SimCluster::build(&in_mem).unwrap();
        assert!(cluster.db.total_bytes() > 0);
        assert_eq!(in_mem.cache_bytes(), (512usize << 20) / 500);
    }
}
