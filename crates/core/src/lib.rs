//! # txcache — transactional consistency and automatic management for an
//! application data cache
//!
//! This crate is the reproduction of the paper's primary contribution: the
//! TxCache client library (Ports et al., OSDI 2010). It sits between an
//! application, a [`mvdb::Database`] (our stand-in for the paper's modified
//! PostgreSQL), a [`cache_server::CacheCluster`] and a
//! [`pincushion::Pincushion`], and provides:
//!
//! * the Figure-2 programming model — `BEGIN-RO(staleness)` / `BEGIN-RW` /
//!   `COMMIT` / `ABORT` and cacheable functions;
//! * **transactional consistency**: everything a read-only transaction sees,
//!   whether from the cache or the database, reflects one (possibly slightly
//!   stale) snapshot;
//! * **lazy timestamp selection** via a pin set of candidate serialization
//!   points (§6.2), with the eager alternative available for ablation;
//! * **automatic cache management**: keys are derived from the function name
//!   and arguments, results are inserted with the validity interval and
//!   invalidation tags accumulated from their database reads, and entries are
//!   invalidated automatically by the database's invalidation stream;
//! * **nested cacheable calls** with per-frame accumulation (§6.3).
//!
//! ```
//! use std::sync::Arc;
//! use cache_server::CacheCluster;
//! use mvdb::{ColumnType, Database, Predicate, SelectQuery, TableSchema, Value};
//! use pincushion::Pincushion;
//! use txcache::{TxCache, TxCacheConfig};
//! use txtypes::{SimClock, Staleness};
//!
//! // Wire up the components (one database, one cache cluster, a pincushion).
//! let clock = SimClock::new();
//! let db = Arc::new(Database::new(mvdb::DbConfig::default(), clock.clone()));
//! db.create_table(
//!     TableSchema::new("users")
//!         .column("id", ColumnType::Int)
//!         .column("name", ColumnType::Text)
//!         .unique_index("id"),
//! ).unwrap();
//! db.bulk_load("users", vec![vec![Value::Int(1), Value::text("alice")]]).unwrap();
//! let cache = Arc::new(CacheCluster::new(2, 1 << 20));
//! let pc = Arc::new(Pincushion::new(Default::default(), clock.clone()));
//! let txcache = TxCache::new(db, cache, pc, clock, TxCacheConfig::default());
//!
//! // A read-only transaction with a 30-second staleness limit.
//! let mut tx = txcache.begin_ro(Staleness::seconds(30)).unwrap();
//! let name: String = tx.cached("user_name", &1i64, |tx| {
//!     let q = SelectQuery::table("users").filter(Predicate::eq("id", 1i64));
//!     let r = tx.query(&q)?;
//!     Ok(r.get(0, "name")?.as_text().unwrap_or_default().to_string())
//! }).unwrap();
//! assert_eq!(name, "alice");
//! tx.commit().unwrap();
//!
//! // The same call in a new transaction is served from the cache.
//! let mut tx = txcache.begin_ro(Staleness::seconds(30)).unwrap();
//! let again: String = tx.cached("user_name", &1i64, |_| unreachable!("cache hit expected")).unwrap();
//! assert_eq!(again, "alice");
//! tx.commit().unwrap();
//! ```

#![forbid(unsafe_code)]

pub mod backend;
pub mod codec;
pub mod config;
pub mod handle;
pub mod pinset;
pub mod stats;
pub mod transaction;

pub use backend::{CacheBackend, RemoteCluster, RemoteOptions};
pub use config::{BackendKind, CacheMode, TimestampPolicy, TxCacheConfig};
pub use handle::TxCache;
pub use pinset::PinSet;
pub use stats::{AtomicClientStats, ClientStats, CommitInfo};
pub use transaction::Transaction;
