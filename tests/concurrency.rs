//! Concurrency tests: the paper's consistency guarantee must hold when many
//! application-server threads share one `TxCache` — every read-only
//! transaction, whether its reads are served by the cache or the database,
//! observes a single consistent snapshot even while writers commit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use txcache_repro::cache_server::CacheCluster;
use txcache_repro::harness::{run_concurrent, DbKind, ExperimentConfig};
use txcache_repro::mvdb::{
    ColumnType, Database, DbConfig, Predicate, SelectQuery, TableSchema, Value,
};
use txcache_repro::pincushion::Pincushion;
use txcache_repro::txcache::{CacheMode, Transaction, TxCache, TxCacheConfig};
use txcache_repro::txtypes::{Result, SimClock, Staleness};

const TOTAL: i64 = 100;

/// Builds the two-account bank whose invariant is balance(1) + balance(2) == 100.
fn bank(mode: CacheMode) -> (Arc<TxCache>, SimClock) {
    let clock = SimClock::new();
    let db = Arc::new(Database::new(DbConfig::default(), clock.clone()));
    db.create_table(
        TableSchema::new("accounts")
            .column("id", ColumnType::Int)
            .column("balance", ColumnType::Int)
            .unique_index("id"),
    )
    .unwrap();
    db.bulk_load(
        "accounts",
        vec![
            vec![Value::Int(1), Value::Int(60)],
            vec![Value::Int(2), Value::Int(TOTAL - 60)],
        ],
    )
    .unwrap();
    let cache = Arc::new(CacheCluster::new(2, 4 << 20));
    let pincushion = Arc::new(Pincushion::new(Default::default(), clock.clone()));
    let txcache = Arc::new(TxCache::new(
        db,
        cache,
        pincushion,
        clock.clone(),
        TxCacheConfig {
            mode,
            ..TxCacheConfig::default()
        },
    ));
    (txcache, clock)
}

fn balance(tx: &mut Transaction<'_>, account: i64) -> Result<i64> {
    tx.cached("balance", &account, |tx| {
        let q = SelectQuery::table("accounts").filter(Predicate::eq("id", account));
        let r = tx.query(&q)?;
        Ok(r.get(0, "balance")?.as_int().unwrap_or(0))
    })
}

fn transfer(txcache: &TxCache, amount: i64) {
    loop {
        let mut tx = txcache.begin_rw().unwrap();
        let result = (|| -> Result<()> {
            let q1 = SelectQuery::table("accounts").filter(Predicate::eq("id", 1i64));
            let a = tx.query(&q1)?.get(0, "balance")?.as_int().unwrap_or(0);
            tx.update(
                "accounts",
                &Predicate::eq("id", 1i64),
                &[("balance".to_string(), Value::Int(a - amount))],
            )?;
            let q2 = SelectQuery::table("accounts").filter(Predicate::eq("id", 2i64));
            let b = tx.query(&q2)?.get(0, "balance")?.as_int().unwrap_or(0);
            tx.update(
                "accounts",
                &Predicate::eq("id", 2i64),
                &[("balance".to_string(), Value::Int(b + amount))],
            )?;
            Ok(())
        })();
        match result {
            Ok(()) => {
                tx.commit().unwrap();
                return;
            }
            Err(e) if e.is_retryable() => {
                let _ = tx.abort();
            }
            Err(e) => panic!("transfer failed: {e}"),
        }
    }
}

/// The tentpole acceptance check: while one writer thread keeps moving money
/// between the accounts, concurrent reader threads — hitting a mix of cached
/// and uncached state at a generous staleness limit — must always see the two
/// balances sum to the invariant total.
#[test]
fn bank_invariant_holds_under_concurrent_readers() {
    let (txcache, clock) = bank(CacheMode::Full);
    let stop = AtomicBool::new(false);
    let readers = 4;
    let checks_per_reader = 300;

    std::thread::scope(|scope| {
        let writer = {
            let txcache = &txcache;
            let clock = &clock;
            let stop = &stop;
            scope.spawn(move || {
                let mut round = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    transfer(txcache, if round % 2 == 0 { 5 } else { -5 });
                    clock.advance_micros(50_000);
                    txcache.maintenance();
                    round += 1;
                }
                round
            })
        };

        let handles: Vec<_> = (0..readers)
            .map(|reader| {
                let txcache = &txcache;
                let clock = &clock;
                scope.spawn(move || {
                    for check in 0..checks_per_reader {
                        clock.advance_micros(10_000);
                        let mut tx = txcache.begin_ro(Staleness::seconds(30)).unwrap();
                        let a = balance(&mut tx, 1).unwrap();
                        let b = balance(&mut tx, 2).unwrap();
                        tx.commit().unwrap();
                        assert_eq!(
                            a + b,
                            TOTAL,
                            "reader {reader} check {check}: snapshot isolation violated: \
                             {a} + {b} != {TOTAL}"
                        );
                    }
                })
            })
            .collect();

        for h in handles {
            h.join().expect("reader thread panicked");
        }
        stop.store(true, Ordering::Relaxed);
        let rounds = writer.join().expect("writer thread panicked");
        assert!(rounds > 0, "the writer never committed a transfer");
    });

    // The run exercised the cache, not just the database.
    let stats = txcache.stats();
    assert!(stats.cache_hits > 0, "expected cache hits, got {stats:?}");

    // A final fresh read agrees with the database exactly.
    let mut tx = txcache.begin_ro(Staleness::seconds(1)).unwrap();
    let a = balance(&mut tx, 1).unwrap();
    let b = balance(&mut tx, 2).unwrap();
    tx.commit().unwrap();
    assert_eq!(a + b, TOTAL);
}

/// The same invariant must hold in no-consistency mode *failing is allowed
/// here* — but the run must at least not crash or deadlock. (The paper's
/// point is that TxCache makes the invariant hold; the baseline trades it
/// away.) We only assert liveness for the baseline.
#[test]
fn no_consistency_baseline_stays_live_under_concurrency() {
    let (txcache, clock) = bank(CacheMode::NoConsistency);
    std::thread::scope(|scope| {
        let writer = {
            let txcache = &txcache;
            let clock = &clock;
            scope.spawn(move || {
                for round in 0..100 {
                    transfer(txcache, if round % 2 == 0 { 3 } else { -3 });
                    clock.advance_micros(50_000);
                }
            })
        };
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let txcache = &txcache;
                scope.spawn(move || {
                    for _ in 0..200 {
                        let mut tx = txcache.begin_ro(Staleness::seconds(30)).unwrap();
                        let _ = balance(&mut tx, 1).unwrap();
                        let _ = balance(&mut tx, 2).unwrap();
                        tx.commit().unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        writer.join().unwrap();
    });
}

/// Lock-ordering stress for the sharded database: many threads repeatedly
/// commit transactions that write *two* tables, half of them updating
/// `alpha` then `beta` and half `beta` then `alpha`. The commit path
/// acquires table locks in sorted-name order regardless of write order, so
/// this must never deadlock; and because commit timestamps are allocated
/// under the sequencer, every commit must get a unique timestamp and the
/// invalidation log must be strictly increasing.
///
/// Each thread owns a private row in each table, so no run aborts on write
/// conflicts and the expected commit count is exact.
#[test]
fn cross_table_commits_in_both_orders_never_deadlock() {
    let threads = 8;
    let iterations = 40;

    let db = Arc::new(Database::new(DbConfig::default(), SimClock::new()));
    for table in ["alpha", "beta"] {
        db.create_table(
            TableSchema::new(table)
                .column("id", ColumnType::Int)
                .column("counter", ColumnType::Int)
                .unique_index("id"),
        )
        .unwrap();
        db.bulk_load(
            table,
            (0..threads as i64)
                .map(|t| vec![Value::Int(t), Value::Int(0)])
                .collect(),
        )
        .unwrap();
    }

    let all_commits: Vec<txcache_repro::txtypes::Timestamp> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    let mut commits = Vec::with_capacity(iterations);
                    let (first, second) = if t % 2 == 0 {
                        ("alpha", "beta")
                    } else {
                        ("beta", "alpha")
                    };
                    for i in 0..iterations {
                        let tx = db.begin_rw().unwrap();
                        for table in [first, second] {
                            let n = db
                                .update(
                                    tx,
                                    table,
                                    &Predicate::eq("id", t as i64),
                                    &[("counter".to_string(), Value::Int(i as i64 + 1))],
                                )
                                .unwrap();
                            assert_eq!(n, 1, "thread {t} owns exactly one row per table");
                        }
                        commits.push(db.commit(tx).unwrap());
                    }
                    commits
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| {
                h.join()
                    .expect("a committing thread panicked or deadlocked")
            })
            .collect()
    });

    // Every commit got a distinct timestamp.
    assert_eq!(all_commits.len(), threads * iterations);
    let mut sorted = all_commits.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(
        sorted.len(),
        threads * iterations,
        "commit timestamps must be unique"
    );

    // The invalidation stream is strictly monotonic in commit-timestamp
    // order — the sequencer publishes while still holding the allocation
    // lock, so no interleaving can reorder it.
    let log = db.invalidation_log();
    assert_eq!(log.len(), threads * iterations);
    for pair in log.windows(2) {
        assert!(
            pair[0].timestamp < pair[1].timestamp,
            "invalidation log out of order: {} then {}",
            pair[0].timestamp,
            pair[1].timestamp
        );
    }
}

/// End-to-end smoke of the multi-threaded RUBiS driver at more than one
/// thread count: it must finish, do work on every thread, and keep the
/// failure rate negligible.
#[test]
fn concurrent_rubis_driver_scales_without_failures() {
    let config = ExperimentConfig {
        scale_factor: 0.002,
        requests: 400,
        warmup_requests: 200,
        sessions: 8,
        ..ExperimentConfig::new(DbKind::InMemory)
    };
    let single = run_concurrent(&config, 1).unwrap();
    let multi = run_concurrent(&config, 4).unwrap();
    for r in [&single, &multi] {
        assert!(r.throughput_rps > 0.0);
        assert!(r.failed <= r.usage.requests / 20);
        assert!(r.hit_rate > 0.1);
    }
    assert_eq!(multi.per_thread.len(), 4);
    for t in &multi.per_thread {
        assert!(t.usage.requests > 0);
        assert!(t.latency.count() == t.usage.requests + t.failed);
    }
}
