//! The shared fixed-bucket log2 latency histogram.
//!
//! One bucket per power of two covers the whole `u64` range, so recording
//! never allocates, merging is bucket-wise addition (associative and
//! commutative — per-thread or per-shard histograms combine exactly), and a
//! snapshot is a few hundred bytes no matter how many samples went in.
//! Percentiles are nearest-rank over the cumulative bucket counts, clamped
//! to the observed min/max: the reported value brackets the true order
//! statistic to within one power of two, with none of the index bias the
//! naive `sorted[len * 99 / 100]` form has on small sample counts (on
//! `len == 10` that indexes element 9-of-10 as "p99" *and* element 9 as
//! "p90" — both are really p100 neighbours).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets: one per power of two over the `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Bucket index for a recorded value: bucket 0 holds {0, 1}, bucket `i`
/// holds `[2^i, 2^(i+1))` for `i >= 1`.
fn bucket_index(v: u64) -> usize {
    (63 - v.max(1).leading_zeros()) as usize
}

/// Inclusive upper edge of a bucket.
fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// Inclusive lower edge of a bucket.
fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// A lock-free mergeable latency histogram.
///
/// All updates are relaxed atomics: recording threads never serialize, and
/// a snapshot taken concurrently with recording is "consistent enough" —
/// monotonic per bucket, possibly skewed across buckets — the same
/// telemetry contract as [`crate::StripedCounter`].
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    /// Smallest recorded value; `u64::MAX` until the first record.
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// A fresh empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one value (conventionally microseconds).
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of values recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Folds another histogram's contents into this one.
    pub fn merge_from(&self, other: &Histogram) {
        self.absorb(&other.snapshot());
    }

    /// Folds a snapshot's contents into this live histogram.
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        if snap.count == 0 {
            return;
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.min.fetch_min(snap.min, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
        for (b, v) in self.buckets.iter().zip(snap.buckets.iter()) {
            if *v != 0 {
                b.fetch_add(*v, Ordering::Relaxed);
            }
        }
    }

    /// A point-in-time copy of the distribution.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    /// Zeroes the distribution. Records racing the reset may survive it or
    /// be lost; callers reset only at quiescent points.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A plain-data copy of a [`Histogram`]: what travels in reports, over the
/// wire, and between merge stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value; `u64::MAX` when empty.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket counts; bucket `i` holds values in
    /// `[bucket lower(i), bucket upper(i)]`.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Records one value into this plain-data snapshot — the single-threaded
    /// accumulator form (per-thread latency tallies that are merged later),
    /// sparing the atomics of a live [`Histogram`].
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Folds another snapshot into this one. Bucket-wise addition, so the
    /// operation is associative and commutative: merging per-thread
    /// snapshots in any grouping yields the same distribution.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, v) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *v;
        }
    }

    /// Mean of the recorded values, 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value, 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Nearest-rank percentile (`p` in `[0, 1]`): an upper bound on the
    /// order statistic, clamped to the observed extremes. The true value
    /// lies within the same power-of-two bucket, i.e. in
    /// `[percentile / 2, percentile]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        let (_, upper) = self.percentile_bounds(p);
        upper
    }

    /// The bucket edges bracketing the nearest-rank percentile: the true
    /// order statistic lies in `[lower, upper]` inclusive. Zeroes when the
    /// histogram is empty.
    #[must_use]
    pub fn percentile_bounds(&self, p: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        // Nearest-rank: the smallest value with at least ceil(p * count)
        // values at or below it. Clamped into [1, count] so p = 0 means the
        // minimum and p = 1 the maximum, with no index bias on small N.
        let rank = (p * self.count as f64)
            .ceil()
            .max(1.0)
            .min(self.count as f64) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let lower = bucket_lower(i).max(self.min);
                let upper = bucket_upper(i).min(self.max);
                return (lower.min(upper), upper);
            }
        }
        (self.min.min(self.max), self.max)
    }

    /// The buckets holding at least one value, as `(lower edge, upper edge,
    /// count)` triples — the sparse form used for rendering and the wire.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c != 0)
            .map(|(i, c)| (bucket_lower(i), bucket_upper(i), *c))
            .collect()
    }

    /// Rebuilds a snapshot from sparse `(bucket index, count)` pairs plus
    /// the scalar fields — the wire decode path. Out-of-range indices are
    /// ignored rather than trusted.
    #[must_use]
    pub fn from_sparse(count: u64, sum: u64, min: u64, max: u64, sparse: &[(u8, u64)]) -> Self {
        let mut snap = HistogramSnapshot {
            count,
            sum,
            min,
            max,
            buckets: [0; HISTOGRAM_BUCKETS],
        };
        for &(i, c) in sparse {
            if let Some(b) = snap.buckets.get_mut(i as usize) {
                *b += c;
            }
        }
        snap
    }

    /// The sparse `(bucket index, count)` form for the wire encode path.
    #[must_use]
    pub fn to_sparse(&self) -> Vec<(u8, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c != 0)
            .map(|(i, c)| (i as u8, *c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_partition_the_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_lower(i).max(1)), i);
            assert_eq!(bucket_index(bucket_upper(i)), i);
        }
    }

    #[test]
    fn percentiles_bracket_the_true_order_statistic() {
        // A deterministic skewed sample set; compare against the exact
        // sorted-order statistic.
        let mut values: Vec<u64> = (0..500u64).map(|i| (i * i * 37) % 10_000).collect();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        for &p in &[0.0, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((p * values.len() as f64).ceil().max(1.0) as usize).min(values.len());
            let truth = values[rank - 1];
            let (lower, upper) = snap.percentile_bounds(p);
            assert!(
                lower <= truth && truth <= upper,
                "p{p}: true {truth} outside [{lower}, {upper}]"
            );
        }
        assert_eq!(snap.percentile(1.0), *values.last().unwrap());
        assert_eq!(snap.min(), values[0]);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |seed: u64, n: u64| {
            let mut s = HistogramSnapshot::default();
            let h = Histogram::new();
            for i in 0..n {
                h.record((seed.wrapping_mul(i + 1) * 2654435761) % 100_000);
            }
            s.merge(&h.snapshot());
            s
        };
        let (a, b, c) = (mk(1, 100), mk(7, 50), mk(13, 200));
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // c + b + a
        let mut rev = c.clone();
        rev.merge(&b);
        rev.merge(&a);
        assert_eq!(left, rev);
        assert_eq!(left.count, 350);
    }

    #[test]
    fn merging_matches_recording_into_one() {
        let all = Histogram::new();
        let parts: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
        for i in 0..1000u64 {
            let v = (i * 97) % 5000;
            all.record(v);
            parts[(i % 4) as usize].record(v);
        }
        let merged = Histogram::new();
        for p in &parts {
            merged.merge_from(p);
        }
        assert_eq!(merged.snapshot(), all.snapshot());
    }

    #[test]
    fn empty_histogram_is_inert() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.percentile(0.99), 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.min(), 0);
        let mut merged = HistogramSnapshot::default();
        merged.merge(&snap);
        assert_eq!(merged, HistogramSnapshot::default());
    }

    #[test]
    fn sparse_roundtrip_preserves_the_distribution() {
        let h = Histogram::new();
        for v in [0, 1, 5, 900, 1_000_000, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        let sparse = snap.to_sparse();
        assert!(sparse.len() <= 6);
        let back =
            HistogramSnapshot::from_sparse(snap.count, snap.sum, snap.min, snap.max, &sparse);
        assert_eq!(back, snap);
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.snapshot().buckets.iter().sum::<u64>(), 40_000);
    }
}
