//! Consistent hashing with replica sets and epoch-versioned views (§4).
//!
//! Cached data is partitioned across cache nodes with consistent hashing so
//! that adding or removing a node relocates only a small fraction of the
//! keys. Unlike a DHT, every client knows the full node list and can map a
//! key to its nodes directly.
//!
//! Two types split the job:
//!
//! * [`RingView`] is an **immutable, epoch-versioned snapshot** of the
//!   ring. It maps a key to an *ordered replica set*: the primary owner
//!   plus the next `replication - 1` distinct ring successors. Views are
//!   shared (`Arc`) between readers; membership changes never mutate a
//!   published view.
//! * [`RingBuilder`] constructs the next view: seed it from the current
//!   one, `add`/`remove` nodes, and `build(epoch)` the successor. The
//!   epoch is the fencing token the wire protocol (v5) carries so a client
//!   routing on a stale view gets a typed `WrongEpoch` redirect instead of
//!   silent misses.

use std::collections::BTreeMap;
use std::sync::Arc;

use txtypes::key::stable_hash_of;
use txtypes::CacheKey;

/// An immutable snapshot of the consistent-hash ring at one membership
/// epoch.
#[derive(Debug)]
pub struct RingView {
    /// The fencing token of this membership generation.
    epoch: u64,
    /// hash point → node index.
    points: BTreeMap<u64, usize>,
    node_names: Vec<String>,
    /// Virtual points per node.
    vnodes: usize,
    /// Replica-set size R: primary + R−1 distinct ring successors.
    replication: usize,
}

impl RingView {
    /// The membership epoch this view was built at.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of nodes on the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.node_names.len()
    }

    /// Returns `true` if the view has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.node_names.is_empty()
    }

    /// The replica-set size R the view was built with (clamped to the node
    /// count when fewer nodes exist).
    #[must_use]
    pub fn replication(&self) -> usize {
        self.replication.min(self.node_names.len()).max(1)
    }

    /// The node names, in membership order (indexes returned by
    /// [`replicas_for`](Self::replicas_for) refer to this list).
    #[must_use]
    pub fn node_names(&self) -> &[String] {
        &self.node_names
    }

    /// The ordered replica set for `key`: the primary owner first, then the
    /// next distinct nodes in ring order, `replication` entries in total
    /// (fewer only if the ring has fewer nodes).
    ///
    /// # Panics
    /// Panics if the view is empty; build views with at least one node.
    #[must_use]
    pub fn replicas_for(&self, key: &CacheKey) -> Vec<usize> {
        assert!(!self.is_empty(), "ring view has no nodes");
        let want = self.replication();
        let h = key.stable_hash();
        let mut replicas = Vec::with_capacity(want);
        // Walk the ring clockwise from the key's hash point, wrapping once,
        // collecting distinct nodes until the replica set is full.
        for (_, &idx) in self.points.range(h..).chain(self.points.range(..h)) {
            if !replicas.contains(&idx) {
                replicas.push(idx);
                if replicas.len() == want {
                    break;
                }
            }
        }
        replicas
    }

    /// The primary owner of `key` (the first entry of
    /// [`replicas_for`](Self::replicas_for)).
    ///
    /// # Panics
    /// Panics if the view is empty.
    #[must_use]
    pub fn primary_for(&self, key: &CacheKey) -> usize {
        assert!(!self.is_empty(), "ring view has no nodes");
        let h = key.stable_hash();
        match self.points.range(h..).next() {
            Some((_, idx)) => *idx,
            None => *self
                .points
                .values()
                .next()
                .expect("non-empty view has points"),
        }
    }

    /// Starts building this view's successor: same nodes, virtual-point
    /// count, and replication factor.
    #[must_use]
    pub fn builder(&self) -> RingBuilder {
        RingBuilder {
            node_names: self.node_names.clone(),
            vnodes: self.vnodes,
            replication: self.replication,
        }
    }
}

/// Constructs the next [`RingView`]. Seed a builder from scratch
/// ([`RingBuilder::new`]) or from the current view
/// ([`RingView::builder`]), adjust membership with
/// [`add`](Self::add)/[`remove`](Self::remove), then
/// [`build`](Self::build) the immutable view at its epoch.
#[derive(Debug, Clone)]
pub struct RingBuilder {
    node_names: Vec<String>,
    vnodes: usize,
    replication: usize,
}

impl Default for RingBuilder {
    fn default() -> Self {
        RingBuilder::new()
    }
}

impl RingBuilder {
    /// Default number of virtual points per node.
    pub const DEFAULT_VNODES: usize = 64;

    /// An empty builder with the default virtual-point count and no
    /// replication (R = 1).
    #[must_use]
    pub fn new() -> RingBuilder {
        RingBuilder {
            node_names: Vec::new(),
            vnodes: Self::DEFAULT_VNODES,
            replication: 1,
        }
    }

    /// Sets the number of virtual points per node (min 1).
    #[must_use]
    pub fn vnodes(mut self, vnodes: usize) -> RingBuilder {
        self.vnodes = vnodes.max(1);
        self
    }

    /// Sets the replica-set size R (min 1).
    #[must_use]
    pub fn replication(mut self, replication: usize) -> RingBuilder {
        self.replication = replication.max(1);
        self
    }

    /// Adds a node. Adding a name already on the ring is a no-op, so
    /// membership changes are idempotent.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // builder verb, not arithmetic
    pub fn add(mut self, name: impl Into<String>) -> RingBuilder {
        let name = name.into();
        if !self.node_names.contains(&name) {
            self.node_names.push(name);
        }
        self
    }

    /// Adds every node of an iterator, in order.
    #[must_use]
    pub fn add_all<I, S>(mut self, names: I) -> RingBuilder
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for name in names {
            self = self.add(name);
        }
        self
    }

    /// Removes a node by name (a no-op if absent). The surviving nodes keep
    /// their relative order, so view indexes stay aligned with any node
    /// list maintained in parallel.
    #[must_use]
    pub fn remove(mut self, name: &str) -> RingBuilder {
        self.node_names.retain(|n| n != name);
        self
    }

    /// Builds the immutable view at `epoch`. The epoch is chosen by the
    /// membership handle publishing the view — monotonically increasing per
    /// cluster, so it can act as the wire protocol's fencing token.
    #[must_use]
    pub fn build(self, epoch: u64) -> Arc<RingView> {
        let mut points = BTreeMap::new();
        for (idx, name) in self.node_names.iter().enumerate() {
            for r in 0..self.vnodes {
                let point = stable_hash_of(&(name.as_str(), r));
                points.insert(point, idx);
            }
        }
        Arc::new(RingView {
            epoch,
            points,
            node_names: self.node_names,
            vnodes: self.vnodes,
            replication: self.replication,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<CacheKey> {
        (0..n)
            .map(|i| CacheKey::new("f", format!("[{i}]")))
            .collect()
    }

    fn view3() -> Arc<RingView> {
        RingBuilder::new().add_all(["a", "b", "c"]).build(1)
    }

    #[test]
    fn placement_is_deterministic() {
        let ring = view3();
        for k in keys(50) {
            assert_eq!(ring.primary_for(&k), ring.primary_for(&k));
            assert_eq!(ring.replicas_for(&k), ring.replicas_for(&k));
        }
        assert_eq!(ring.len(), 3);
        assert!(!ring.is_empty());
        assert_eq!(ring.node_names().len(), 3);
        assert_eq!(ring.epoch(), 1);
    }

    #[test]
    fn keys_spread_across_nodes() {
        let ring = view3();
        let mut counts = [0usize; 3];
        for k in keys(3000) {
            counts[ring.primary_for(&k)] += 1;
        }
        for c in counts {
            assert!(
                c > 300,
                "each node should receive a reasonable share, got {c}"
            );
        }
    }

    #[test]
    fn adding_a_node_moves_only_a_fraction_of_keys() {
        let ring3 = view3();
        let ring4 = ring3.builder().add("d").build(2);
        assert_eq!(ring4.epoch(), 2);
        let ks = keys(4000);
        let moved = ks
            .iter()
            .filter(|k| {
                let before = &ring3.node_names()[ring3.primary_for(k)];
                let after = &ring4.node_names()[ring4.primary_for(k)];
                before != after
            })
            .count();
        // Ideally ~1/4 of keys move; allow generous slack but far below 1/2.
        assert!(
            moved < ks.len() / 2,
            "only a fraction of keys should move, moved {moved}/{}",
            ks.len()
        );
        assert!(moved > 0);
    }

    #[test]
    fn removing_a_node_reroutes_only_its_keys() {
        let ring3 = view3();
        let ring2 = ring3.builder().remove("b").build(2);
        assert_eq!(ring2.len(), 2);
        // Survivors keep their relative order: a stays index 0, c becomes 1.
        assert_eq!(ring2.node_names(), &["a".to_string(), "c".to_string()]);
        for k in keys(2000) {
            let before = &ring3.node_names()[ring3.primary_for(&k)];
            let after = &ring2.node_names()[ring2.primary_for(&k)];
            if before != "b" {
                assert_eq!(before, after, "keys not owned by b must not move");
            } else {
                assert_ne!(after, "b");
            }
        }
    }

    #[test]
    fn replica_sets_are_distinct_and_ordered() {
        let ring = RingBuilder::new()
            .add_all(["a", "b", "c", "d"])
            .replication(3)
            .build(1);
        for k in keys(500) {
            let replicas = ring.replicas_for(&k);
            assert_eq!(replicas.len(), 3);
            assert_eq!(replicas[0], ring.primary_for(&k));
            let mut sorted = replicas.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replica set must be distinct nodes");
        }
    }

    #[test]
    fn replication_clamps_to_the_node_count() {
        let ring = RingBuilder::new().add("only").replication(3).build(1);
        assert_eq!(ring.replication(), 1);
        for k in keys(20) {
            assert_eq!(ring.replicas_for(&k), vec![0]);
        }
    }

    #[test]
    fn adding_a_replica_target_preserves_primaries() {
        // The replica walk must not perturb primary placement: R only
        // appends successors.
        let r1 = RingBuilder::new().add_all(["a", "b", "c"]).build(1);
        let r2 = RingBuilder::new()
            .add_all(["a", "b", "c"])
            .replication(2)
            .build(1);
        for k in keys(500) {
            assert_eq!(r1.primary_for(&k), r2.primary_for(&k));
            assert_eq!(r2.replicas_for(&k)[0], r1.primary_for(&k));
        }
    }

    #[test]
    fn duplicate_adds_are_idempotent() {
        let ring = RingBuilder::new().add("a").add("a").add("b").build(1);
        assert_eq!(ring.len(), 2);
    }

    #[test]
    #[should_panic(expected = "no nodes")]
    fn empty_view_panics_on_lookup() {
        let ring = RingBuilder::new().build(1);
        let _ = ring.replicas_for(&CacheKey::new("f", "[]"));
    }
}
