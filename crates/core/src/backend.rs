//! Pluggable cache transports: in-process or over the `wire` protocol.
//!
//! The paper's deployment puts cache nodes on their own machines behind a
//! memcached-like protocol (§4, §7); our reproduction historically linked
//! the cache into the application process. [`CacheBackend`] abstracts the
//! boundary so both deployments run the *same* client library:
//!
//! * [`cache_server::CacheCluster`] implements the trait directly — the
//!   original in-process configuration, still the default. The cluster
//!   holds its sharded nodes by reference (no wrapper mutexes), so
//!   concurrent application-server threads hit the node shards in
//!   parallel: lookups under shared locks, inserts under one shard's
//!   exclusive lock;
//! * [`RemoteCluster`] speaks the `wire` protocol to a set of `txcached`
//!   servers, with one pooled connection per consistent-hash-ring node.
//!
//! `RemoteCluster` is generic over a [`wire::Connector`]: production dials
//! real TCP ([`wire::TcpConnector`], the default type parameter), and the
//! chaos tests dial through an in-process [`wire::SimNet`] whose pipes
//! inject deterministic frame drops, duplicates, reorderings, resets, and
//! partitions. The client code — pooling, pipelining, degradation,
//! seal-on-heal — is identical either way, which is the point: the fault
//! injection exercises the code that runs in production.
//!
//! The remote backend is deliberately failure-tolerant in the way a cache
//! must be: any transport error or timeout on the lookup/insert path is
//! *absorbed as a cache miss* (and counted in
//! [`RemoteCluster::degraded_ops`]), the connection is dropped and lazily
//! re-established, and the application keeps running against the database.
//! A correlation-id desync ([`wire::WireError::Desync`]) degrades only the
//! affected request: since protocol v4 the stream stays frame-aligned, so
//! the pooled connection (and every other request multiplexed on it) is
//! kept.
//!
//! ## Replication and membership (protocol v5)
//!
//! Placement goes through an immutable, epoch-versioned
//! [`cache_server::RingView`]: each key maps to an ordered *replica set*
//! (the ring primary plus R−1 distinct successors, R set by
//! [`RemoteOptions::replication`]). Writes fan out to the whole replica
//! set; reads try the primary first and *fall back across the remaining
//! replicas on transport failure, timeout, desync, or a compulsory miss*
//! (counted in [`RemoteCluster::replica_fallbacks`]) — non-compulsory
//! misses are final, since fan-out writes mirror versions across the set.
//! A hit served by a fallback replica is copied to the preferred one
//! ([`RemoteCluster::migration_fills`]), so still-valid entries migrate to
//! their new owner as they are read after a join, leave, or heal.
//! [`RemoteOptions::failover_threshold`] consecutive
//! failures demote a node: demoted nodes are tried last on reads (their
//! successors are effectively promoted) while writes and broadcasts keep
//! probing them, so the first frame a healed node answers promotes it
//! back — no restart of clients or peers.
//!
//! Membership changes at runtime ([`RemoteCluster::join_node`] /
//! [`RemoteCluster::leave_node`]) publish the next ring epoch and announce
//! it to every node (`RingEpoch`). Epoch-stamped `MultiGet`/`MultiPut`
//! batches from a client still routing on an older ring draw a typed
//! [`wire::Response::WrongEpoch`] redirect (counted in
//! [`RemoteCluster::wrong_epoch_redirects`]) instead of silently missing
//! on keys that moved.
//!
//! ## Multiplexed pipelining (protocol v4)
//!
//! Every request on a pooled connection carries a correlation id, so the
//! client never has to serialize request/response pairs:
//!
//! * **Inserts** write their `Put` frame and move on; acks are collected
//!   *opportunistically* whenever a later exchange happens to receive them
//!   (they park in the [`FramedStream`] mailbox and are swept for free).
//!   Only when [`MAX_PENDING_PUTS`] acks are outstanding with none already
//!   received does an insert block on the wire — counted in
//!   [`RemoteCluster::put_stalls`] and surfaced as
//!   `ClientStats::put_pipeline_stalls`.
//! * **Batch reads** ([`CacheBackend::lookup_many`]) fan a read set out as
//!   one `MultiGet` per involved ring node — scatter first, then gather —
//!   so a transaction's whole read set costs one round trip instead of one
//!   per key.
//! * **Batch writes** ([`CacheBackend::insert_many`]) ship one `MultiPut`
//!   frame per node, acked as a unit.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use cache_server::{CacheCluster, CacheStats, LookupOutcome, LookupRequest, RingBuilder, RingView};
use mvdb::InvalidationMessage;
use obs::{Histogram, MetricsSnapshot, Registry};
use parking_lot::{Mutex, MutexGuard, RwLock};
use txtypes::{CacheKey, Error, Result, TagSet, Timestamp, ValidityInterval, WallClock};
use wire::{
    Connector, FramedStream, GetResult, InvalidationEvent, PutEntry, Request, Response,
    TcpConnector, Transport,
};

use crate::config::BackendKind;

/// The cache transport the TxCache library talks through.
///
/// Both implementations expose the identical operation set, so every
/// transaction code path (and every test) runs unchanged on either. The
/// *batched* operations are the required methods — a transaction's read or
/// write set is the natural unit on the wire — and the single-key forms
/// are default wrappers over one-element batches, so every backend gets
/// the batched path for free and may override the singles with a fast
/// path.
pub trait CacheBackend: Send + Sync + std::fmt::Debug {
    /// Which kind of backend this is (for reporting and config assertions).
    fn kind(&self) -> BackendKind;

    /// Number of cache nodes behind this backend.
    fn node_count(&self) -> usize;

    /// Looks up a batch of keys sharing one pin-set interval, returning one
    /// outcome per key in request order (§4.1). The remote backend fans the
    /// batch out as one scatter-gather `MultiGet` per involved ring node,
    /// so it costs one round trip per node instead of one per key.
    fn lookup_many(&self, keys: &[CacheKey], request: &LookupRequest) -> Vec<LookupOutcome>;

    /// Looks up a single key: a one-element [`CacheBackend::lookup_many`]
    /// by default; backends may override with a single-key fast path.
    fn lookup(&self, key: &CacheKey, request: &LookupRequest) -> LookupOutcome {
        self.lookup_many(std::slice::from_ref(key), request)
            .pop()
            .expect("one outcome per key")
    }

    /// Inserts a batch of computed values (§6.1). The remote backend ships
    /// one `MultiPut` frame per responsible node.
    fn insert_many(
        &self,
        entries: Vec<(CacheKey, Bytes, ValidityInterval, TagSet)>,
        now: WallClock,
    );

    /// Inserts a single computed value: a one-element
    /// [`CacheBackend::insert_many`] by default; backends may override with
    /// a single-key fast path.
    fn insert(
        &self,
        key: CacheKey,
        value: Bytes,
        validity: ValidityInterval,
        tags: TagSet,
        now: WallClock,
    ) {
        self.insert_many(vec![(key, value, validity, tags)], now);
    }

    /// Inserts that had to *block* collecting pipelined put acks (see
    /// [`crate::ClientStats::put_pipeline_stalls`]). Zero for backends
    /// without a put pipeline.
    fn put_stalls(&self) -> u64 {
        0
    }

    /// Reads retried on a further replica after the preferred one failed
    /// (see [`crate::ClientStats::replica_fallbacks`]). Zero for backends
    /// without replica fallback.
    fn replica_fallbacks(&self) -> u64 {
        0
    }

    /// Batches refused by a node because this client routed them on a stale
    /// ring epoch (see [`crate::ClientStats::wrong_epoch_redirects`]). Zero
    /// for backends without epoch fencing.
    fn wrong_epoch_redirects(&self) -> u64 {
        0
    }

    /// Delivers a commit-ordered slice of the invalidation stream to every
    /// node, then advances every node's heartbeat to `heartbeat` (§4.2). An
    /// empty batch with a newer heartbeat is a pure timestamp heartbeat.
    fn apply_invalidations(&self, batch: &[InvalidationMessage], heartbeat: Timestamp);

    /// Eagerly evicts entries no transaction can use anymore on every node.
    fn evict_stale(&self, min_useful_ts: Timestamp);

    /// Aggregated cache statistics across all nodes.
    fn stats(&self) -> CacheStats;

    /// Resets hit/miss counters on every node.
    fn reset_stats(&self);
}

impl CacheBackend for CacheCluster {
    fn kind(&self) -> BackendKind {
        BackendKind::InProcess
    }

    fn node_count(&self) -> usize {
        CacheCluster::node_count(self)
    }

    fn lookup_many(&self, keys: &[CacheKey], request: &LookupRequest) -> Vec<LookupOutcome> {
        keys.iter()
            .map(|key| CacheCluster::lookup(self, key, request))
            .collect()
    }

    fn lookup(&self, key: &CacheKey, request: &LookupRequest) -> LookupOutcome {
        CacheCluster::lookup(self, key, request)
    }

    fn insert_many(
        &self,
        entries: Vec<(CacheKey, Bytes, ValidityInterval, TagSet)>,
        now: WallClock,
    ) {
        for (key, value, validity, tags) in entries {
            CacheCluster::insert(self, key, value, validity, tags, now);
        }
    }

    fn insert(
        &self,
        key: CacheKey,
        value: Bytes,
        validity: ValidityInterval,
        tags: TagSet,
        now: WallClock,
    ) {
        CacheCluster::insert(self, key, value, validity, tags, now);
    }

    fn apply_invalidations(&self, batch: &[InvalidationMessage], heartbeat: Timestamp) {
        for message in batch {
            self.apply_invalidation(message.timestamp, &message.tags);
        }
        self.note_timestamp(heartbeat);
    }

    fn evict_stale(&self, min_useful_ts: Timestamp) {
        CacheCluster::evict_stale(self, min_useful_ts);
    }

    fn stats(&self) -> CacheStats {
        CacheCluster::stats(self)
    }

    fn reset_stats(&self) {
        CacheCluster::reset_stats(self);
    }
}

/// Tuning for the remote backend's connections.
#[derive(Debug, Clone, Copy)]
pub struct RemoteOptions {
    /// Per-operation I/O timeout. An expired timeout degrades the
    /// operation to a miss and drops the pooled connection.
    pub op_timeout: Duration,
    /// Timeout for establishing a connection to a node.
    pub connect_timeout: Duration,
    /// Minimum delay between reconnection attempts to a dead node. Within
    /// the cooldown, operations routed to the node fail fast (degrading to
    /// misses) instead of stalling every caller for `connect_timeout`.
    pub retry_cooldown: Duration,
    /// Replica-set size R: every key is written to its ring primary plus
    /// R−1 distinct successors, and reads fall back across them. 1 (the
    /// default) reproduces the unreplicated deployment exactly.
    pub replication: usize,
    /// Consecutive failed exchanges after which a node is demoted: reads
    /// prefer its successors until a successful frame promotes it back.
    pub failover_threshold: u32,
}

impl Default for RemoteOptions {
    fn default() -> Self {
        RemoteOptions {
            op_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(2),
            retry_cooldown: Duration::from_secs(1),
            replication: 1,
            failover_threshold: 3,
        }
    }
}

/// Most `Put` acks a connection may leave uncollected. Unbounded pipelining
/// would eventually fill both transport buffer directions on an insert-heavy
/// burst (the server blocks writing acks nobody reads, then stops reading)
/// and stall until the op timeout; bounding the window keeps it safely below
/// any practical socket-buffer size. Acks that arrived while other requests
/// were being awaited are swept from the mailbox for free, so an insert only
/// *blocks* (a [`RemoteCluster::put_stalls`] event) when the window is full
/// of acks genuinely still in flight.
const MAX_PENDING_PUTS: u32 = 64;

/// Client-side opcode labels, indexed by [`client_op_index`]; the same
/// naming as the server's per-opcode histograms, so a scrape of the client
/// and a scrape of the node line up (`client.rtt.get.us` against
/// `server.req.get.us` is the network's share of the latency).
const CLIENT_OP_LABELS: [&str; 13] = [
    "ping",
    "get",
    "put",
    "multi_get",
    "multi_put",
    "inval_batch",
    "evict_stale",
    "stats",
    "shard_stats",
    "reset_stats",
    "seal",
    "ring_epoch",
    "metrics",
];

/// The [`CLIENT_OP_LABELS`] slot for the scatter-gather `MultiGet`, whose
/// gather site no longer holds the request it timed.
const MULTI_GET_OP: usize = 3;

/// The slot in [`CLIENT_OP_LABELS`] (and the RTT histogram bank) for a
/// request.
fn client_op_index(request: &Request) -> usize {
    match request {
        Request::Ping { .. } => 0,
        Request::VersionedGet { .. } => 1,
        Request::Put { .. } => 2,
        Request::MultiGet { .. } => MULTI_GET_OP,
        Request::MultiPut { .. } => 4,
        Request::InvalidationBatch { .. } => 5,
        Request::EvictStale { .. } => 6,
        Request::Stats => 7,
        Request::ShardStats => 8,
        Request::ResetStats => 9,
        Request::SealStillValid => 10,
        Request::RingEpoch { .. } => 11,
        Request::Metrics => 12,
    }
}

/// The client's round-trip observability: one latency histogram per opcode,
/// recorded from just before a frame is written to just after its response
/// is decoded (connection healing is excluded — a reconnect is not a round
/// trip). Only *successful* exchanges are recorded; failures degrade and
/// are visible through the cluster's failure counters instead.
struct ClientObs {
    registry: Registry,
    /// Cached handles, indexed by [`client_op_index`]: the hot path never
    /// touches the registry lock.
    rtt_us: [Arc<Histogram>; CLIENT_OP_LABELS.len()],
}

impl ClientObs {
    fn new() -> ClientObs {
        let registry = Registry::new();
        let rtt_us = std::array::from_fn(|i| {
            registry.histogram(&format!("client.rtt.{}.us", CLIENT_OP_LABELS[i]))
        });
        ClientObs { registry, rtt_us }
    }

    /// Records one completed round trip for the opcode slot.
    fn record(&self, op: usize, started: Instant) {
        self.rtt_us[op].record(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
}

/// A scattered node's state during a `lookup_many` gather: the node's index
/// in the topology snapshot, its held connection lock, the in-flight
/// MultiGet's correlation id, and when the frame was written (for the
/// round-trip histogram).
type InFlightGet<'a, T> = (usize, MutexGuard<'a, NodeConn<T>>, u64, Instant);

/// One pooled node connection plus its pipelining state.
struct NodeConn<T> {
    /// The framed stream, or `None` until (re)connected.
    framed: Option<FramedStream<T>>,
    /// `Put`/`MultiPut` frames written whose acks have not been collected
    /// yet. The multiplexed stream matches acks by correlation id, so they
    /// are collected whenever convenient — from the mailbox after any other
    /// exchange, or on the wire when the pipeline bound is hit.
    pending_puts: u32,
    /// Whether this node has ever been connected. A connection established
    /// when this is already `true` is a *heal*: invalidation batches may
    /// have been lost while the node was unreachable, so the node is told to
    /// seal its still-valid entries before serving anything else.
    was_connected: bool,
    /// When the last failed connect attempt happened, for the cooldown.
    last_failure: Option<std::time::Instant>,
}

impl<T> NodeConn<T> {
    /// Drops the connection and starts the reconnect cooldown.
    fn mark_dead(&mut self) {
        self.framed = None;
        self.pending_puts = 0;
        self.last_failure = Some(std::time::Instant::now());
    }
}

struct RemoteNode<T> {
    addr: String,
    conn: Mutex<NodeConn<T>>,
    /// Consecutive failed exchanges; reset by any success. Crossing
    /// [`RemoteOptions::failover_threshold`] demotes the node.
    consecutive_failures: AtomicU32,
    /// Demoted: reads try this node last; writes and broadcasts keep
    /// probing it, and the first success promotes it back.
    down: AtomicBool,
}

impl<T> RemoteNode<T> {
    fn new(addr: &str) -> RemoteNode<T> {
        RemoteNode {
            addr: addr.to_string(),
            conn: Mutex::new(NodeConn {
                framed: None,
                pending_puts: 0,
                was_connected: false,
                last_failure: None,
            }),
            consecutive_failures: AtomicU32::new(0),
            down: AtomicBool::new(false),
        }
    }
}

/// The cluster's membership snapshot: the epoch-versioned ring view plus
/// the node handles, index-aligned with the view's node names (the ring
/// builder preserves order on add/remove, so the invariant survives
/// membership changes).
struct Topology<T> {
    view: Arc<RingView>,
    nodes: Vec<Arc<RemoteNode<T>>>,
}

/// What [`RemoteCluster::snapshot`] hands out: one coherent (view, nodes)
/// pair cloned out of the topology lock.
type TopologySnapshot<T> = (Arc<RingView>, Vec<Arc<RemoteNode<T>>>);

/// A cache cluster reached over the wire protocol: one `txcached` server
/// per ring node, dialled through a [`Connector`] (real TCP by default; the
/// chaos tests substitute a [`wire::SimNet`]).
pub struct RemoteCluster<C: Connector = TcpConnector> {
    connector: C,
    topology: RwLock<Topology<C::Conn>>,
    options: RemoteOptions,
    /// Mirror of the current view's epoch, readable without the topology
    /// lock (connection healing re-announces it).
    epoch: AtomicU64,
    /// Operations absorbed as misses because of transport failures.
    degraded: AtomicU64,
    /// Connections healed after a failure (startup connects not counted).
    reconnects: AtomicU64,
    /// Inserts that blocked collecting put acks (pipeline window full with
    /// no acks already received).
    put_stalls: AtomicU64,
    /// Keys whose read was retried on a further replica after the preferred
    /// one failed (transport error, timeout, or desync — a clean miss from
    /// a live replica is final and not counted).
    replica_fallbacks: AtomicU64,
    /// Epoch-stamped batches a node refused because this client routed them
    /// on a stale ring.
    wrong_epoch_redirects: AtomicU64,
    /// Nodes demoted after `failover_threshold` consecutive failures.
    failovers: AtomicU64,
    /// Demoted nodes promoted back by a successful exchange.
    rejoins: AtomicU64,
    /// Still-valid entries copied to a key's preferred replica after a
    /// fallback hit — the read-driven half of rebalancing after a
    /// membership change or heal.
    migration_fills: AtomicU64,
    /// Fault-injection mutation hook: when set, healed connections skip the
    /// §4.2 `SealStillValid` step. See
    /// [`RemoteCluster::disable_seal_on_heal_for_fault_injection`].
    seal_on_heal_disabled: AtomicBool,
    /// Per-opcode round-trip histograms; snapshot through
    /// [`RemoteCluster::metrics`].
    obs: ClientObs,
}

impl RemoteCluster<TcpConnector> {
    /// Connects to the given `txcached` TCP addresses with default socket
    /// options. Every address must answer a `Ping`; failing nodes make the
    /// whole connect fail so a misconfigured deployment is caught at startup
    /// rather than degrading silently forever.
    pub fn connect(addrs: &[String]) -> Result<RemoteCluster> {
        RemoteCluster::connect_with(addrs, RemoteOptions::default())
    }

    /// [`RemoteCluster::connect`] with explicit socket options.
    pub fn connect_with(addrs: &[String], options: RemoteOptions) -> Result<RemoteCluster> {
        RemoteCluster::connect_via(TcpConnector, addrs, options)
    }
}

impl<C: Connector> RemoteCluster<C> {
    /// Connects to the given addresses through an arbitrary [`Connector`] —
    /// the generic form [`RemoteCluster::connect`] wraps for TCP, and the
    /// entry point the chaos tests use with a [`wire::SimNet`].
    pub fn connect_via(
        connector: C,
        addrs: &[String],
        options: RemoteOptions,
    ) -> Result<RemoteCluster<C>> {
        if addrs.is_empty() {
            return Err(Error::Network("no cache node addresses given".into()));
        }
        let view = RingBuilder::new()
            .add_all(addrs.iter().cloned())
            .replication(options.replication)
            .build(1);
        let nodes: Vec<Arc<RemoteNode<C::Conn>>> = addrs
            .iter()
            .map(|addr| Arc::new(RemoteNode::new(addr)))
            .collect();
        let cluster = RemoteCluster {
            connector,
            topology: RwLock::new(Topology {
                view,
                nodes: nodes.clone(),
            }),
            options,
            epoch: AtomicU64::new(1),
            degraded: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            put_stalls: AtomicU64::new(0),
            replica_fallbacks: AtomicU64::new(0),
            wrong_epoch_redirects: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            migration_fills: AtomicU64::new(0),
            seal_on_heal_disabled: AtomicBool::new(false),
            obs: ClientObs::new(),
        };
        for node in &nodes {
            let mut conn = node.conn.lock();
            cluster
                .ensure_connected(node, &mut conn)
                .map_err(|e| Error::Network(format!("cache node {}: {e}", node.addr)))?;
        }
        Ok(cluster)
    }

    /// The current ring-membership epoch (1 at connect; each
    /// [`RemoteCluster::join_node`]/[`RemoteCluster::leave_node`] bumps it).
    #[must_use]
    pub fn ring_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// The replica-set size reads and writes are routed with.
    #[must_use]
    pub fn replication(&self) -> usize {
        self.topology.read().view.replication()
    }

    /// Operations that were absorbed as misses because a node was
    /// unreachable or timed out.
    #[must_use]
    pub fn degraded_ops(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Connections healed after a failure (the initial per-node connects at
    /// startup are not counted).
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Inserts that had to block collecting pipelined put acks because a
    /// node's pipeline window was full with none already received.
    #[must_use]
    pub fn put_stalls(&self) -> u64 {
        self.put_stalls.load(Ordering::Relaxed)
    }

    /// Keys whose read was served by (or retried on) a further replica
    /// after the preferred one failed.
    #[must_use]
    pub fn replica_fallbacks(&self) -> u64 {
        self.replica_fallbacks.load(Ordering::Relaxed)
    }

    /// Epoch-stamped batches refused by a node because this client routed
    /// them on a stale ring epoch.
    #[must_use]
    pub fn wrong_epoch_redirects(&self) -> u64 {
        self.wrong_epoch_redirects.load(Ordering::Relaxed)
    }

    /// Nodes demoted after [`RemoteOptions::failover_threshold`]
    /// consecutive failed exchanges.
    #[must_use]
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Demoted nodes promoted back to service by a successful exchange.
    #[must_use]
    pub fn rejoins(&self) -> u64 {
        self.rejoins.load(Ordering::Relaxed)
    }

    /// Still-valid entries copied to a key's preferred replica after a
    /// fallback hit (read-driven rebalancing after a join or heal).
    #[must_use]
    pub fn migration_fills(&self) -> u64 {
        self.migration_fills.load(Ordering::Relaxed)
    }

    /// A merged snapshot of the client's observability registry: per-opcode
    /// round-trip histograms (`client.rtt.<op>.us`, successful exchanges
    /// only) plus the cluster's failure and degradation counters, in one
    /// sorted namespace. Round trips time frame-write to response-decode on
    /// this client's side of the wire, so comparing `client.rtt.get.us`
    /// against a node's `server.req.get.us` isolates the network's share.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.obs.registry.snapshot();
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        snap.counters.extend([
            ("client.degraded.ops".to_string(), load(&self.degraded)),
            ("client.failovers".to_string(), load(&self.failovers)),
            (
                "client.migration.fills".to_string(),
                load(&self.migration_fills),
            ),
            ("client.put.stalls".to_string(), load(&self.put_stalls)),
            ("client.reconnects".to_string(), load(&self.reconnects)),
            ("client.rejoins".to_string(), load(&self.rejoins)),
            (
                "client.replica.fallbacks".to_string(),
                load(&self.replica_fallbacks),
            ),
            (
                "client.wrong_epoch.redirects".to_string(),
                load(&self.wrong_epoch_redirects),
            ),
        ]);
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }

    /// Drops every pooled connection and starts each node's reconnect
    /// cooldown, as a network partition would. Operations during the
    /// cooldown degrade to misses; the first operation after it heals the
    /// connection (sealing the node's still-valid entries first). Exposed
    /// for failure injection in tests and operational tooling.
    pub fn drop_connections(&self) {
        for node in &self.topology.read().nodes {
            node.conn.lock().mark_dead();
        }
    }

    /// **Fault-injection mutation hook — never call in production.**
    /// Hidden from the documented API for exactly that reason.
    ///
    /// Disables the §4.2 seal-on-heal step: reconnected nodes keep serving
    /// still-valid entries whose invalidations may have been lost during
    /// the partition, which violates transactional consistency. The chaos
    /// suite flips this to prove its history checker actually catches the
    /// resulting stale resurrection (a mutation test of the checker).
    #[doc(hidden)]
    pub fn disable_seal_on_heal_for_fault_injection(&self) {
        self.seal_on_heal_disabled.store(true, Ordering::SeqCst);
    }

    /// The node addresses, in ring order.
    #[must_use]
    pub fn addrs(&self) -> Vec<String> {
        self.topology
            .read()
            .nodes
            .iter()
            .map(|n| n.addr.clone())
            .collect()
    }

    /// Adds a `txcached` node to the ring at runtime: connects to it,
    /// publishes the next ring epoch, and announces the epoch to every
    /// node so stale-stamped batches are fenced. Returns the new epoch.
    pub fn join_node(&self, addr: &str) -> Result<u64> {
        let node = Arc::new(RemoteNode::new(addr));
        {
            let mut conn = node.conn.lock();
            self.ensure_connected(&node, &mut conn)
                .map_err(|e| Error::Network(format!("cache node {addr}: {e}")))?;
        }
        let epoch = {
            let mut topology = self.topology.write();
            if topology.nodes.iter().any(|n| n.addr == addr) {
                return Err(Error::Network(format!("cache node {addr} already joined")));
            }
            let next = topology
                .view
                .builder()
                .add(addr)
                .build(topology.view.epoch() + 1);
            topology.nodes.push(node);
            topology.view = next;
            let epoch = topology.view.epoch();
            self.epoch.store(epoch, Ordering::SeqCst);
            epoch
        };
        self.announce_epoch(epoch);
        Ok(epoch)
    }

    /// Removes a node from the ring at runtime, publishing and announcing
    /// the next ring epoch. Its keys are served by the surviving replicas
    /// (re-cached on first miss). Returns the new epoch.
    pub fn leave_node(&self, addr: &str) -> Result<u64> {
        let epoch = {
            let mut topology = self.topology.write();
            let Some(pos) = topology.nodes.iter().position(|n| n.addr == addr) else {
                return Err(Error::Network(format!("cache node {addr} is not joined")));
            };
            if topology.nodes.len() == 1 {
                return Err(Error::Network("cannot remove the last cache node".into()));
            }
            topology.nodes.remove(pos);
            topology.view = topology
                .view
                .builder()
                .remove(addr)
                .build(topology.view.epoch() + 1);
            let epoch = topology.view.epoch();
            self.epoch.store(epoch, Ordering::SeqCst);
            epoch
        };
        self.announce_epoch(epoch);
        Ok(epoch)
    }

    /// One coherent membership snapshot: the view plus its index-aligned
    /// node handles.
    fn snapshot(&self) -> TopologySnapshot<C::Conn> {
        let topology = self.topology.read();
        (Arc::clone(&topology.view), topology.nodes.clone())
    }

    /// Broadcasts a `RingEpoch` announcement to every node. Failures are
    /// absorbed: an unreachable node learns the epoch when its connection
    /// heals (see [`RemoteCluster::ensure_connected`]).
    fn announce_epoch(&self, epoch: u64) {
        self.broadcast(&Request::RingEpoch { epoch });
    }

    /// Records a failed exchange against a node's health; crossing the
    /// failover threshold demotes it (successors take over reads).
    fn note_failure(&self, node: &RemoteNode<C::Conn>) {
        let failures = node.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if failures >= self.options.failover_threshold && !node.down.swap(true, Ordering::Relaxed) {
            self.failovers.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a successful exchange: resets the failure streak and
    /// promotes the node back if it was demoted.
    fn note_success(&self, node: &RemoteNode<C::Conn>) {
        node.consecutive_failures.store(0, Ordering::Relaxed);
        if node.down.swap(false, Ordering::Relaxed) {
            self.rejoins.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn ensure_connected(
        &self,
        node: &RemoteNode<C::Conn>,
        conn: &mut NodeConn<C::Conn>,
    ) -> wire::Result<()> {
        if conn.framed.is_some() {
            return Ok(());
        }
        // Fail fast while the cooldown runs: one caller already paid the
        // connect timeout; everyone else degrades immediately instead of
        // queueing behind repeated connection attempts to a dead node.
        if let Some(at) = conn.last_failure {
            if at.elapsed() < self.options.retry_cooldown {
                return Err(wire::WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    "node in reconnect cooldown",
                )));
            }
        }
        let connected = (|| -> wire::Result<FramedStream<C::Conn>> {
            let stream = self
                .connector
                .connect(&node.addr, self.options.connect_timeout)
                .map_err(wire::WireError::Io)?;
            stream
                .set_io_timeout(Some(self.options.op_timeout))
                .map_err(wire::WireError::Io)?;
            let mut framed = FramedStream::new(stream);
            // A heal: the node may have missed invalidation batches while
            // unreachable. Before it serves anything, its still-valid
            // entries are sealed at its current invalidation horizon so a
            // later heartbeat cannot extend results whose invalidation was
            // lost (the reliable-multicast recovery rule of §4.2).
            if conn.was_connected && !self.seal_on_heal_disabled.load(Ordering::SeqCst) {
                match framed.call(&Request::SealStillValid)?.into_result()? {
                    Response::Sealed { .. } => {}
                    other => {
                        return Err(wire::WireError::Io(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("unexpected seal reply: {other:?}"),
                        )))
                    }
                }
            }
            // Tell the node which ring epoch this client routes with, so
            // epoch-stamped batches are fenced from the first frame (and a
            // node that was unreachable during a membership change catches
            // up as soon as it heals). Epoch 1 is the initial, never-changed
            // membership: announcing it would fence nothing (nodes treat an
            // unannounced ring as unfenced), so the handshake is skipped and
            // the connect conversation stays one round trip shorter until
            // the first join/leave.
            let epoch = self.epoch.load(Ordering::SeqCst);
            if epoch > 1 {
                match framed.call(&Request::RingEpoch { epoch })?.into_result()? {
                    Response::EpochAck { .. } => {}
                    other => {
                        return Err(wire::WireError::Io(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("unexpected epoch reply: {other:?}"),
                        )))
                    }
                }
            }
            Ok(framed)
        })();
        match connected {
            Ok(framed) => {
                conn.framed = Some(framed);
                conn.pending_puts = 0;
                conn.last_failure = None;
                if conn.was_connected {
                    self.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                conn.was_connected = true;
                Ok(())
            }
            Err(e) => {
                conn.last_failure = Some(std::time::Instant::now());
                Err(e)
            }
        }
    }

    /// Sweeps put acks that already arrived (parked in the mailbox while
    /// some other response was being awaited) without touching the wire.
    /// Free: never blocks, never reads.
    fn sweep_parked_acks(&self, conn: &mut NodeConn<C::Conn>) -> wire::Result<()> {
        if conn.pending_puts == 0 {
            return Ok(());
        }
        let framed = conn.framed.as_mut().expect("swept only when connected");
        while conn.pending_puts > 0 {
            match framed.pop_mailbox() {
                Some((_seq, response)) => {
                    self.absorb_put_ack(response.into_result()?);
                    conn.pending_puts -= 1;
                }
                None => break,
            }
        }
        Ok(())
    }

    /// Blocks until one outstanding put ack arrives off the wire. Only
    /// called when the pipeline window is full and the mailbox is empty —
    /// the genuine stall case.
    fn collect_one_ack(&self, conn: &mut NodeConn<C::Conn>) -> wire::Result<()> {
        let framed = conn.framed.as_mut().expect("collected only when connected");
        match framed.recv_matched()? {
            Some((_seq, response)) => {
                self.absorb_put_ack(response.into_result()?);
                conn.pending_puts -= 1;
                Ok(())
            }
            None => Err(wire::WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed with puts outstanding",
            ))),
        }
    }

    /// Inspects a collected put ack: a `WrongEpoch` means the write batch
    /// was refused (the entries were not stored) because this client
    /// stamped it with a stale ring epoch — counted so the redirect is
    /// visible, not silent.
    fn absorb_put_ack(&self, response: Response) {
        if matches!(response, Response::WrongEpoch { .. }) {
            self.wrong_epoch_redirects.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Enforces the [`MAX_PENDING_PUTS`] window before writing another put.
    /// Sweeping the mailbox is free; only if the window is still full does
    /// the caller genuinely stall on the wire (a counted event).
    fn bound_put_pipeline(&self, conn: &mut NodeConn<C::Conn>) -> wire::Result<()> {
        self.sweep_parked_acks(conn)?;
        if conn.pending_puts >= MAX_PENDING_PUTS {
            self.put_stalls.fetch_add(1, Ordering::Relaxed);
            while conn.pending_puts >= MAX_PENDING_PUTS {
                self.collect_one_ack(conn)?;
            }
        }
        Ok(())
    }

    /// Absorbs an operation failure: counts it, tracks the node's health,
    /// and drops the pooled connection unless the failure was a
    /// correlation-id desync. A desync stream is still frame-aligned (the
    /// offending frame was consumed whole), so the connection — and every
    /// other request multiplexed on it — remains usable; only the awaited
    /// request degrades, and the node's failover streak is not charged.
    fn absorb_failure(
        &self,
        node: &RemoteNode<C::Conn>,
        conn: &mut NodeConn<C::Conn>,
        error: &wire::WireError,
    ) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
        if !matches!(error, wire::WireError::Desync { .. }) {
            conn.mark_dead();
            self.note_failure(node);
        }
    }

    /// Runs one request/response exchange against a node, healing the
    /// connection lazily. On any failure the operation degrades and `None`
    /// is returned; transport failures additionally drop the pooled
    /// connection (the next use reconnects).
    fn exchange(&self, node: &RemoteNode<C::Conn>, request: &Request) -> Option<Response> {
        let mut conn = node.conn.lock();
        let result = (|| -> wire::Result<Response> {
            self.ensure_connected(node, &mut conn)?;
            let framed = conn.framed.as_mut().expect("just connected");
            let started = Instant::now();
            let seq = framed.send_request(request)?;
            // Awaiting our response parks any put acks that arrive first in
            // the mailbox; sweep them afterwards so the pipeline window
            // shrinks without ever paying a dedicated read for acks.
            let response = framed.recv_for(seq)?.into_result()?;
            self.obs.record(client_op_index(request), started);
            self.sweep_parked_acks(&mut conn)?;
            Ok(response)
        })();
        match result {
            Ok(response) => {
                self.note_success(node);
                Some(response)
            }
            Err(e) => {
                self.absorb_failure(node, &mut conn, &e);
                None
            }
        }
    }

    /// Sends one request to every node, *then* collects every response — the
    /// fan-out pipelining used for invalidation batches and maintenance, so
    /// total latency is one round trip rather than one per node. Demoted
    /// nodes are included: broadcasts are the probe traffic that promotes a
    /// healed node back into service.
    fn broadcast(&self, request: &Request) -> Vec<Option<Response>> {
        let (_, nodes) = self.snapshot();
        let mut guards: Vec<MutexGuard<'_, NodeConn<C::Conn>>> =
            nodes.iter().map(|n| n.conn.lock()).collect();
        let mut sent: Vec<Option<(u64, Instant)>> = Vec::with_capacity(guards.len());
        for (node, conn) in nodes.iter().zip(guards.iter_mut()) {
            let outcome = (|| -> wire::Result<(u64, Instant)> {
                self.ensure_connected(node, conn)?;
                let started = Instant::now();
                let seq = conn
                    .framed
                    .as_mut()
                    .expect("just connected")
                    .send_request(request)?;
                Ok((seq, started))
            })();
            match outcome {
                Ok(stamped) => sent.push(Some(stamped)),
                Err(e) => {
                    self.absorb_failure(node, conn, &e);
                    sent.push(None);
                }
            }
        }
        let mut responses = Vec::with_capacity(guards.len());
        for ((node, conn), seq) in nodes.iter().zip(guards.iter_mut()).zip(sent) {
            let Some((seq, started)) = seq else {
                responses.push(None);
                continue;
            };
            let received = (|| -> wire::Result<Response> {
                let response = conn
                    .framed
                    .as_mut()
                    .expect("sent on this conn")
                    .recv_for(seq)?
                    .into_result()?;
                self.sweep_parked_acks(conn)?;
                Ok(response)
            })();
            match received {
                Ok(response) => {
                    self.obs.record(client_op_index(request), started);
                    self.note_success(node);
                    responses.push(Some(response));
                }
                Err(e) => {
                    self.absorb_failure(node, conn, &e);
                    responses.push(None);
                }
            }
        }
        responses
    }

    /// Copies an entry served by a fallback replica to the key's preferred
    /// replica, with the sibling's *stored* validity and tags so the copy
    /// invalidates identically, at the LRU-coldest access time. This is the
    /// read-driven half of rebalancing: after a join or heal, still-valid
    /// entries flow to the new owner as they are read, and the double round
    /// trip disappears. Pipelined like any put; failures are absorbed.
    fn migration_fill(
        &self,
        node: &RemoteNode<C::Conn>,
        key: &CacheKey,
        value: &Bytes,
        stored_validity: ValidityInterval,
        tags: &TagSet,
    ) {
        let mut conn = node.conn.lock();
        let sent = (|| -> wire::Result<()> {
            self.ensure_connected(node, &mut conn)?;
            self.bound_put_pipeline(&mut conn)?;
            conn.framed
                .as_mut()
                .expect("just connected")
                .send_request(&Request::Put {
                    key: key.clone(),
                    value: value.clone(),
                    validity: stored_validity,
                    tags: tags.clone(),
                    now: WallClock::ZERO,
                })?;
            Ok(())
        })();
        match sent {
            Ok(()) => {
                conn.pending_puts += 1;
                self.migration_fills.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => self.absorb_failure(node, &mut conn, &e),
        }
    }

    /// A key's replica indices in read-attempt order: ring order, with
    /// demoted nodes moved to the back (stable — their successors are
    /// effectively promoted while they keep serving as the last resort).
    fn read_order(
        &self,
        view: &RingView,
        nodes: &[Arc<RemoteNode<C::Conn>>],
        key: &CacheKey,
    ) -> Vec<usize> {
        let mut replicas = view.replicas_for(key);
        replicas.sort_by_key(|&idx| nodes[idx].down.load(Ordering::Relaxed));
        replicas
    }
}

impl<C: Connector> std::fmt::Debug for RemoteCluster<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let topology = self.topology.read();
        f.debug_struct("RemoteCluster")
            .field("nodes", &topology.nodes.len())
            .field("epoch", &topology.view.epoch())
            .field("replication", &topology.view.replication())
            .field("degraded_ops", &self.degraded_ops())
            .finish()
    }
}

impl<C: Connector> CacheBackend for RemoteCluster<C> {
    fn kind(&self) -> BackendKind {
        BackendKind::Remote
    }

    fn node_count(&self) -> usize {
        self.topology.read().nodes.len()
    }

    fn lookup(&self, key: &CacheKey, request: &LookupRequest) -> LookupOutcome {
        let (view, nodes) = self.snapshot();
        let order = self.read_order(&view, &nodes, key);
        let mut first_miss: Option<cache_server::MissKind> = None;
        for (attempt, &idx) in order.iter().enumerate() {
            if attempt > 0 {
                self.replica_fallbacks.fetch_add(1, Ordering::Relaxed);
            }
            let response = self.exchange(
                &nodes[idx],
                &Request::VersionedGet {
                    key: key.clone(),
                    pinset_lo: request.pinset_lo,
                    pinset_hi: request.pinset_hi,
                    freshness_lo: request.freshness_lo,
                },
            );
            match response {
                Some(Response::Hit {
                    value,
                    validity,
                    stored_validity,
                    tags,
                }) => {
                    // Served by a non-preferred replica: copy the entry to
                    // the preferred one so the next read is one hop.
                    if attempt > 0 {
                        self.migration_fill(&nodes[order[0]], key, &value, stored_validity, &tags);
                    }
                    return LookupOutcome::Hit {
                        value,
                        validity,
                        stored_validity,
                        tags,
                    };
                }
                Some(Response::Miss { kind }) => {
                    let kind: cache_server::MissKind = kind.into();
                    first_miss.get_or_insert(kind);
                    // A compulsory miss means the replica simply never saw
                    // the key — a sibling may still hold it (it was the
                    // owner before a join or heal), so keep probing. Any
                    // other miss kind means the replica *has* versions and
                    // none fit the interval; fan-out writes mirror versions
                    // across the set, so siblings would answer identically.
                    if matches!(kind, cache_server::MissKind::Compulsory) {
                        continue;
                    }
                    return LookupOutcome::Miss(kind);
                }
                // Unexpected frame or transport failure: try the next
                // replica; if all fail, serve from the database (§4's
                // availability model — a cache node that is down is just a
                // miss).
                Some(_) | None => continue,
            }
        }
        LookupOutcome::Miss(first_miss.unwrap_or_else(degraded_miss_kind))
    }

    fn lookup_many(&self, keys: &[CacheKey], request: &LookupRequest) -> Vec<LookupOutcome> {
        if keys.is_empty() {
            return Vec::new();
        }
        let (view, nodes) = self.snapshot();
        let epoch = view.epoch();
        let orders: Vec<Vec<usize>> = keys
            .iter()
            .map(|key| self.read_order(&view, &nodes, key))
            .collect();
        let mut out: Vec<LookupOutcome> = keys
            .iter()
            .map(|_| LookupOutcome::Miss(degraded_miss_kind()))
            .collect();
        // Keys that hit a fallback replica, to be copied to their preferred
        // one afterwards (read-driven rebalancing).
        let mut fills: Vec<usize> = Vec::new();
        // Attempt 0 routes every key to its preferred replica; keys whose
        // node failed (transport error, timeout, desync) or compulsorily
        // missed (a sibling may still hold the entry after a join or heal)
        // retry on their next replica in the following round. Hits and
        // non-compulsory misses are final: fan-out writes mirror versions
        // across the replica set, so a replica that *has* versions answers
        // for its siblings.
        let mut pending: Vec<usize> = (0..keys.len()).collect();
        for attempt in 0..view.replication().max(1) {
            if pending.is_empty() {
                break;
            }
            // Group this round's keys by the node each tries now; BTreeMap
            // iteration locks nodes in ascending index order, matching
            // broadcast (no lock-order inversion).
            let mut by_node: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for &pos in &pending {
                if let Some(&idx) = orders[pos].get(attempt) {
                    by_node.entry(idx).or_default().push(pos);
                }
            }
            if by_node.is_empty() {
                break;
            }
            if attempt > 0 {
                let retried: u64 = by_node.values().map(|p| p.len() as u64).sum();
                self.replica_fallbacks.fetch_add(retried, Ordering::Relaxed);
            }
            let mut failed: Vec<usize> = Vec::new();
            // Scatter: lock every involved node and send its share of the
            // read set as one MultiGet, keeping every node's lookup in
            // flight concurrently.
            let mut in_flight: Vec<InFlightGet<'_, C::Conn>> = Vec::new();
            for (&idx, positions) in &by_node {
                let node = &nodes[idx];
                let mut conn = node.conn.lock();
                let sent = (|| -> wire::Result<(u64, Instant)> {
                    self.ensure_connected(node, &mut conn)?;
                    let node_keys: Vec<CacheKey> =
                        positions.iter().map(|&pos| keys[pos].clone()).collect();
                    let started = Instant::now();
                    let seq = conn.framed.as_mut().expect("just connected").send_request(
                        &Request::MultiGet {
                            epoch,
                            keys: node_keys,
                            pinset_lo: request.pinset_lo,
                            pinset_hi: request.pinset_hi,
                            freshness_lo: request.freshness_lo,
                        },
                    )?;
                    Ok((seq, started))
                })();
                match sent {
                    Ok((seq, started)) => in_flight.push((idx, conn, seq, started)),
                    Err(e) => {
                        self.absorb_failure(node, &mut conn, &e);
                        failed.extend_from_slice(positions);
                    }
                }
            }
            // Gather: each node's single MultiGetResult carries its whole
            // share in request order. A failed node's keys go to the next
            // replica round; if every replica fails they stay the degraded
            // misses they were initialized to.
            for (idx, mut conn, seq, started) in in_flight {
                let node = &nodes[idx];
                let received = (|| -> wire::Result<Response> {
                    let response = conn
                        .framed
                        .as_mut()
                        .expect("sent on this conn")
                        .recv_for(seq)?
                        .into_result()?;
                    self.sweep_parked_acks(&mut conn)?;
                    Ok(response)
                })();
                match received {
                    Ok(Response::MultiGetResult { results })
                        if results.len() == by_node[&idx].len() =>
                    {
                        self.obs.record(MULTI_GET_OP, started);
                        self.note_success(node);
                        for (&pos, result) in by_node[&idx].iter().zip(results) {
                            match result {
                                GetResult::Hit {
                                    value,
                                    validity,
                                    stored_validity,
                                    tags,
                                } => {
                                    if attempt > 0 {
                                        fills.push(pos);
                                    }
                                    out[pos] = LookupOutcome::Hit {
                                        value,
                                        validity,
                                        stored_validity,
                                        tags,
                                    };
                                }
                                GetResult::Miss { kind } => {
                                    let kind: cache_server::MissKind = kind.into();
                                    // Record the first concrete miss kind
                                    // (overwriting the degraded placeholder,
                                    // never a previously recorded kind).
                                    if matches!(
                                        out[pos],
                                        LookupOutcome::Miss(cache_server::MissKind::Capacity)
                                    ) {
                                        out[pos] = LookupOutcome::Miss(kind);
                                    }
                                    if matches!(kind, cache_server::MissKind::Compulsory)
                                        && orders[pos].len() > attempt + 1
                                    {
                                        failed.push(pos);
                                    }
                                }
                            }
                        }
                    }
                    // The node routes on a different ring epoch than this
                    // client: a typed redirect, not a node failure. The
                    // keys degrade (the replicas would refuse identically)
                    // until the client's ring view catches up.
                    Ok(Response::WrongEpoch { .. }) => {
                        self.note_success(node);
                        self.wrong_epoch_redirects.fetch_add(1, Ordering::Relaxed);
                    }
                    // A well-formed frame of the wrong shape (or a result
                    // count that disagrees with the request) is a protocol
                    // bug on the node: treat it like any transport failure.
                    Ok(_) => {
                        self.degraded.fetch_add(1, Ordering::Relaxed);
                        conn.mark_dead();
                        self.note_failure(node);
                        failed.extend_from_slice(&by_node[&idx]);
                    }
                    Err(e) => {
                        self.absorb_failure(node, &mut conn, &e);
                        failed.extend_from_slice(&by_node[&idx]);
                    }
                }
            }
            pending = failed;
        }
        // Copy fallback hits to their preferred replicas so the next batch
        // finds them one hop away.
        for pos in fills {
            if let LookupOutcome::Hit {
                value,
                stored_validity,
                tags,
                ..
            } = &out[pos]
            {
                let preferred = orders[pos][0];
                self.migration_fill(&nodes[preferred], &keys[pos], value, *stored_validity, tags);
            }
        }
        out
    }

    fn insert(
        &self,
        key: CacheKey,
        value: Bytes,
        validity: ValidityInterval,
        tags: TagSet,
        now: WallClock,
    ) {
        let (view, nodes) = self.snapshot();
        // Fan the write out to the full replica set — demoted nodes
        // included (a cheap, cooldown-gated probe that re-fills them the
        // moment they heal).
        for &idx in &view.replicas_for(&key) {
            let node = &nodes[idx];
            let mut conn = node.conn.lock();
            let sent = (|| -> wire::Result<()> {
                self.ensure_connected(node, &mut conn)?;
                self.bound_put_pipeline(&mut conn)?;
                let framed = conn.framed.as_mut().expect("just connected");
                framed.send_request(&Request::Put {
                    key: key.clone(),
                    value: value.clone(),
                    validity,
                    tags: tags.clone(),
                    now,
                })?;
                Ok(())
            })();
            match sent {
                Ok(()) => conn.pending_puts += 1,
                Err(e) => self.absorb_failure(node, &mut conn, &e),
            }
        }
    }

    fn insert_many(
        &self,
        entries: Vec<(CacheKey, Bytes, ValidityInterval, TagSet)>,
        now: WallClock,
    ) {
        if entries.is_empty() {
            return;
        }
        let (view, nodes) = self.snapshot();
        let epoch = view.epoch();
        // Group entry positions by node across the *full* replica set of
        // each key (replicated entries appear under several nodes).
        let mut by_node: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (pos, (key, ..)) in entries.iter().enumerate() {
            for idx in view.replicas_for(key) {
                by_node.entry(idx).or_default().push(pos);
            }
        }
        for (&idx, positions) in &by_node {
            let batch: Vec<PutEntry> = positions
                .iter()
                .map(|&pos| {
                    let (key, value, validity, tags) = &entries[pos];
                    PutEntry {
                        key: key.clone(),
                        value: value.clone(),
                        validity: *validity,
                        tags: tags.clone(),
                        now,
                    }
                })
                .collect();
            let node = &nodes[idx];
            let mut conn = node.conn.lock();
            let sent = (|| -> wire::Result<()> {
                self.ensure_connected(node, &mut conn)?;
                self.bound_put_pipeline(&mut conn)?;
                let framed = conn.framed.as_mut().expect("just connected");
                framed.send_request(&Request::MultiPut {
                    epoch,
                    entries: batch,
                })?;
                Ok(())
            })();
            match sent {
                // One `MultiPut` is one pipelined ack, however many entries
                // it carries.
                Ok(()) => conn.pending_puts += 1,
                Err(e) => self.absorb_failure(node, &mut conn, &e),
            }
        }
    }

    fn put_stalls(&self) -> u64 {
        RemoteCluster::put_stalls(self)
    }

    fn replica_fallbacks(&self) -> u64 {
        RemoteCluster::replica_fallbacks(self)
    }

    fn wrong_epoch_redirects(&self) -> u64 {
        RemoteCluster::wrong_epoch_redirects(self)
    }

    fn apply_invalidations(&self, batch: &[InvalidationMessage], heartbeat: Timestamp) {
        let events: Vec<InvalidationEvent> = batch
            .iter()
            .map(|m| InvalidationEvent {
                timestamp: m.timestamp,
                tags: m.tags.clone(),
            })
            .collect();
        self.broadcast(&Request::InvalidationBatch { events, heartbeat });
    }

    fn evict_stale(&self, min_useful_ts: Timestamp) {
        self.broadcast(&Request::EvictStale { min_useful_ts });
    }

    fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for response in self.broadcast(&Request::Stats) {
            if let Some(Response::StatsSnapshot(stats)) = response {
                total.merge(&stats.into());
            }
        }
        total
    }

    fn reset_stats(&self) {
        self.broadcast(&Request::ResetStats);
    }
}

/// The miss classification used when a node is unreachable. Capacity is the
/// closest §8.3 class — the cached data exists somewhere but this deployment
/// cannot produce it right now — and it keeps degraded operation from
/// polluting the compulsory/consistency analysis.
fn degraded_miss_kind() -> cache_server::MissKind {
    cache_server::MissKind::Capacity
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_op_labels_are_distinct_and_indexed_consistently() {
        let unique: std::collections::HashSet<&str> = CLIENT_OP_LABELS.iter().copied().collect();
        assert_eq!(unique.len(), CLIENT_OP_LABELS.len());
        assert_eq!(CLIENT_OP_LABELS[MULTI_GET_OP], "multi_get");
        assert_eq!(
            client_op_index(&Request::MultiGet {
                epoch: 1,
                keys: Vec::new(),
                pinset_lo: Timestamp(0),
                pinset_hi: Timestamp(0),
                freshness_lo: Timestamp(0),
            }),
            MULTI_GET_OP
        );
        assert_eq!(CLIENT_OP_LABELS[client_op_index(&Request::Stats)], "stats");
    }

    #[test]
    fn rtt_histograms_register_under_the_client_namespace() {
        let obs = ClientObs::new();
        obs.record(MULTI_GET_OP, Instant::now());
        let snap = obs.registry.snapshot();
        let hist = snap
            .histogram("client.rtt.multi_get.us")
            .expect("registered at construction");
        assert_eq!(hist.count, 1);
        assert!(snap.histogram("client.rtt.get.us").is_some());
    }
}
