//! Shared observability primitives for the TxCache reproduction.
//!
//! Every layer of the system — the `mvdb` storage engine, the `txcached`
//! cache server, the client library's `RemoteCluster`, and the experiment
//! harness — needs the same three things: relaxed monotonic counters that
//! never serialize hot paths, latency distributions that can be merged
//! across threads and shards without keeping raw samples, and a way to see
//! *which* requests were slow, not just how many. This crate provides them
//! once:
//!
//! - [`StripedCounter`] / [`Gauge`]: cache-line-friendly relaxed atomics
//!   with telemetry (not synchronization) semantics.
//! - [`Histogram`]: a fixed-bucket log2 latency histogram. Recording is one
//!   relaxed `fetch_add` per bucket plus rank bookkeeping; merging is
//!   bucket-wise addition, so per-thread histograms combine exactly —
//!   unlike concatenating sample vectors, the merge is associative and
//!   O(buckets). Percentiles come from the bucket boundaries
//!   (nearest-rank, clamped to the observed min/max), which brackets the
//!   true value to within one power of two instead of the off-by-one index
//!   bias of `samples[len * 99 / 100]` on small sample counts.
//! - [`Registry`]: a named bank of counters/gauges/histograms. Lookup and
//!   registration take a lock; the returned [`std::sync::Arc`] handles are
//!   lock-free to update, so hot paths register once and bump forever.
//! - [`Trace`] / [`SlowOpRing`]: a per-request span trail with one
//!   timestamped event per pipeline stage, kept only when the request
//!   exceeds a configurable slow-op threshold — a bounded flight recorder
//!   for tail latency, dumpable on demand.
//!
//! ## Metric naming
//!
//! Names are dot-separated `component.subject.unit` strings, e.g.
//! `server.req.get.us` (per-opcode request latency), `server.queue.depth`
//! (worker-queue gauge), `db.commit.us`, `client.rtt.multi_get.us`,
//! `client.failovers`. The Prometheus-style exposition
//! ([`MetricsSnapshot::render_prometheus`]) rewrites dots to underscores.

mod counter;
mod hist;
mod registry;
mod trace;

pub use counter::{Gauge, StripedCounter};
pub use hist::{Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use registry::{MetricsSnapshot, Registry};
pub use trace::{SlowOp, SlowOpRing, Trace};
