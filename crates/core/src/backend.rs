//! Pluggable cache transports: in-process or over the `wire` protocol.
//!
//! The paper's deployment puts cache nodes on their own machines behind a
//! memcached-like protocol (§4, §7); our reproduction historically linked
//! the cache into the application process. [`CacheBackend`] abstracts the
//! boundary so both deployments run the *same* client library:
//!
//! * [`cache_server::CacheCluster`] implements the trait directly — the
//!   original in-process configuration, still the default. The cluster
//!   holds its sharded nodes by reference (no wrapper mutexes), so
//!   concurrent application-server threads hit the node shards in
//!   parallel: lookups under shared locks, inserts under one shard's
//!   exclusive lock;
//! * [`RemoteCluster`] speaks the `wire` protocol to a set of `txcached`
//!   servers, with one pooled connection per consistent-hash-ring node.
//!
//! `RemoteCluster` is generic over a [`wire::Connector`]: production dials
//! real TCP ([`wire::TcpConnector`], the default type parameter), and the
//! chaos tests dial through an in-process [`wire::SimNet`] whose pipes
//! inject deterministic frame drops, duplicates, reorderings, resets, and
//! partitions. The client code — pooling, pipelining, degradation,
//! seal-on-heal — is identical either way, which is the point: the fault
//! injection exercises the code that runs in production.
//!
//! The remote backend is deliberately failure-tolerant in the way a cache
//! must be: any transport error or timeout on the lookup/insert path is
//! *absorbed as a cache miss* (and counted in
//! [`RemoteCluster::degraded_ops`]), the connection is dropped and lazily
//! re-established, and the application keeps running against the database.
//! A correlation-id desync ([`wire::WireError::Desync`]) degrades only the
//! affected request: since protocol v4 the stream stays frame-aligned, so
//! the pooled connection (and every other request multiplexed on it) is
//! kept.
//!
//! ## Multiplexed pipelining (protocol v4)
//!
//! Every request on a pooled connection carries a correlation id, so the
//! client never has to serialize request/response pairs:
//!
//! * **Inserts** write their `Put` frame and move on; acks are collected
//!   *opportunistically* whenever a later exchange happens to receive them
//!   (they park in the [`FramedStream`] mailbox and are swept for free).
//!   Only when [`MAX_PENDING_PUTS`] acks are outstanding with none already
//!   received does an insert block on the wire — counted in
//!   [`RemoteCluster::put_stalls`] and surfaced as
//!   `ClientStats::put_pipeline_stalls`.
//! * **Batch reads** ([`CacheBackend::lookup_many`]) fan a read set out as
//!   one `MultiGet` per involved ring node — scatter first, then gather —
//!   so a transaction's whole read set costs one round trip instead of one
//!   per key.
//! * **Batch writes** ([`CacheBackend::insert_many`]) ship one `MultiPut`
//!   frame per node, acked as a unit.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use bytes::Bytes;
use cache_server::{CacheCluster, CacheStats, ConsistentHashRing, LookupOutcome, LookupRequest};
use mvdb::InvalidationMessage;
use parking_lot::{Mutex, MutexGuard};
use txtypes::{CacheKey, Error, Result, TagSet, Timestamp, ValidityInterval, WallClock};
use wire::{
    Connector, FramedStream, GetResult, InvalidationEvent, PutEntry, Request, Response,
    TcpConnector, Transport,
};

use crate::config::BackendKind;

/// The cache transport the TxCache library talks through.
///
/// Both implementations expose the identical operation set, so every
/// transaction code path (and every test) runs unchanged on either.
pub trait CacheBackend: Send + Sync + std::fmt::Debug {
    /// Which kind of backend this is (for reporting and config assertions).
    fn kind(&self) -> BackendKind;

    /// Number of cache nodes behind this backend.
    fn node_count(&self) -> usize;

    /// Looks up a key on the responsible node (§4.1).
    fn lookup(&self, key: &CacheKey, request: &LookupRequest) -> LookupOutcome;

    /// Looks up a batch of keys sharing one pin-set interval, returning one
    /// outcome per key in request order. The default loops over
    /// [`CacheBackend::lookup`]; the remote backend overrides it with a
    /// scatter-gather `MultiGet` so the batch costs one round trip per
    /// involved node instead of one per key.
    fn lookup_many(&self, keys: &[CacheKey], request: &LookupRequest) -> Vec<LookupOutcome> {
        keys.iter().map(|key| self.lookup(key, request)).collect()
    }

    /// Inserts a computed value on the responsible node (§6.1).
    fn insert(
        &self,
        key: CacheKey,
        value: Bytes,
        validity: ValidityInterval,
        tags: TagSet,
        now: WallClock,
    );

    /// Inserts a batch of computed values. The default loops over
    /// [`CacheBackend::insert`]; the remote backend overrides it to ship one
    /// `MultiPut` frame per responsible node.
    fn insert_many(
        &self,
        entries: Vec<(CacheKey, Bytes, ValidityInterval, TagSet)>,
        now: WallClock,
    ) {
        for (key, value, validity, tags) in entries {
            self.insert(key, value, validity, tags, now);
        }
    }

    /// Inserts that had to *block* collecting pipelined put acks (see
    /// [`crate::ClientStats::put_pipeline_stalls`]). Zero for backends
    /// without a put pipeline.
    fn put_stalls(&self) -> u64 {
        0
    }

    /// Delivers a commit-ordered slice of the invalidation stream to every
    /// node, then advances every node's heartbeat to `heartbeat` (§4.2). An
    /// empty batch with a newer heartbeat is a pure timestamp heartbeat.
    fn apply_invalidations(&self, batch: &[InvalidationMessage], heartbeat: Timestamp);

    /// Eagerly evicts entries no transaction can use anymore on every node.
    fn evict_stale(&self, min_useful_ts: Timestamp);

    /// Aggregated cache statistics across all nodes.
    fn stats(&self) -> CacheStats;

    /// Resets hit/miss counters on every node.
    fn reset_stats(&self);
}

impl CacheBackend for CacheCluster {
    fn kind(&self) -> BackendKind {
        BackendKind::InProcess
    }

    fn node_count(&self) -> usize {
        CacheCluster::node_count(self)
    }

    fn lookup(&self, key: &CacheKey, request: &LookupRequest) -> LookupOutcome {
        CacheCluster::lookup(self, key, request)
    }

    fn insert(
        &self,
        key: CacheKey,
        value: Bytes,
        validity: ValidityInterval,
        tags: TagSet,
        now: WallClock,
    ) {
        CacheCluster::insert(self, key, value, validity, tags, now);
    }

    fn apply_invalidations(&self, batch: &[InvalidationMessage], heartbeat: Timestamp) {
        for message in batch {
            self.apply_invalidation(message.timestamp, &message.tags);
        }
        self.note_timestamp(heartbeat);
    }

    fn evict_stale(&self, min_useful_ts: Timestamp) {
        CacheCluster::evict_stale(self, min_useful_ts);
    }

    fn stats(&self) -> CacheStats {
        CacheCluster::stats(self)
    }

    fn reset_stats(&self) {
        CacheCluster::reset_stats(self);
    }
}

/// Tuning for the remote backend's connections.
#[derive(Debug, Clone, Copy)]
pub struct RemoteOptions {
    /// Per-operation I/O timeout. An expired timeout degrades the
    /// operation to a miss and drops the pooled connection.
    pub op_timeout: Duration,
    /// Timeout for establishing a connection to a node.
    pub connect_timeout: Duration,
    /// Minimum delay between reconnection attempts to a dead node. Within
    /// the cooldown, operations routed to the node fail fast (degrading to
    /// misses) instead of stalling every caller for `connect_timeout`.
    pub retry_cooldown: Duration,
}

impl Default for RemoteOptions {
    fn default() -> Self {
        RemoteOptions {
            op_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(2),
            retry_cooldown: Duration::from_secs(1),
        }
    }
}

/// Most `Put` acks a connection may leave uncollected. Unbounded pipelining
/// would eventually fill both transport buffer directions on an insert-heavy
/// burst (the server blocks writing acks nobody reads, then stops reading)
/// and stall until the op timeout; bounding the window keeps it safely below
/// any practical socket-buffer size. Acks that arrived while other requests
/// were being awaited are swept from the mailbox for free, so an insert only
/// *blocks* (a [`RemoteCluster::put_stalls`] event) when the window is full
/// of acks genuinely still in flight.
const MAX_PENDING_PUTS: u32 = 64;

/// A scattered node's state during a `lookup_many` gather: the node index,
/// its held connection lock, and the in-flight MultiGet's correlation id.
type InFlightGet<'a, T> = (usize, MutexGuard<'a, NodeConn<T>>, u64);

/// One pooled node connection plus its pipelining state.
struct NodeConn<T> {
    /// The framed stream, or `None` until (re)connected.
    framed: Option<FramedStream<T>>,
    /// `Put`/`MultiPut` frames written whose acks have not been collected
    /// yet. The multiplexed stream matches acks by correlation id, so they
    /// are collected whenever convenient — from the mailbox after any other
    /// exchange, or on the wire when the pipeline bound is hit.
    pending_puts: u32,
    /// Whether this node has ever been connected. A connection established
    /// when this is already `true` is a *heal*: invalidation batches may
    /// have been lost while the node was unreachable, so the node is told to
    /// seal its still-valid entries before serving anything else.
    was_connected: bool,
    /// When the last failed connect attempt happened, for the cooldown.
    last_failure: Option<std::time::Instant>,
}

impl<T> NodeConn<T> {
    /// Drops the connection and starts the reconnect cooldown.
    fn mark_dead(&mut self) {
        self.framed = None;
        self.pending_puts = 0;
        self.last_failure = Some(std::time::Instant::now());
    }
}

struct RemoteNode<T> {
    addr: String,
    conn: Mutex<NodeConn<T>>,
}

/// A cache cluster reached over the wire protocol: one `txcached` server
/// per ring node, dialled through a [`Connector`] (real TCP by default; the
/// chaos tests substitute a [`wire::SimNet`]).
pub struct RemoteCluster<C: Connector = TcpConnector> {
    connector: C,
    nodes: Vec<RemoteNode<C::Conn>>,
    ring: ConsistentHashRing,
    options: RemoteOptions,
    /// Operations absorbed as misses because of transport failures.
    degraded: AtomicU64,
    /// Connections healed after a failure (startup connects not counted).
    reconnects: AtomicU64,
    /// Inserts that blocked collecting put acks (pipeline window full with
    /// no acks already received).
    put_stalls: AtomicU64,
    /// Fault-injection mutation hook: when set, healed connections skip the
    /// §4.2 `SealStillValid` step. See
    /// [`RemoteCluster::disable_seal_on_heal_for_fault_injection`].
    seal_on_heal_disabled: AtomicBool,
}

impl RemoteCluster<TcpConnector> {
    /// Connects to the given `txcached` TCP addresses with default socket
    /// options. Every address must answer a `Ping`; failing nodes make the
    /// whole connect fail so a misconfigured deployment is caught at startup
    /// rather than degrading silently forever.
    pub fn connect(addrs: &[String]) -> Result<RemoteCluster> {
        RemoteCluster::connect_with(addrs, RemoteOptions::default())
    }

    /// [`RemoteCluster::connect`] with explicit socket options.
    pub fn connect_with(addrs: &[String], options: RemoteOptions) -> Result<RemoteCluster> {
        RemoteCluster::connect_via(TcpConnector, addrs, options)
    }
}

impl<C: Connector> RemoteCluster<C> {
    /// Connects to the given addresses through an arbitrary [`Connector`] —
    /// the generic form [`RemoteCluster::connect`] wraps for TCP, and the
    /// entry point the chaos tests use with a [`wire::SimNet`].
    pub fn connect_via(
        connector: C,
        addrs: &[String],
        options: RemoteOptions,
    ) -> Result<RemoteCluster<C>> {
        if addrs.is_empty() {
            return Err(Error::Network("no cache node addresses given".into()));
        }
        let cluster = RemoteCluster {
            connector,
            nodes: addrs
                .iter()
                .map(|addr| RemoteNode {
                    addr: addr.clone(),
                    conn: Mutex::new(NodeConn {
                        framed: None,
                        pending_puts: 0,
                        was_connected: false,
                        last_failure: None,
                    }),
                })
                .collect(),
            ring: ConsistentHashRing::with_nodes(addrs.to_vec()),
            options,
            degraded: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            put_stalls: AtomicU64::new(0),
            seal_on_heal_disabled: AtomicBool::new(false),
        };
        for (idx, node) in cluster.nodes.iter().enumerate() {
            let mut conn = node.conn.lock();
            cluster
                .ensure_connected(idx, &mut conn)
                .map_err(|e| Error::Network(format!("cache node {}: {e}", node.addr)))?;
        }
        Ok(cluster)
    }

    /// Operations that were absorbed as misses because a node was
    /// unreachable or timed out.
    #[must_use]
    pub fn degraded_ops(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Connections healed after a failure (the initial per-node connects at
    /// startup are not counted).
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Inserts that had to block collecting pipelined put acks because a
    /// node's pipeline window was full with none already received.
    #[must_use]
    pub fn put_stalls(&self) -> u64 {
        self.put_stalls.load(Ordering::Relaxed)
    }

    /// Drops every pooled connection and starts each node's reconnect
    /// cooldown, as a network partition would. Operations during the
    /// cooldown degrade to misses; the first operation after it heals the
    /// connection (sealing the node's still-valid entries first). Exposed
    /// for failure injection in tests and operational tooling.
    pub fn drop_connections(&self) {
        for node in &self.nodes {
            node.conn.lock().mark_dead();
        }
    }

    /// **Fault-injection mutation hook — never call in production.**
    /// Hidden from the documented API for exactly that reason.
    ///
    /// Disables the §4.2 seal-on-heal step: reconnected nodes keep serving
    /// still-valid entries whose invalidations may have been lost during
    /// the partition, which violates transactional consistency. The chaos
    /// suite flips this to prove its history checker actually catches the
    /// resulting stale resurrection (a mutation test of the checker).
    #[doc(hidden)]
    pub fn disable_seal_on_heal_for_fault_injection(&self) {
        self.seal_on_heal_disabled.store(true, Ordering::SeqCst);
    }

    /// The node addresses, in ring order.
    #[must_use]
    pub fn addrs(&self) -> Vec<String> {
        self.nodes.iter().map(|n| n.addr.clone()).collect()
    }

    fn ensure_connected(&self, idx: usize, conn: &mut NodeConn<C::Conn>) -> wire::Result<()> {
        if conn.framed.is_some() {
            return Ok(());
        }
        // Fail fast while the cooldown runs: one caller already paid the
        // connect timeout; everyone else degrades immediately instead of
        // queueing behind repeated connection attempts to a dead node.
        if let Some(at) = conn.last_failure {
            if at.elapsed() < self.options.retry_cooldown {
                return Err(wire::WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    "node in reconnect cooldown",
                )));
            }
        }
        let connected = (|| -> wire::Result<FramedStream<C::Conn>> {
            let stream = self
                .connector
                .connect(&self.nodes[idx].addr, self.options.connect_timeout)
                .map_err(wire::WireError::Io)?;
            stream
                .set_io_timeout(Some(self.options.op_timeout))
                .map_err(wire::WireError::Io)?;
            let mut framed = FramedStream::new(stream);
            // A heal: the node may have missed invalidation batches while
            // unreachable. Before it serves anything, its still-valid
            // entries are sealed at its current invalidation horizon so a
            // later heartbeat cannot extend results whose invalidation was
            // lost (the reliable-multicast recovery rule of §4.2).
            if conn.was_connected && !self.seal_on_heal_disabled.load(Ordering::SeqCst) {
                match framed.call(&Request::SealStillValid)?.into_result()? {
                    Response::Sealed { .. } => {}
                    other => {
                        return Err(wire::WireError::Io(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("unexpected seal reply: {other:?}"),
                        )))
                    }
                }
            }
            Ok(framed)
        })();
        match connected {
            Ok(framed) => {
                conn.framed = Some(framed);
                conn.pending_puts = 0;
                conn.last_failure = None;
                if conn.was_connected {
                    self.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                conn.was_connected = true;
                Ok(())
            }
            Err(e) => {
                conn.last_failure = Some(std::time::Instant::now());
                Err(e)
            }
        }
    }

    /// Sweeps put acks that already arrived (parked in the mailbox while
    /// some other response was being awaited) without touching the wire.
    /// Free: never blocks, never reads.
    fn sweep_parked_acks(conn: &mut NodeConn<C::Conn>) -> wire::Result<()> {
        if conn.pending_puts == 0 {
            return Ok(());
        }
        let framed = conn.framed.as_mut().expect("swept only when connected");
        while conn.pending_puts > 0 {
            match framed.pop_mailbox() {
                Some((_seq, response)) => {
                    response.into_result()?;
                    conn.pending_puts -= 1;
                }
                None => break,
            }
        }
        Ok(())
    }

    /// Blocks until one outstanding put ack arrives off the wire. Only
    /// called when the pipeline window is full and the mailbox is empty —
    /// the genuine stall case.
    fn collect_one_ack(conn: &mut NodeConn<C::Conn>) -> wire::Result<()> {
        let framed = conn.framed.as_mut().expect("collected only when connected");
        match framed.recv_matched()? {
            Some((_seq, response)) => {
                response.into_result()?;
                conn.pending_puts -= 1;
                Ok(())
            }
            None => Err(wire::WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed with puts outstanding",
            ))),
        }
    }

    /// Enforces the [`MAX_PENDING_PUTS`] window before writing another put.
    /// Sweeping the mailbox is free; only if the window is still full does
    /// the caller genuinely stall on the wire (a counted event).
    fn bound_put_pipeline(&self, conn: &mut NodeConn<C::Conn>) -> wire::Result<()> {
        Self::sweep_parked_acks(conn)?;
        if conn.pending_puts >= MAX_PENDING_PUTS {
            self.put_stalls.fetch_add(1, Ordering::Relaxed);
            while conn.pending_puts >= MAX_PENDING_PUTS {
                Self::collect_one_ack(conn)?;
            }
        }
        Ok(())
    }

    /// Absorbs an operation failure: counts it, and drops the pooled
    /// connection unless the failure was a correlation-id desync. A desync
    /// stream is still frame-aligned (the offending frame was consumed
    /// whole), so the connection — and every other request multiplexed on
    /// it — remains usable; only the awaited request degrades.
    fn absorb_failure(&self, conn: &mut NodeConn<C::Conn>, error: &wire::WireError) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
        if !matches!(error, wire::WireError::Desync { .. }) {
            conn.mark_dead();
        }
    }

    /// Runs one request/response exchange against a node, healing the
    /// connection lazily. On any failure the operation degrades and `None`
    /// is returned; transport failures additionally drop the pooled
    /// connection (the next use reconnects).
    fn exchange(&self, idx: usize, request: &Request) -> Option<Response> {
        let mut conn = self.nodes[idx].conn.lock();
        let result = (|| -> wire::Result<Response> {
            self.ensure_connected(idx, &mut conn)?;
            let framed = conn.framed.as_mut().expect("just connected");
            let seq = framed.send_request(request)?;
            // Awaiting our response parks any put acks that arrive first in
            // the mailbox; sweep them afterwards so the pipeline window
            // shrinks without ever paying a dedicated read for acks.
            let response = framed.recv_for(seq)?.into_result()?;
            Self::sweep_parked_acks(&mut conn)?;
            Ok(response)
        })();
        match result {
            Ok(response) => Some(response),
            Err(e) => {
                self.absorb_failure(&mut conn, &e);
                None
            }
        }
    }

    /// Sends one request to every node, *then* collects every response — the
    /// fan-out pipelining used for invalidation batches and maintenance, so
    /// total latency is one round trip rather than one per node.
    fn broadcast(&self, request: &Request) -> Vec<Option<Response>> {
        let mut guards: Vec<MutexGuard<'_, NodeConn<C::Conn>>> =
            self.nodes.iter().map(|n| n.conn.lock()).collect();
        let mut sent: Vec<Option<u64>> = Vec::with_capacity(guards.len());
        for (idx, conn) in guards.iter_mut().enumerate() {
            let outcome = (|| -> wire::Result<u64> {
                self.ensure_connected(idx, conn)?;
                conn.framed
                    .as_mut()
                    .expect("just connected")
                    .send_request(request)
            })();
            match outcome {
                Ok(seq) => sent.push(Some(seq)),
                Err(e) => {
                    self.absorb_failure(conn, &e);
                    sent.push(None);
                }
            }
        }
        let mut responses = Vec::with_capacity(guards.len());
        for (conn, seq) in guards.iter_mut().zip(sent) {
            let Some(seq) = seq else {
                responses.push(None);
                continue;
            };
            let received = (|| -> wire::Result<Response> {
                let response = conn
                    .framed
                    .as_mut()
                    .expect("sent on this conn")
                    .recv_for(seq)?
                    .into_result()?;
                Self::sweep_parked_acks(conn)?;
                Ok(response)
            })();
            match received {
                Ok(response) => responses.push(Some(response)),
                Err(e) => {
                    self.absorb_failure(conn, &e);
                    responses.push(None);
                }
            }
        }
        responses
    }

    /// Groups each key's position by the ring node responsible for it.
    /// Returned in node-index order so callers lock nodes in the same order
    /// as [`RemoteCluster::broadcast`] (no lock-order inversion).
    fn positions_by_node<'k>(&self, keys: impl Iterator<Item = &'k CacheKey>) -> Vec<Vec<usize>> {
        let mut by_node: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (pos, key) in keys.enumerate() {
            by_node[self.ring.node_for(key)].push(pos);
        }
        by_node
    }
}

impl<C: Connector> std::fmt::Debug for RemoteCluster<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteCluster")
            .field("nodes", &self.nodes.len())
            .field("degraded_ops", &self.degraded_ops())
            .finish()
    }
}

impl<C: Connector> CacheBackend for RemoteCluster<C> {
    fn kind(&self) -> BackendKind {
        BackendKind::Remote
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn lookup(&self, key: &CacheKey, request: &LookupRequest) -> LookupOutcome {
        let idx = self.ring.node_for(key);
        let response = self.exchange(
            idx,
            &Request::VersionedGet {
                key: key.clone(),
                pinset_lo: request.pinset_lo,
                pinset_hi: request.pinset_hi,
                freshness_lo: request.freshness_lo,
            },
        );
        match response {
            Some(Response::Hit {
                value,
                validity,
                stored_validity,
                tags,
            }) => LookupOutcome::Hit {
                value,
                validity,
                stored_validity,
                tags,
            },
            Some(Response::Miss { kind }) => LookupOutcome::Miss(kind.into()),
            // Unexpected frame or transport failure: serve the request from
            // the database instead of stalling it (§4's availability model —
            // a cache node that is down is just a miss).
            Some(_) | None => LookupOutcome::Miss(degraded_miss_kind()),
        }
    }

    fn lookup_many(&self, keys: &[CacheKey], request: &LookupRequest) -> Vec<LookupOutcome> {
        if keys.is_empty() {
            return Vec::new();
        }
        let by_node = self.positions_by_node(keys.iter());
        let mut out: Vec<LookupOutcome> = keys
            .iter()
            .map(|_| LookupOutcome::Miss(degraded_miss_kind()))
            .collect();
        // Scatter: lock every involved node (ascending index, matching
        // broadcast's lock order) and send its share of the read set as one
        // MultiGet, keeping every node's lookup in flight concurrently.
        let mut in_flight: Vec<InFlightGet<'_, C::Conn>> = Vec::new();
        for (idx, positions) in by_node.iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let mut conn = self.nodes[idx].conn.lock();
            let sent = (|| -> wire::Result<u64> {
                self.ensure_connected(idx, &mut conn)?;
                let node_keys: Vec<CacheKey> =
                    positions.iter().map(|&pos| keys[pos].clone()).collect();
                conn.framed
                    .as_mut()
                    .expect("just connected")
                    .send_request(&Request::MultiGet {
                        keys: node_keys,
                        pinset_lo: request.pinset_lo,
                        pinset_hi: request.pinset_hi,
                        freshness_lo: request.freshness_lo,
                    })
            })();
            match sent {
                Ok(seq) => in_flight.push((idx, conn, seq)),
                Err(e) => self.absorb_failure(&mut conn, &e),
            }
        }
        // Gather: each node's single MultiGetResult carries its whole share
        // in request order. A failed node leaves its keys as the degraded
        // misses they were initialized to.
        for (idx, mut conn, seq) in in_flight {
            let received = (|| -> wire::Result<Response> {
                let response = conn
                    .framed
                    .as_mut()
                    .expect("sent on this conn")
                    .recv_for(seq)?
                    .into_result()?;
                Self::sweep_parked_acks(&mut conn)?;
                Ok(response)
            })();
            match received {
                Ok(Response::MultiGetResult { results }) if results.len() == by_node[idx].len() => {
                    for (&pos, result) in by_node[idx].iter().zip(results) {
                        out[pos] = match result {
                            GetResult::Hit {
                                value,
                                validity,
                                stored_validity,
                                tags,
                            } => LookupOutcome::Hit {
                                value,
                                validity,
                                stored_validity,
                                tags,
                            },
                            GetResult::Miss { kind } => LookupOutcome::Miss(kind.into()),
                        };
                    }
                }
                // A well-formed frame of the wrong shape (or a result count
                // that disagrees with the request) is a protocol bug on the
                // node: treat it like any transport failure.
                Ok(_) => {
                    self.degraded.fetch_add(1, Ordering::Relaxed);
                    conn.mark_dead();
                }
                Err(e) => self.absorb_failure(&mut conn, &e),
            }
        }
        out
    }

    fn insert(
        &self,
        key: CacheKey,
        value: Bytes,
        validity: ValidityInterval,
        tags: TagSet,
        now: WallClock,
    ) {
        let idx = self.ring.node_for(&key);
        let mut conn = self.nodes[idx].conn.lock();
        let sent = (|| -> wire::Result<()> {
            self.ensure_connected(idx, &mut conn)?;
            self.bound_put_pipeline(&mut conn)?;
            let framed = conn.framed.as_mut().expect("just connected");
            framed.send_request(&Request::Put {
                key,
                value,
                validity,
                tags,
                now,
            })?;
            Ok(())
        })();
        match sent {
            Ok(()) => conn.pending_puts += 1,
            Err(e) => self.absorb_failure(&mut conn, &e),
        }
    }

    fn insert_many(
        &self,
        entries: Vec<(CacheKey, Bytes, ValidityInterval, TagSet)>,
        now: WallClock,
    ) {
        if entries.is_empty() {
            return;
        }
        let by_node = self.positions_by_node(entries.iter().map(|(key, ..)| key));
        let mut slots: Vec<Option<(CacheKey, Bytes, ValidityInterval, TagSet)>> =
            entries.into_iter().map(Some).collect();
        for (idx, positions) in by_node.iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let batch: Vec<PutEntry> = positions
                .iter()
                .map(|&pos| {
                    let (key, value, validity, tags) =
                        slots[pos].take().expect("each position taken once");
                    PutEntry {
                        key,
                        value,
                        validity,
                        tags,
                        now,
                    }
                })
                .collect();
            let mut conn = self.nodes[idx].conn.lock();
            let sent = (|| -> wire::Result<()> {
                self.ensure_connected(idx, &mut conn)?;
                self.bound_put_pipeline(&mut conn)?;
                let framed = conn.framed.as_mut().expect("just connected");
                framed.send_request(&Request::MultiPut { entries: batch })?;
                Ok(())
            })();
            match sent {
                // One `MultiPut` is one pipelined ack, however many entries
                // it carries.
                Ok(()) => conn.pending_puts += 1,
                Err(e) => self.absorb_failure(&mut conn, &e),
            }
        }
    }

    fn put_stalls(&self) -> u64 {
        RemoteCluster::put_stalls(self)
    }

    fn apply_invalidations(&self, batch: &[InvalidationMessage], heartbeat: Timestamp) {
        let events: Vec<InvalidationEvent> = batch
            .iter()
            .map(|m| InvalidationEvent {
                timestamp: m.timestamp,
                tags: m.tags.clone(),
            })
            .collect();
        self.broadcast(&Request::InvalidationBatch { events, heartbeat });
    }

    fn evict_stale(&self, min_useful_ts: Timestamp) {
        self.broadcast(&Request::EvictStale { min_useful_ts });
    }

    fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for response in self.broadcast(&Request::Stats) {
            if let Some(Response::StatsSnapshot(stats)) = response {
                total.merge(&stats.into());
            }
        }
        total
    }

    fn reset_stats(&self) {
        self.broadcast(&Request::ResetStats);
    }
}

/// The miss classification used when a node is unreachable. Capacity is the
/// closest §8.3 class — the cached data exists somewhere but this deployment
/// cannot produce it right now — and it keeps degraded operation from
/// polluting the compulsory/consistency analysis.
fn degraded_miss_kind() -> cache_server::MissKind {
    cache_server::MissKind::Capacity
}
