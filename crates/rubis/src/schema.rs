//! The RUBiS auction-site schema, scale presets, and data generator.
//!
//! The schema follows the RUBiS benchmark: users, active and old auctions,
//! bids, comments, buy-now purchases, plus the categories/regions dimension
//! tables. Following §7.1 of the paper we also add the
//! `item_region_category` table (and its indexes) that the authors introduced
//! to avoid a sequential scan when browsing items by region and category.
//!
//! The secondary indexes declared here (`bids.item_id`, `bids.user_id`,
//! `items.category`, `items.seller`, `item_region_category.{region,category}`,
//! `comments.to_user`, and the unique `id` indexes) back the planner's
//! fast paths: equality and IN-list probes with keyed invalidation tags,
//! ORDER BY + LIMIT pushdown, and MIN/MAX endpoint probes. The hot `app.rs`
//! queries assert (in tests) that none of them plans a sequential scan.

use mvdb::{ColumnType, Database, TableSchema, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use txtypes::Result;

/// Scale parameters for generating a RUBiS database.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RubisScale {
    /// Number of registered users.
    pub users: usize,
    /// Number of active auctions.
    pub active_items: usize,
    /// Number of completed auctions.
    pub old_items: usize,
    /// Number of item categories.
    pub categories: usize,
    /// Number of user regions.
    pub regions: usize,
    /// Average number of bids per item.
    pub bids_per_item: usize,
    /// Average number of comments per user (capped).
    pub comments_per_user: usize,
    /// Length of generated item descriptions, in bytes.
    pub description_len: usize,
}

impl RubisScale {
    /// The paper's in-memory configuration (≈850 MB: 35 k active auctions,
    /// 50 k completed auctions, 160 k users) scaled by `factor`.
    #[must_use]
    pub fn in_memory(factor: f64) -> RubisScale {
        RubisScale {
            users: scaled(160_000, factor),
            active_items: scaled(35_000, factor),
            old_items: scaled(50_000, factor),
            categories: 20,
            regions: 62,
            bids_per_item: 3,
            comments_per_user: 2,
            description_len: 200,
        }
    }

    /// The paper's disk-bound configuration (≈6 GB: 225 k active auctions,
    /// 1 M completed auctions, 1.35 M users) scaled by `factor`.
    #[must_use]
    pub fn disk_bound(factor: f64) -> RubisScale {
        RubisScale {
            users: scaled(1_350_000, factor),
            active_items: scaled(225_000, factor),
            old_items: scaled(1_000_000, factor),
            categories: 20,
            regions: 62,
            bids_per_item: 3,
            comments_per_user: 2,
            description_len: 200,
        }
    }

    /// A tiny configuration for unit and integration tests.
    #[must_use]
    pub fn tiny() -> RubisScale {
        RubisScale {
            users: 200,
            active_items: 100,
            old_items: 50,
            categories: 5,
            regions: 4,
            bids_per_item: 2,
            comments_per_user: 1,
            description_len: 40,
        }
    }

    /// Total number of item rows (active + old).
    #[must_use]
    pub fn total_items(&self) -> usize {
        self.active_items + self.old_items
    }
}

fn scaled(base: usize, factor: f64) -> usize {
    ((base as f64 * factor).round() as usize).max(10)
}

/// Returns every table schema of the RUBiS database.
#[must_use]
pub fn schemas() -> Vec<TableSchema> {
    vec![
        TableSchema::new("categories")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .unique_index("id"),
        TableSchema::new("regions")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .unique_index("id"),
        TableSchema::new("users")
            .column("id", ColumnType::Int)
            .column("nickname", ColumnType::Text)
            .column("password", ColumnType::Text)
            .column("rating", ColumnType::Int)
            .column("balance", ColumnType::Float)
            .column("region", ColumnType::Int)
            .unique_index("id")
            .unique_index("nickname")
            .index("region"),
        TableSchema::new("items")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("description", ColumnType::Text)
            .column("seller", ColumnType::Int)
            .column("category", ColumnType::Int)
            .column("initial_price", ColumnType::Float)
            .column("current_price", ColumnType::Float)
            .column("nb_of_bids", ColumnType::Int)
            .column("end_date", ColumnType::Int)
            .unique_index("id")
            .index("seller")
            .index("category"),
        TableSchema::new("old_items")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("description", ColumnType::Text)
            .column("seller", ColumnType::Int)
            .column("category", ColumnType::Int)
            .column("initial_price", ColumnType::Float)
            .column("current_price", ColumnType::Float)
            .column("nb_of_bids", ColumnType::Int)
            .column("end_date", ColumnType::Int)
            .unique_index("id")
            .index("seller")
            .index("category"),
        TableSchema::new("bids")
            .column("id", ColumnType::Int)
            .column("user_id", ColumnType::Int)
            .column("item_id", ColumnType::Int)
            .column("bid", ColumnType::Float)
            .column("date", ColumnType::Int)
            .unique_index("id")
            .index("item_id")
            .index("user_id"),
        TableSchema::new("comments")
            .column("id", ColumnType::Int)
            .column("from_user", ColumnType::Int)
            .column("to_user", ColumnType::Int)
            .column("item_id", ColumnType::Int)
            .column("rating", ColumnType::Int)
            .column("comment", ColumnType::Text)
            .unique_index("id")
            .index("to_user")
            .index("item_id"),
        TableSchema::new("buy_now")
            .column("id", ColumnType::Int)
            .column("buyer", ColumnType::Int)
            .column("item_id", ColumnType::Int)
            .column("qty", ColumnType::Int)
            .column("date", ColumnType::Int)
            .unique_index("id")
            .index("buyer"),
        // The table added in §7.1 so that region+category browsing uses an
        // index instead of a sequential scan and join.
        TableSchema::new("item_region_category")
            .column("item_id", ColumnType::Int)
            .column("region", ColumnType::Int)
            .column("category", ColumnType::Int)
            .unique_index("item_id")
            .index("region")
            .index("category"),
    ]
}

/// Creates every RUBiS table on the database.
pub fn create_tables(db: &Database) -> Result<()> {
    for schema in schemas() {
        db.create_table(schema)?;
    }
    Ok(())
}

/// Summary of a generated dataset, returned by [`populate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSummary {
    /// Number of user rows.
    pub users: usize,
    /// Number of active item rows.
    pub active_items: usize,
    /// Number of old item rows.
    pub old_items: usize,
    /// Number of bid rows.
    pub bids: usize,
    /// Number of comment rows.
    pub comments: usize,
    /// Approximate total size of the generated data in bytes.
    pub approx_bytes: usize,
}

/// Populates a RUBiS database deterministically from `seed`.
pub fn populate(db: &Database, scale: &RubisScale, seed: u64) -> Result<DatasetSummary> {
    let mut rng = StdRng::seed_from_u64(seed);

    db.bulk_load(
        "categories",
        (1..=scale.categories as i64)
            .map(|i| vec![Value::Int(i), Value::text(format!("category-{i}"))])
            .collect(),
    )?;
    db.bulk_load(
        "regions",
        (1..=scale.regions as i64)
            .map(|i| vec![Value::Int(i), Value::text(format!("region-{i}"))])
            .collect(),
    )?;

    // Users.
    let users: Vec<Vec<Value>> = (1..=scale.users as i64)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::text(format!("user{i}")),
                Value::text(format!("password{i}")),
                Value::Int(rng.random_range(0..100)),
                Value::Float(rng.random_range(0.0..1000.0)),
                Value::Int(rng.random_range(1..=scale.regions as i64)),
            ]
        })
        .collect();
    for chunk in users.chunks(50_000) {
        db.bulk_load("users", chunk.to_vec())?;
    }

    // Items (active and old) plus the region/category side table and bids.
    let mut bids: Vec<Vec<Value>> = Vec::new();
    let mut irc: Vec<Vec<Value>> = Vec::new();
    let mut bid_id: i64 = 1;
    let description: String = "x".repeat(scale.description_len);

    let make_items = |count: usize, offset: i64, rng: &mut StdRng| -> Vec<Vec<Value>> {
        (0..count as i64)
            .map(|n| {
                let id = offset + n + 1;
                let seller = rng.random_range(1..=scale.users.max(1) as i64);
                let category = rng.random_range(1..=scale.categories as i64);
                let initial = rng.random_range(1.0..100.0);
                let nb_bids = scale.bids_per_item as i64;
                vec![
                    Value::Int(id),
                    Value::text(format!("item-{id}")),
                    Value::text(description.clone()),
                    Value::Int(seller),
                    Value::Int(category),
                    Value::Float(initial),
                    Value::Float(initial * 1.5),
                    Value::Int(nb_bids),
                    Value::Int(1_000_000 + id),
                ]
            })
            .collect()
    };

    let active = make_items(scale.active_items, 0, &mut rng);
    for item in &active {
        let id = item[0].as_int().unwrap_or_default();
        let category = item[4].as_int().unwrap_or_default();
        // The seller's region stands in for the item's region, as in RUBiS.
        let region = rng.random_range(1..=scale.regions as i64);
        irc.push(vec![
            Value::Int(id),
            Value::Int(region),
            Value::Int(category),
        ]);
        for _ in 0..scale.bids_per_item {
            bids.push(vec![
                Value::Int(bid_id),
                Value::Int(rng.random_range(1..=scale.users.max(1) as i64)),
                Value::Int(id),
                Value::Float(rng.random_range(1.0..200.0)),
                Value::Int(bid_id),
            ]);
            bid_id += 1;
        }
    }
    for chunk in active.chunks(50_000) {
        db.bulk_load("items", chunk.to_vec())?;
    }

    let old = make_items(scale.old_items, scale.active_items as i64, &mut rng);
    for item in &old {
        let id = item[0].as_int().unwrap_or_default();
        for _ in 0..scale.bids_per_item {
            bids.push(vec![
                Value::Int(bid_id),
                Value::Int(rng.random_range(1..=scale.users.max(1) as i64)),
                Value::Int(id),
                Value::Float(rng.random_range(1.0..200.0)),
                Value::Int(bid_id),
            ]);
            bid_id += 1;
        }
    }
    for chunk in old.chunks(50_000) {
        db.bulk_load("old_items", chunk.to_vec())?;
    }

    for chunk in irc.chunks(50_000) {
        db.bulk_load("item_region_category", chunk.to_vec())?;
    }
    let bid_count = bids.len();
    for chunk in bids.chunks(50_000) {
        db.bulk_load("bids", chunk.to_vec())?;
    }

    // Comments.
    let mut comments: Vec<Vec<Value>> = Vec::new();
    let mut comment_id: i64 = 1;
    for user in 1..=scale.users as i64 {
        for _ in 0..scale.comments_per_user {
            comments.push(vec![
                Value::Int(comment_id),
                Value::Int(rng.random_range(1..=scale.users.max(1) as i64)),
                Value::Int(user),
                Value::Int(rng.random_range(1..=scale.total_items().max(1) as i64)),
                Value::Int(rng.random_range(0..=5)),
                Value::text("great seller, fast shipping"),
            ]);
            comment_id += 1;
        }
    }
    let comment_count = comments.len();
    for chunk in comments.chunks(50_000) {
        db.bulk_load("comments", chunk.to_vec())?;
    }

    Ok(DatasetSummary {
        users: scale.users,
        active_items: scale.active_items,
        old_items: scale.old_items,
        bids: bid_count,
        comments: comment_count,
        approx_bytes: db.total_bytes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdb::{Aggregate, SelectQuery};

    #[test]
    fn scales_have_expected_proportions() {
        let full = RubisScale::in_memory(1.0);
        assert_eq!(full.users, 160_000);
        assert_eq!(full.active_items, 35_000);
        let tenth = RubisScale::in_memory(0.1);
        assert_eq!(tenth.users, 16_000);
        let disk = RubisScale::disk_bound(0.01);
        assert_eq!(disk.old_items, 10_000);
        assert!(RubisScale::tiny().total_items() < 200);
    }

    #[test]
    fn schema_list_is_valid() {
        for schema in schemas() {
            schema.validate().unwrap();
        }
        assert_eq!(schemas().len(), 9);
    }

    #[test]
    fn populate_creates_consistent_counts() {
        let db = Database::with_defaults();
        create_tables(&db).unwrap();
        let scale = RubisScale::tiny();
        let summary = populate(&db, &scale, 42).unwrap();
        assert_eq!(summary.users, scale.users);
        assert_eq!(summary.bids, scale.total_items() * scale.bids_per_item);
        assert!(summary.approx_bytes > 0);

        let count = |table: &str| -> i64 {
            let q = SelectQuery::table(table).aggregate(Aggregate::Count);
            db.query_ro_once(&q)
                .unwrap()
                .result
                .get(0, "count")
                .unwrap()
                .as_int()
                .unwrap()
        };
        assert_eq!(count("users"), scale.users as i64);
        assert_eq!(count("items"), scale.active_items as i64);
        assert_eq!(count("old_items"), scale.old_items as i64);
        assert_eq!(count("item_region_category"), scale.active_items as i64);
        assert_eq!(count("categories"), scale.categories as i64);
    }

    #[test]
    fn populate_is_deterministic() {
        let build = || {
            let db = Database::with_defaults();
            create_tables(&db).unwrap();
            populate(&db, &RubisScale::tiny(), 7).unwrap();
            let q = SelectQuery::table("items").filter(mvdb::Predicate::eq("id", 5i64));
            let r = db.query_ro_once(&q).unwrap();
            format!("{:?}", r.result.rows)
        };
        assert_eq!(build(), build());
    }
}
