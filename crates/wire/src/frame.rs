//! Length-prefixed framing over any `Read`/`Write` transport.
//!
//! A frame is a little-endian `u32` body length followed by the body (version
//! byte, opcode byte, payload). The framing layer is transport-agnostic: the
//! `txcached` server and the remote client both run it over `TcpStream`, and
//! the tests run it over in-memory buffers.

use std::io::{Read, Write};

use crate::msg::{Request, Response};
use crate::WireError;

/// The protocol version this crate encodes and accepts.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a frame body; larger declared lengths are rejected before
/// any allocation happens.
pub const MAX_FRAME_BYTES: usize = 32 << 20;

/// Writes one frame (length prefix + body) and flushes.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> crate::Result<()> {
    if body.len() > MAX_FRAME_BYTES {
        return Err(WireError::TooLarge(body.len()));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame body. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the connection between requests).
pub fn read_frame(r: &mut impl Read) -> crate::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // A clean close before any length byte is a normal disconnect; a close
    // mid-prefix or mid-body is a truncated frame.
    match r.read(&mut len_buf)? {
        0 => return Ok(None),
        n => r.read_exact(&mut len_buf[n..]).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                WireError::Truncated
            } else {
                WireError::Io(e)
            }
        })?,
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::TooLarge(len));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    })?;
    Ok(Some(body))
}

/// A bidirectional framed message stream over any `Read + Write` transport.
///
/// Used symmetrically: the server reads requests and writes responses, the
/// client writes requests and reads responses. `send_request` and
/// `recv_response` are separate calls so a client can *pipeline* — write
/// several requests before reading the (in-order) responses back.
#[derive(Debug)]
pub struct FramedStream<S> {
    stream: S,
}

impl<S: Read + Write> FramedStream<S> {
    /// Wraps a transport.
    #[must_use]
    pub fn new(stream: S) -> FramedStream<S> {
        FramedStream { stream }
    }

    /// Returns the underlying transport.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.stream
    }

    /// Borrows the underlying transport (e.g. to adjust socket timeouts).
    #[must_use]
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Mutably borrows the underlying transport, for callers that need to
    /// read or write raw frames alongside the typed helpers.
    #[must_use]
    pub fn transport_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    /// Sends one request frame.
    pub fn send_request(&mut self, request: &Request) -> crate::Result<()> {
        write_frame(&mut self.stream, &request.encode())
    }

    /// Receives one response frame; `Ok(None)` on clean disconnect.
    pub fn recv_response(&mut self) -> crate::Result<Option<Response>> {
        match read_frame(&mut self.stream)? {
            None => Ok(None),
            Some(body) => Ok(Some(Response::decode(&body)?)),
        }
    }

    /// Receives one request frame; `Ok(None)` on clean disconnect.
    pub fn recv_request(&mut self) -> crate::Result<Option<Request>> {
        match read_frame(&mut self.stream)? {
            None => Ok(None),
            Some(body) => Ok(Some(Request::decode(&body)?)),
        }
    }

    /// Sends one response frame.
    pub fn send_response(&mut self, response: &Response) -> crate::Result<()> {
        write_frame(&mut self.stream, &response.encode())
    }

    /// Sends a request and waits for its response — the unpipelined
    /// convenience path. A clean disconnect mid-call is an error here.
    pub fn call(&mut self, request: &Request) -> crate::Result<Response> {
        self.send_request(request)?;
        match self.recv_response()? {
            Some(r) => Ok(r),
            None => Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed awaiting response",
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"second").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"first");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"second");
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn truncated_frames_are_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        // Cut the body short.
        let mut cur = Cursor::new(&buf[..buf.len() - 2]);
        assert!(matches!(read_frame(&mut cur), Err(WireError::Truncated)));
        // Cut the length prefix short.
        let mut cur = Cursor::new(&buf[..2]);
        assert!(matches!(read_frame(&mut cur), Err(WireError::Truncated)));
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cur = Cursor::new(buf);
        assert!(matches!(read_frame(&mut cur), Err(WireError::TooLarge(_))));
    }
}
