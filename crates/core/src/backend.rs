//! Pluggable cache transports: in-process or over the `wire` protocol.
//!
//! The paper's deployment puts cache nodes on their own machines behind a
//! memcached-like protocol (§4, §7); our reproduction historically linked
//! the cache into the application process. [`CacheBackend`] abstracts the
//! boundary so both deployments run the *same* client library:
//!
//! * [`cache_server::CacheCluster`] implements the trait directly — the
//!   original in-process configuration, still the default. The cluster
//!   holds its sharded nodes by reference (no wrapper mutexes), so
//!   concurrent application-server threads hit the node shards in
//!   parallel: lookups under shared locks, inserts under one shard's
//!   exclusive lock;
//! * [`RemoteCluster`] speaks the `wire` protocol to a set of `txcached`
//!   servers, with one pooled connection per consistent-hash-ring node.
//!
//! `RemoteCluster` is generic over a [`wire::Connector`]: production dials
//! real TCP ([`wire::TcpConnector`], the default type parameter), and the
//! chaos tests dial through an in-process [`wire::SimNet`] whose pipes
//! inject deterministic frame drops, duplicates, reorderings, resets, and
//! partitions. The client code — pooling, pipelining, degradation,
//! seal-on-heal — is identical either way, which is the point: the fault
//! injection exercises the code that runs in production.
//!
//! The remote backend is deliberately failure-tolerant in the way a cache
//! must be: any transport error, timeout, or response-sequence desync on
//! the lookup/insert path is *absorbed as a cache miss* (and counted in
//! [`RemoteCluster::degraded_ops`]), the connection is dropped and lazily
//! re-established, and the application keeps running against the database.
//! Inserts are pipelined — the `Put` frame is written and the ack collected
//! before the connection's next use — so a miss-then-fill does not pay a
//! second round trip.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use bytes::Bytes;
use cache_server::{CacheCluster, CacheStats, ConsistentHashRing, LookupOutcome, LookupRequest};
use mvdb::InvalidationMessage;
use parking_lot::{Mutex, MutexGuard};
use txtypes::{CacheKey, Error, Result, TagSet, Timestamp, ValidityInterval, WallClock};
use wire::{
    Connector, FramedStream, InvalidationEvent, Request, Response, TcpConnector, Transport,
};

use crate::config::BackendKind;

/// The cache transport the TxCache library talks through.
///
/// Both implementations expose the identical operation set, so every
/// transaction code path (and every test) runs unchanged on either.
pub trait CacheBackend: Send + Sync + std::fmt::Debug {
    /// Which kind of backend this is (for reporting and config assertions).
    fn kind(&self) -> BackendKind;

    /// Number of cache nodes behind this backend.
    fn node_count(&self) -> usize;

    /// Looks up a key on the responsible node (§4.1).
    fn lookup(&self, key: &CacheKey, request: &LookupRequest) -> LookupOutcome;

    /// Inserts a computed value on the responsible node (§6.1).
    fn insert(
        &self,
        key: CacheKey,
        value: Bytes,
        validity: ValidityInterval,
        tags: TagSet,
        now: WallClock,
    );

    /// Delivers a commit-ordered slice of the invalidation stream to every
    /// node, then advances every node's heartbeat to `heartbeat` (§4.2). An
    /// empty batch with a newer heartbeat is a pure timestamp heartbeat.
    fn apply_invalidations(&self, batch: &[InvalidationMessage], heartbeat: Timestamp);

    /// Eagerly evicts entries no transaction can use anymore on every node.
    fn evict_stale(&self, min_useful_ts: Timestamp);

    /// Aggregated cache statistics across all nodes.
    fn stats(&self) -> CacheStats;

    /// Resets hit/miss counters on every node.
    fn reset_stats(&self);
}

impl CacheBackend for CacheCluster {
    fn kind(&self) -> BackendKind {
        BackendKind::InProcess
    }

    fn node_count(&self) -> usize {
        CacheCluster::node_count(self)
    }

    fn lookup(&self, key: &CacheKey, request: &LookupRequest) -> LookupOutcome {
        CacheCluster::lookup(self, key, request)
    }

    fn insert(
        &self,
        key: CacheKey,
        value: Bytes,
        validity: ValidityInterval,
        tags: TagSet,
        now: WallClock,
    ) {
        CacheCluster::insert(self, key, value, validity, tags, now);
    }

    fn apply_invalidations(&self, batch: &[InvalidationMessage], heartbeat: Timestamp) {
        for message in batch {
            self.apply_invalidation(message.timestamp, &message.tags);
        }
        self.note_timestamp(heartbeat);
    }

    fn evict_stale(&self, min_useful_ts: Timestamp) {
        CacheCluster::evict_stale(self, min_useful_ts);
    }

    fn stats(&self) -> CacheStats {
        CacheCluster::stats(self)
    }

    fn reset_stats(&self) {
        CacheCluster::reset_stats(self);
    }
}

/// Tuning for the remote backend's connections.
#[derive(Debug, Clone, Copy)]
pub struct RemoteOptions {
    /// Per-operation I/O timeout. An expired timeout degrades the
    /// operation to a miss and drops the pooled connection.
    pub op_timeout: Duration,
    /// Timeout for establishing a connection to a node.
    pub connect_timeout: Duration,
    /// Minimum delay between reconnection attempts to a dead node. Within
    /// the cooldown, operations routed to the node fail fast (degrading to
    /// misses) instead of stalling every caller for `connect_timeout`.
    pub retry_cooldown: Duration,
}

impl Default for RemoteOptions {
    fn default() -> Self {
        RemoteOptions {
            op_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(2),
            retry_cooldown: Duration::from_secs(1),
        }
    }
}

/// Most `Put` acks a connection may leave uncollected. Unbounded pipelining
/// would eventually fill both transport buffer directions on an insert-heavy
/// burst (the server blocks writing acks nobody reads, then stops reading)
/// and stall until the op timeout; draining at a threshold keeps the window
/// safely below any practical socket-buffer size.
const MAX_PENDING_PUTS: u32 = 64;

/// One pooled node connection plus its pipelining state.
struct NodeConn<T> {
    /// The framed stream, or `None` until (re)connected.
    framed: Option<FramedStream<T>>,
    /// `Put` frames written whose acks have not been collected yet. Acks are
    /// drained before the next request that needs a response, preserving the
    /// one-response-per-request ordering the protocol guarantees.
    pending_puts: u32,
    /// Whether this node has ever been connected. A connection established
    /// when this is already `true` is a *heal*: invalidation batches may
    /// have been lost while the node was unreachable, so the node is told to
    /// seal its still-valid entries before serving anything else.
    was_connected: bool,
    /// When the last failed connect attempt happened, for the cooldown.
    last_failure: Option<std::time::Instant>,
}

impl<T> NodeConn<T> {
    /// Drops the connection and starts the reconnect cooldown.
    fn mark_dead(&mut self) {
        self.framed = None;
        self.pending_puts = 0;
        self.last_failure = Some(std::time::Instant::now());
    }
}

struct RemoteNode<T> {
    addr: String,
    conn: Mutex<NodeConn<T>>,
}

/// A cache cluster reached over the wire protocol: one `txcached` server
/// per ring node, dialled through a [`Connector`] (real TCP by default; the
/// chaos tests substitute a [`wire::SimNet`]).
pub struct RemoteCluster<C: Connector = TcpConnector> {
    connector: C,
    nodes: Vec<RemoteNode<C::Conn>>,
    ring: ConsistentHashRing,
    options: RemoteOptions,
    /// Operations absorbed as misses because of transport failures.
    degraded: AtomicU64,
    /// Connections healed after a failure (startup connects not counted).
    reconnects: AtomicU64,
    /// Fault-injection mutation hook: when set, healed connections skip the
    /// §4.2 `SealStillValid` step. See
    /// [`RemoteCluster::disable_seal_on_heal_for_fault_injection`].
    seal_on_heal_disabled: AtomicBool,
}

impl RemoteCluster<TcpConnector> {
    /// Connects to the given `txcached` TCP addresses with default socket
    /// options. Every address must answer a `Ping`; failing nodes make the
    /// whole connect fail so a misconfigured deployment is caught at startup
    /// rather than degrading silently forever.
    pub fn connect(addrs: &[String]) -> Result<RemoteCluster> {
        RemoteCluster::connect_with(addrs, RemoteOptions::default())
    }

    /// [`RemoteCluster::connect`] with explicit socket options.
    pub fn connect_with(addrs: &[String], options: RemoteOptions) -> Result<RemoteCluster> {
        RemoteCluster::connect_via(TcpConnector, addrs, options)
    }
}

impl<C: Connector> RemoteCluster<C> {
    /// Connects to the given addresses through an arbitrary [`Connector`] —
    /// the generic form [`RemoteCluster::connect`] wraps for TCP, and the
    /// entry point the chaos tests use with a [`wire::SimNet`].
    pub fn connect_via(
        connector: C,
        addrs: &[String],
        options: RemoteOptions,
    ) -> Result<RemoteCluster<C>> {
        if addrs.is_empty() {
            return Err(Error::Network("no cache node addresses given".into()));
        }
        let cluster = RemoteCluster {
            connector,
            nodes: addrs
                .iter()
                .map(|addr| RemoteNode {
                    addr: addr.clone(),
                    conn: Mutex::new(NodeConn {
                        framed: None,
                        pending_puts: 0,
                        was_connected: false,
                        last_failure: None,
                    }),
                })
                .collect(),
            ring: ConsistentHashRing::with_nodes(addrs.to_vec()),
            options,
            degraded: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            seal_on_heal_disabled: AtomicBool::new(false),
        };
        for (idx, node) in cluster.nodes.iter().enumerate() {
            let mut conn = node.conn.lock();
            cluster
                .ensure_connected(idx, &mut conn)
                .map_err(|e| Error::Network(format!("cache node {}: {e}", node.addr)))?;
        }
        Ok(cluster)
    }

    /// Operations that were absorbed as misses because a node was
    /// unreachable or timed out.
    #[must_use]
    pub fn degraded_ops(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Connections healed after a failure (the initial per-node connects at
    /// startup are not counted).
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Drops every pooled connection and starts each node's reconnect
    /// cooldown, as a network partition would. Operations during the
    /// cooldown degrade to misses; the first operation after it heals the
    /// connection (sealing the node's still-valid entries first). Exposed
    /// for failure injection in tests and operational tooling.
    pub fn drop_connections(&self) {
        for node in &self.nodes {
            node.conn.lock().mark_dead();
        }
    }

    /// **Fault-injection mutation hook — never call in production.**
    /// Hidden from the documented API for exactly that reason.
    ///
    /// Disables the §4.2 seal-on-heal step: reconnected nodes keep serving
    /// still-valid entries whose invalidations may have been lost during
    /// the partition, which violates transactional consistency. The chaos
    /// suite flips this to prove its history checker actually catches the
    /// resulting stale resurrection (a mutation test of the checker).
    #[doc(hidden)]
    pub fn disable_seal_on_heal_for_fault_injection(&self) {
        self.seal_on_heal_disabled.store(true, Ordering::SeqCst);
    }

    /// The node addresses, in ring order.
    #[must_use]
    pub fn addrs(&self) -> Vec<String> {
        self.nodes.iter().map(|n| n.addr.clone()).collect()
    }

    fn ensure_connected(&self, idx: usize, conn: &mut NodeConn<C::Conn>) -> wire::Result<()> {
        if conn.framed.is_some() {
            return Ok(());
        }
        // Fail fast while the cooldown runs: one caller already paid the
        // connect timeout; everyone else degrades immediately instead of
        // queueing behind repeated connection attempts to a dead node.
        if let Some(at) = conn.last_failure {
            if at.elapsed() < self.options.retry_cooldown {
                return Err(wire::WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    "node in reconnect cooldown",
                )));
            }
        }
        let connected = (|| -> wire::Result<FramedStream<C::Conn>> {
            let stream = self
                .connector
                .connect(&self.nodes[idx].addr, self.options.connect_timeout)
                .map_err(wire::WireError::Io)?;
            stream
                .set_io_timeout(Some(self.options.op_timeout))
                .map_err(wire::WireError::Io)?;
            let mut framed = FramedStream::new(stream);
            // A heal: the node may have missed invalidation batches while
            // unreachable. Before it serves anything, its still-valid
            // entries are sealed at its current invalidation horizon so a
            // later heartbeat cannot extend results whose invalidation was
            // lost (the reliable-multicast recovery rule of §4.2).
            if conn.was_connected && !self.seal_on_heal_disabled.load(Ordering::SeqCst) {
                match framed.call(&Request::SealStillValid)?.into_result()? {
                    Response::Sealed { .. } => {}
                    other => {
                        return Err(wire::WireError::Io(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("unexpected seal reply: {other:?}"),
                        )))
                    }
                }
            }
            Ok(framed)
        })();
        match connected {
            Ok(framed) => {
                conn.framed = Some(framed);
                conn.pending_puts = 0;
                conn.last_failure = None;
                if conn.was_connected {
                    self.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                conn.was_connected = true;
                Ok(())
            }
            Err(e) => {
                conn.last_failure = Some(std::time::Instant::now());
                Err(e)
            }
        }
    }

    /// Collects outstanding pipelined `Put` acks so the next request's
    /// response is the next frame on the stream.
    fn drain_pending(conn: &mut NodeConn<C::Conn>) -> wire::Result<()> {
        while conn.pending_puts > 0 {
            let framed = conn.framed.as_mut().expect("drained only when connected");
            match framed.recv_response()? {
                Some(response) => {
                    response.into_result()?;
                    conn.pending_puts -= 1;
                }
                None => {
                    return Err(wire::WireError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed with puts outstanding",
                    )))
                }
            }
        }
        Ok(())
    }

    /// Runs one request/response exchange against a node, healing the
    /// connection lazily. On any failure the pooled connection is dropped
    /// (the next use reconnects) and `None` is returned; callers degrade.
    fn exchange(&self, idx: usize, request: &Request) -> Option<Response> {
        let mut conn = self.nodes[idx].conn.lock();
        let result = (|| -> wire::Result<Response> {
            self.ensure_connected(idx, &mut conn)?;
            Self::drain_pending(&mut conn)?;
            let framed = conn.framed.as_mut().expect("just connected");
            framed.call(request)?.into_result()
        })();
        match result {
            Ok(response) => Some(response),
            Err(_) => {
                conn.mark_dead();
                self.degraded.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Sends one request to every node, *then* collects every response — the
    /// fan-out pipelining used for invalidation batches and maintenance, so
    /// total latency is one round trip rather than one per node.
    fn broadcast(&self, request: &Request) -> Vec<Option<Response>> {
        let mut guards: Vec<MutexGuard<'_, NodeConn<C::Conn>>> =
            self.nodes.iter().map(|n| n.conn.lock()).collect();
        let mut alive: Vec<bool> = Vec::with_capacity(guards.len());
        for (idx, conn) in guards.iter_mut().enumerate() {
            let sent = (|| -> wire::Result<()> {
                self.ensure_connected(idx, conn)?;
                Self::drain_pending(conn)?;
                conn.framed
                    .as_mut()
                    .expect("just connected")
                    .send_request(request)
            })();
            alive.push(sent.is_ok());
        }
        let mut responses = Vec::with_capacity(guards.len());
        for (conn, sent) in guards.iter_mut().zip(alive) {
            if !sent {
                conn.mark_dead();
                self.degraded.fetch_add(1, Ordering::Relaxed);
                responses.push(None);
                continue;
            }
            let received = (|| -> wire::Result<Response> {
                match conn
                    .framed
                    .as_mut()
                    .expect("sent on this conn")
                    .recv_response()?
                {
                    Some(r) => r.into_result(),
                    None => Err(wire::WireError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed awaiting broadcast response",
                    ))),
                }
            })();
            match received {
                Ok(response) => responses.push(Some(response)),
                Err(_) => {
                    conn.mark_dead();
                    self.degraded.fetch_add(1, Ordering::Relaxed);
                    responses.push(None);
                }
            }
        }
        responses
    }
}

impl<C: Connector> std::fmt::Debug for RemoteCluster<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteCluster")
            .field("nodes", &self.nodes.len())
            .field("degraded_ops", &self.degraded_ops())
            .finish()
    }
}

impl<C: Connector> CacheBackend for RemoteCluster<C> {
    fn kind(&self) -> BackendKind {
        BackendKind::Remote
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn lookup(&self, key: &CacheKey, request: &LookupRequest) -> LookupOutcome {
        let idx = self.ring.node_for(key);
        let response = self.exchange(
            idx,
            &Request::VersionedGet {
                key: key.clone(),
                pinset_lo: request.pinset_lo,
                pinset_hi: request.pinset_hi,
                freshness_lo: request.freshness_lo,
            },
        );
        match response {
            Some(Response::Hit {
                value,
                validity,
                stored_validity,
                tags,
            }) => LookupOutcome::Hit {
                value,
                validity,
                stored_validity,
                tags,
            },
            Some(Response::Miss { kind }) => LookupOutcome::Miss(kind.into()),
            // Unexpected frame or transport failure: serve the request from
            // the database instead of stalling it (§4's availability model —
            // a cache node that is down is just a miss).
            Some(_) | None => LookupOutcome::Miss(degraded_miss_kind()),
        }
    }

    fn insert(
        &self,
        key: CacheKey,
        value: Bytes,
        validity: ValidityInterval,
        tags: TagSet,
        now: WallClock,
    ) {
        let idx = self.ring.node_for(&key);
        let mut conn = self.nodes[idx].conn.lock();
        let sent = (|| -> wire::Result<()> {
            self.ensure_connected(idx, &mut conn)?;
            // Keep the pipeline bounded: past the threshold, collect acks
            // before writing more so the two transport buffer directions can
            // never fill up against each other on an insert-heavy burst.
            if conn.pending_puts >= MAX_PENDING_PUTS {
                Self::drain_pending(&mut conn)?;
            }
            let framed = conn.framed.as_mut().expect("just connected");
            framed.send_request(&Request::Put {
                key,
                value,
                validity,
                tags,
                now,
            })
        })();
        match sent {
            Ok(()) => conn.pending_puts += 1,
            Err(_) => {
                conn.mark_dead();
                self.degraded.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn apply_invalidations(&self, batch: &[InvalidationMessage], heartbeat: Timestamp) {
        let events: Vec<InvalidationEvent> = batch
            .iter()
            .map(|m| InvalidationEvent {
                timestamp: m.timestamp,
                tags: m.tags.clone(),
            })
            .collect();
        self.broadcast(&Request::InvalidationBatch { events, heartbeat });
    }

    fn evict_stale(&self, min_useful_ts: Timestamp) {
        self.broadcast(&Request::EvictStale { min_useful_ts });
    }

    fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for response in self.broadcast(&Request::Stats) {
            if let Some(Response::StatsSnapshot(stats)) = response {
                total.merge(&stats.into());
            }
        }
        total
    }

    fn reset_stats(&self) {
        self.broadcast(&Request::ResetStats);
    }
}

/// The miss classification used when a node is unreachable. Capacity is the
/// closest §8.3 class — the cached data exists somewhere but this deployment
/// cannot produce it right now — and it keeps degraded operation from
/// polluting the compulsory/consistency analysis.
fn degraded_miss_kind() -> cache_server::MissKind {
    cache_server::MissKind::Capacity
}
