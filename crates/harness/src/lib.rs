//! # harness — the simulated-cluster experiment harness (§8)
//!
//! The paper's evaluation runs RUBiS on a ten-machine cluster and measures
//! peak throughput as cache size, staleness limit, and consistency mode vary.
//! This crate reproduces those experiments on one machine:
//!
//! * [`SimCluster`] assembles the real components — the `mvdb` database, the
//!   versioned cache nodes, the pincushion, and the TxCache library — on a
//!   shared simulated clock and loads a scaled RUBiS dataset;
//! * the workload runner drives the bidding mix through real transactions,
//!   so hit rates, invalidations, consistency misses, and pin-set behaviour
//!   are all measured, not modelled;
//! * [`CostModel`] converts the measured per-request resource usage into the
//!   peak throughput of the paper's cluster (database-bound unless caching
//!   shifts the bottleneck), which is what Figures 5 and 7 plot.
//!
//! See `DESIGN.md` at the repository root for the experiment-by-experiment
//! index, and the `bench` crate for the binaries that regenerate each figure
//! and table.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod concurrent;
pub mod costmodel;
pub mod experiment;
pub mod history;
pub mod report;

pub use chaos::{
    repro_command, run_chaos_scenario, seed_from_env, ChaosBackend, ChaosOutcome,
    ChaosScenarioConfig, PartitionWindow,
};
pub use concurrent::{run_concurrent, ConcurrentResult, LatencyStats, ThreadReport};
pub use costmodel::{Bottleneck, CostModel, ResourceUsage};
pub use experiment::{run_experiment, DbKind, ExperimentConfig, ExperimentResult, SimCluster};
pub use history::{CheckSummary, CommitRecord, History, ReadRecord, Violation};
pub use report::{
    hit_rate_table, miss_breakdown_table, scalability_table, summary_line, throughput_table,
};
