//! The networked deployment end to end, in one process: two `txcached` TCP
//! servers on loopback, a `RemoteCluster` backend connected to them, and the
//! TxCache library running a cacheable function whose invalidation travels
//! over the wire.
//!
//! ```sh
//! cargo run --release --example remote_cache
//! ```

use std::sync::Arc;

use txcache_repro::cache_server::{NodeConfig, TxcachedServer};
use txcache_repro::mvdb::{
    ColumnType, Database, DbConfig, Predicate, SelectQuery, TableSchema, Value,
};
use txcache_repro::pincushion::Pincushion;
use txcache_repro::txcache::backend::RemoteCluster;
use txcache_repro::txcache::{TxCache, TxCacheConfig};
use txcache_repro::txtypes::{Result, SimClock, Staleness};

fn main() -> Result<()> {
    // 1. Two cache nodes, as separate TCP servers (in production these are
    //    `txcached` processes on other machines).
    let servers: Vec<TxcachedServer> = (0..2)
        .map(|i| {
            TxcachedServer::bind(
                "127.0.0.1:0",
                format!("txcached-{i}"),
                NodeConfig {
                    capacity_bytes: 8 << 20,
                    ..NodeConfig::default()
                },
            )
            .expect("bind loopback txcached")
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    println!("cache nodes: {addrs:?}");

    // 2. The database and the client library, wired to the remote backend.
    let clock = SimClock::new();
    let db = Arc::new(Database::new(DbConfig::default(), clock.clone()));
    db.create_table(
        TableSchema::new("items")
            .column("id", ColumnType::Int)
            .column("price", ColumnType::Int)
            .unique_index("id"),
    )?;
    db.bulk_load("items", vec![vec![Value::Int(1), Value::Int(100)]])?;
    let remote = Arc::new(RemoteCluster::connect(&addrs)?);
    let pincushion = Arc::new(Pincushion::new(Default::default(), clock.clone()));
    let txcache = TxCache::with_backend(
        db,
        remote.clone(),
        pincushion,
        clock.clone(),
        TxCacheConfig::default(),
    );
    println!("backend: {:?}", txcache.config().backend);

    let price = |txcache: &TxCache| -> Result<i64> {
        let mut tx = txcache.begin_ro(Staleness::seconds(30))?;
        let p = tx.cached("price", &1i64, |tx| {
            let q = SelectQuery::table("items").filter(Predicate::eq("id", 1i64));
            Ok(tx.query(&q)?.get(0, "price")?.as_int().unwrap_or(0))
        })?;
        tx.commit()?;
        Ok(p)
    };

    // 3. First read computes and fills the remote cache; the second is a
    //    network cache hit.
    println!("price = {} (miss, computed)", price(&txcache)?);
    println!("price = {} (remote hit)", price(&txcache)?);

    // 4. An update's invalidation batch is pushed to the nodes over TCP;
    //    a fresh read recomputes.
    let mut rw = txcache.begin_rw()?;
    rw.update(
        "items",
        &Predicate::eq("id", 1i64),
        &[("price".to_string(), Value::Int(250))],
    )?;
    rw.commit()?;
    clock.advance_secs(40);
    println!("price = {} (after remote invalidation)", price(&txcache)?);

    let stats = txcache.cache().stats();
    println!(
        "remote cache stats: hits={} misses={} invalidated={} degraded_ops={}",
        stats.hits,
        stats.misses(),
        stats.invalidated_entries,
        remote.degraded_ops()
    );
    assert_eq!(price(&txcache)?, 250);
    Ok(())
}
