//! The write-ahead log file and its group-commit fsync machinery.
//!
//! Appends happen under the database's commit sequencer, so byte order in
//! the file equals commit-timestamp order — the log *is* the serialization
//! order made durable. Durability waits happen *outside* the sequencer:
//! a committer appends, releases every database lock, then blocks in
//! [`WalLog::wait_durable`] until its bytes are known to be on disk.
//!
//! Group commit uses the classic leader/follower pattern: the first waiter
//! to arrive becomes the leader, optionally dallies for `max_wait_us` so
//! trailing commits can pile into the same fsync, syncs once, and wakes
//! everyone whose offset the sync covered. Followers never touch the file.
//! (The vendored `parking_lot` stub has no `Condvar`, so the wait state
//! lives in a `std::sync` mutex/condvar pair.)

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use serde::{Deserialize, Serialize};
use txtypes::{Error, Result};

/// Name of the log file inside a durable database directory.
pub const WAL_FILE: &str = "wal.log";

/// When (and whether) commits wait for an fsync before acknowledging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsyncPolicy {
    /// Every commit waits for its own fsync (a leader still batches
    /// concurrent arrivals into one sync, but never dallies).
    Always,
    /// The fsync leader waits up to `max_wait_us` microseconds before
    /// syncing, trading commit latency for fewer, fatter syncs.
    GroupCommit {
        /// Maximum time the leader dallies to absorb trailing commits.
        max_wait_us: u64,
    },
    /// Commits never wait: the OS flushes when it pleases, and a crash
    /// loses every byte past the last incidental sync. Fast and honest
    /// about it.
    Never,
}

impl Default for FsyncPolicy {
    fn default() -> FsyncPolicy {
        FsyncPolicy::GroupCommit { max_wait_us: 100 }
    }
}

/// Test-only crash injection stages. Armed via
/// [`crate::Database::set_crash_point`]; the next time execution reaches the
/// armed stage the database "loses power": the WAL is truncated to its
/// durable prefix, further writes are refused, and the in-flight operation
/// returns an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Crash after the commit is appended to the log buffer but before any
    /// fsync covers it: the commit errors at the client AND is absent after
    /// recovery.
    PreFsync,
    /// Crash after the fsync but before the client is acknowledged: the
    /// commit errors at the client but IS present after recovery — the
    /// classic "unknown outcome" window.
    PostFsyncPreAck,
    /// Crash after the snapshot temp file is written but before the atomic
    /// rename: the half-written snapshot must be ignored by recovery.
    MidSnapshot,
    /// Crash after the snapshot is renamed into place but before the WAL is
    /// compacted: recovery must tolerate a log whose prefix predates the
    /// snapshot.
    PostSnapshotPreTruncate,
}

#[derive(Debug)]
struct WalFile {
    file: File,
    /// Bytes appended (buffered or synced). The next record's LSN.
    written: u64,
}

#[derive(Debug)]
struct SyncState {
    /// Bytes known to be on disk.
    durable: u64,
    /// A leader is currently (possibly) dallying + syncing.
    leader_active: bool,
    /// The simulated power cable has been pulled; all waits fail fast.
    crashed: bool,
    /// Bumped by compaction, which rewrites the file and invalidates byte
    /// offsets. A waiter whose wait began before a compaction is satisfied
    /// by it: compaction only runs after a snapshot covering those records
    /// is durably installed, and the compacted file is fsynced before the
    /// rename — either way the waiter's record is on disk.
    epoch: u64,
}

/// An append-only, checksummed, group-committed log file.
#[derive(Debug)]
pub struct WalLog {
    path: PathBuf,
    policy: FsyncPolicy,
    file: Mutex<WalFile>,
    sync: Mutex<SyncState>,
    wakeup: Condvar,
    armed_crash: Mutex<Option<CrashPoint>>,
    appends: AtomicU64,
    fsyncs: AtomicU64,
}

fn io_err(what: &str, e: std::io::Error) -> Error {
    Error::Serialization(format!("wal io ({what}): {e}"))
}

/// The error every operation returns once a simulated crash has fired.
pub fn crashed_err() -> Error {
    Error::InvalidState("database crashed (simulated power loss)".into())
}

impl WalLog {
    /// Opens (creating if absent) the log file in `dir` for appending.
    /// `durable_len` is the validated byte length recovery established; the
    /// file is truncated there so a torn tail can never be appended after.
    pub fn open(dir: &Path, policy: FsyncPolicy, durable_len: u64) -> Result<WalLog> {
        let path = dir.join(WAL_FILE);
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open", e))?;
        file.set_len(durable_len)
            .map_err(|e| io_err("truncate", e))?;
        file.sync_all()
            .map_err(|e| io_err("sync after truncate", e))?;
        Ok(WalLog {
            path,
            policy,
            file: Mutex::new(WalFile {
                file,
                written: durable_len,
            }),
            sync: Mutex::new(SyncState {
                durable: durable_len,
                leader_active: false,
                crashed: false,
                epoch: 0,
            }),
            wakeup: Condvar::new(),
            armed_crash: Mutex::new(None),
            appends: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
        })
    }

    /// The fsync policy this log was opened with.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Number of records appended since open.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Number of fsyncs issued since open.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Bytes currently in the log file (appended, not necessarily synced).
    pub fn written_len(&self) -> u64 {
        self.file.lock().expect("wal file lock").written
    }

    /// Arms a crash point. The next operation reaching that stage pulls the
    /// plug. Test-only by convention (mirrors the existing
    /// `*_for_fault_injection` hooks).
    pub fn arm_crash_point(&self, point: CrashPoint) {
        *self.armed_crash.lock().expect("crash point lock") = Some(point);
    }

    /// Takes the armed crash point if it matches `at`.
    pub fn take_crash_point(&self, at: CrashPoint) -> bool {
        let mut armed = self.armed_crash.lock().expect("crash point lock");
        if *armed == Some(at) {
            *armed = None;
            true
        } else {
            false
        }
    }

    /// True once a simulated crash has fired.
    pub fn is_crashed(&self) -> bool {
        self.sync.lock().expect("sync lock").crashed
    }

    /// Appends an encoded record. MUST be called under the commit sequencer
    /// so file order equals commit order. Returns the log sequence number —
    /// the byte offset one past this record — to pass to
    /// [`WalLog::wait_durable`] after the sequencer is released.
    pub fn append(&self, frame: &[u8]) -> Result<u64> {
        let mut wal = self.file.lock().expect("wal file lock");
        if self.is_crashed() {
            return Err(crashed_err());
        }
        wal.file.write_all(frame).map_err(|e| io_err("append", e))?;
        wal.written += frame.len() as u64;
        self.appends.fetch_add(1, Ordering::Relaxed);
        Ok(wal.written)
    }

    /// Blocks until every byte up to `lsn` is on disk (per the policy).
    /// MUST be called with no database locks held.
    pub fn wait_durable(&self, lsn: u64) -> Result<()> {
        if matches!(self.policy, FsyncPolicy::Never) {
            return Ok(());
        }
        let entry_epoch = self.sync.lock().expect("sync lock").epoch;
        loop {
            let mut sync = self.sync.lock().expect("sync lock");
            if sync.crashed {
                return Err(crashed_err());
            }
            // A compaction rewrote the file: byte offsets from before it are
            // meaningless, but the record is durable (see `SyncState::epoch`).
            if sync.epoch != entry_epoch || sync.durable >= lsn {
                return Ok(());
            }
            if sync.leader_active {
                // Follower: wait for the leader's sync (or a crash) and
                // re-check.
                let (guard, _) = self
                    .wakeup
                    .wait_timeout(sync, Duration::from_millis(50))
                    .expect("sync wait");
                drop(guard);
                continue;
            }
            sync.leader_active = true;
            let lead_epoch = sync.epoch;
            drop(sync);

            let result = self.lead_sync();

            let mut sync = self.sync.lock().expect("sync lock");
            sync.leader_active = false;
            match result {
                // The covered offset is only meaningful if no compaction
                // swapped the file out while the leader was syncing.
                Ok(durable) if sync.epoch == lead_epoch => {
                    sync.durable = sync.durable.max(durable);
                }
                Ok(_) => {}
                Err(e) => {
                    drop(sync);
                    self.wakeup.notify_all();
                    return Err(e);
                }
            }
            drop(sync);
            self.wakeup.notify_all();
        }
    }

    /// The leader's path: optionally dally so trailing commits join this
    /// sync, check for injected crashes, fsync once, and report the offset
    /// the sync covered.
    fn lead_sync(&self) -> Result<u64> {
        if let FsyncPolicy::GroupCommit { max_wait_us } = self.policy {
            if max_wait_us > 0 {
                std::thread::sleep(Duration::from_micros(max_wait_us));
            }
        }
        if self.take_crash_point(CrashPoint::PreFsync) {
            self.crash();
            return Err(crashed_err());
        }
        let wal = self.file.lock().expect("wal file lock");
        if self.is_crashed() {
            return Err(crashed_err());
        }
        let covered = wal.written;
        wal.file.sync_data().map_err(|e| io_err("fsync", e))?;
        drop(wal);
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        if self.take_crash_point(CrashPoint::PostFsyncPreAck) {
            // The bytes ARE durable; the crash happens before the client
            // hears about it. Record durability first so simulate_crash
            // keeps these bytes.
            let mut sync = self.sync.lock().expect("sync lock");
            sync.durable = sync.durable.max(covered);
            drop(sync);
            self.crash();
            return Err(crashed_err());
        }
        Ok(covered)
    }

    /// Pulls the plug: truncates the file to its durable prefix (bytes that
    /// were never fsynced vanish, exactly as they would on power loss),
    /// marks the log crashed, and wakes every waiter with an error.
    pub fn crash(&self) {
        let mut sync = self.sync.lock().expect("sync lock");
        if sync.crashed {
            return;
        }
        sync.crashed = true;
        let durable = sync.durable;
        drop(sync);
        if let Ok(wal) = self.file.lock() {
            // Keep exactly the prefix that was covered by an fsync; under
            // `Never` that is typically nothing — honest loss semantics.
            // Best-effort: the simulated machine is dying anyway.
            let _ = wal.file.set_len(durable);
            let _ = wal.file.sync_data();
        }
        self.wakeup.notify_all();
    }

    /// Records that compaction replaced the file: the whole new file is
    /// durable and old byte offsets are void (waiters from before the swap
    /// are released — their records are covered by the snapshot or the
    /// fsynced compacted file).
    fn note_compacted(&self, len: u64) {
        let mut sync = self.sync.lock().expect("sync lock");
        sync.durable = len;
        sync.epoch += 1;
        drop(sync);
        self.wakeup.notify_all();
    }

    /// Atomically replaces the log's contents with `frames` (already-framed
    /// records), used by snapshot compaction: write a temp file, fsync,
    /// rename over the live log, reopen. Called under the commit sequencer
    /// so no append can interleave.
    pub fn compact_to(&self, frames: &[u8]) -> Result<()> {
        let tmp = self.path.with_extension("log.tmp");
        {
            let mut f = File::create(&tmp).map_err(|e| io_err("compact create", e))?;
            f.write_all(frames)
                .map_err(|e| io_err("compact write", e))?;
            f.sync_all().map_err(|e| io_err("compact sync", e))?;
        }
        let mut wal = self.file.lock().expect("wal file lock");
        if self.is_crashed() {
            let _ = std::fs::remove_file(&tmp);
            return Err(crashed_err());
        }
        std::fs::rename(&tmp, &self.path).map_err(|e| io_err("compact rename", e))?;
        sync_dir(self.path.parent().unwrap_or_else(|| Path::new(".")))?;
        wal.file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| io_err("compact reopen", e))?;
        wal.written = frames.len() as u64;
        drop(wal);
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.note_compacted(frames.len() as u64);
        Ok(())
    }
}

/// Fsyncs a directory so a rename inside it survives power loss.
pub fn sync_dir(dir: &Path) -> Result<()> {
    let f = File::open(dir).map_err(|e| io_err("open dir", e))?;
    f.sync_all().map_err(|e| io_err("sync dir", e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::codec::{encode_record, scan_wal, WalRecord};
    use txtypes::Timestamp;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mvdb-wal-log-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_then_wait_makes_bytes_durable() {
        let dir = temp_dir("durable");
        let log = WalLog::open(&dir, FsyncPolicy::Always, 0).unwrap();
        let frame = encode_record(&WalRecord::VacuumWatermark(Timestamp(1)));
        let lsn = log.append(&frame).unwrap();
        log.wait_durable(lsn).unwrap();
        assert_eq!(log.fsyncs(), 1);
        let bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        assert_eq!(scan_wal(&bytes).unwrap().records.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_truncates_unsynced_tail() {
        let dir = temp_dir("crash");
        let log = WalLog::open(&dir, FsyncPolicy::Always, 0).unwrap();
        let frame = encode_record(&WalRecord::VacuumWatermark(Timestamp(1)));
        let lsn = log.append(&frame).unwrap();
        log.wait_durable(lsn).unwrap();
        // Second record appended but never synced.
        log.append(&encode_record(&WalRecord::VacuumWatermark(Timestamp(2))))
            .unwrap();
        log.crash();
        let bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let scan = scan_wal(&bytes).unwrap();
        assert_eq!(scan.records, vec![WalRecord::VacuumWatermark(Timestamp(1))]);
        assert!(log.append(&frame).is_err(), "appends refused post-crash");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn never_policy_skips_fsync() {
        let dir = temp_dir("never");
        let log = WalLog::open(&dir, FsyncPolicy::Never, 0).unwrap();
        let frame = encode_record(&WalRecord::VacuumWatermark(Timestamp(1)));
        let lsn = log.append(&frame).unwrap();
        log.wait_durable(lsn).unwrap();
        assert_eq!(log.fsyncs(), 0);
        // A crash wipes the whole log: nothing was ever promised.
        log.crash();
        let bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        assert!(bytes.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_batches_concurrent_commits() {
        let dir = temp_dir("group");
        let log = std::sync::Arc::new(
            WalLog::open(&dir, FsyncPolicy::GroupCommit { max_wait_us: 2_000 }, 0).unwrap(),
        );
        let frame = encode_record(&WalRecord::VacuumWatermark(Timestamp(1)));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let log = log.clone();
            let frame = frame.clone();
            handles.push(std::thread::spawn(move || {
                let lsn = log.append(&frame).unwrap();
                log.wait_durable(lsn).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.appends(), 8);
        assert!(
            log.fsyncs() < 8,
            "expected batching: {} fsyncs for 8 appends",
            log.fsyncs()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
