//! The RUBiS auction site on TxCache: generate a small dataset, drive the
//! bidding workload, and print cache/database statistics.
//!
//! Run with `cargo run --release --example auction_site`.

use txcache_repro::harness::{run_experiment, summary_line, DbKind, ExperimentConfig};
use txcache_repro::txcache::CacheMode;

fn main() {
    let base = ExperimentConfig {
        scale_factor: 0.005,
        requests: 1_500,
        warmup_requests: 800,
        ..ExperimentConfig::new(DbKind::InMemory)
    };

    println!("Running the RUBiS bidding mix on a small in-memory dataset…\n");
    for (label, mode) in [
        ("TxCache", CacheMode::Full),
        ("No consistency", CacheMode::NoConsistency),
        ("No caching", CacheMode::Disabled),
    ] {
        let result = run_experiment(&ExperimentConfig { mode, ..base }).expect("experiment");
        println!("{}", summary_line(label, &result));
    }

    println!(
        "\nThe TxCache and no-consistency rows should be close together, both well above\n\
         the no-caching baseline — the paper's headline result (§8.1, §8.3)."
    );
}
