//! A cluster of cache nodes behind a consistent-hash ring.
//!
//! [`CacheCluster`] is what the TxCache library talks to: it routes lookups
//! and inserts to the responsible node, fans invalidation messages out to
//! every node (standing in for the paper's reliable multicast), and
//! aggregates statistics. Nodes are internally sharded ([`CacheNode`]), so
//! the cluster holds them directly — no wrapper locks: concurrent
//! application servers contend only when they touch the same *shard* of the
//! same node, and lookups on distinct keys proceed under shared or disjoint
//! shard locks.

use bytes::Bytes;
use txtypes::{CacheKey, TagSet, Timestamp, ValidityInterval, WallClock};

use crate::entry::{LookupOutcome, LookupRequest};
use crate::node::{CacheNode, NodeConfig};
use crate::ring::ConsistentHashRing;
use crate::stats::{CacheShardStats, CacheStats};

/// A set of cache nodes plus the ring that places keys on them.
pub struct CacheCluster {
    nodes: Vec<CacheNode>,
    ring: ConsistentHashRing,
}

impl CacheCluster {
    /// Creates a cluster of `node_count` nodes, each with `capacity_bytes` of
    /// memory. The paper's experiments vary the *total* cache size; use
    /// [`CacheCluster::with_total_capacity`] for that.
    #[must_use]
    pub fn new(node_count: usize, capacity_bytes: usize) -> CacheCluster {
        CacheCluster::with_config(
            node_count,
            NodeConfig {
                capacity_bytes,
                ..NodeConfig::default()
            },
        )
    }

    /// Creates a cluster of `node_count` nodes sharing one node
    /// configuration (capacity, shard count, history limit).
    #[must_use]
    pub fn with_config(node_count: usize, config: NodeConfig) -> CacheCluster {
        let node_count = node_count.max(1);
        let names: Vec<String> = (0..node_count).map(|i| format!("cache-{i}")).collect();
        let nodes = names
            .iter()
            .map(|n| CacheNode::new(n.clone(), config))
            .collect();
        CacheCluster {
            nodes,
            ring: ConsistentHashRing::with_nodes(names),
        }
    }

    /// Creates a cluster whose per-node capacity divides `total_bytes`
    /// evenly.
    #[must_use]
    pub fn with_total_capacity(node_count: usize, total_bytes: usize) -> CacheCluster {
        let node_count = node_count.max(1);
        CacheCluster::new(node_count, total_bytes / node_count)
    }

    /// Number of nodes in the cluster.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Direct access to a node (diagnostics and tests).
    ///
    /// # Panics
    /// If `idx >= self.node_count()`.
    #[must_use]
    pub fn node(&self, idx: usize) -> &CacheNode {
        &self.nodes[idx]
    }

    /// The node responsible for `key` on the consistent-hash ring.
    #[must_use]
    pub fn node_for(&self, key: &CacheKey) -> &CacheNode {
        &self.nodes[self.ring.node_for(key)]
    }

    /// Looks up a key on the responsible node.
    pub fn lookup(&self, key: &CacheKey, request: &LookupRequest) -> LookupOutcome {
        self.node_for(key).lookup(key, request)
    }

    /// Inserts a value on the responsible node.
    pub fn insert(
        &self,
        key: CacheKey,
        value: Bytes,
        validity: ValidityInterval,
        tags: TagSet,
        now: WallClock,
    ) {
        self.node_for(&key).insert(key, value, validity, tags, now);
    }

    /// Delivers one invalidation-stream message to every node (the multicast
    /// of §4.2). Messages must be applied in commit order.
    pub fn apply_invalidation(&self, timestamp: Timestamp, tags: &TagSet) {
        for node in &self.nodes {
            node.apply_invalidation(timestamp, tags);
        }
    }

    /// Propagates a timestamp heartbeat to every node: all invalidations up
    /// to `ts` have been delivered, so still-valid entries may be served for
    /// lookups up to `ts`.
    pub fn note_timestamp(&self, ts: Timestamp) {
        for node in &self.nodes {
            node.note_timestamp(ts);
        }
    }

    /// Eagerly evicts entries that ended before `min_useful_ts` on every
    /// node.
    pub fn evict_stale(&self, min_useful_ts: Timestamp) {
        for node in &self.nodes {
            node.evict_stale(min_useful_ts);
        }
    }

    /// Aggregated statistics across all nodes.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for node in &self.nodes {
            total.merge(&node.stats());
        }
        total
    }

    /// Per-shard lock and eviction counters of every node, keyed by node
    /// name (the cluster-level mirror of [`CacheNode::shard_stats`]).
    #[must_use]
    pub fn shard_stats(&self) -> Vec<(String, Vec<CacheShardStats>)> {
        self.nodes
            .iter()
            .map(|n| (n.name().to_string(), n.shard_stats()))
            .collect()
    }

    /// Resets hit/miss counters on every node.
    pub fn reset_stats(&self) {
        for node in &self.nodes {
            node.reset_stats();
        }
    }

    /// Total bytes of cached data across the cluster.
    #[must_use]
    pub fn used_bytes(&self) -> usize {
        self.nodes.iter().map(CacheNode::used_bytes).sum()
    }

    /// Total number of entries across the cluster.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.nodes.iter().map(CacheNode::entry_count).sum()
    }
}

impl std::fmt::Debug for CacheCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheCluster")
            .field("nodes", &self.node_count())
            .field("entries", &self.entry_count())
            .field("used_bytes", &self.used_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtypes::InvalidationTag;

    fn key(i: u64) -> CacheKey {
        CacheKey::new("f", format!("[{i}]"))
    }

    fn cluster() -> CacheCluster {
        CacheCluster::new(3, 1 << 20)
    }

    #[test]
    fn insert_and_lookup_route_to_same_node() {
        let c = cluster();
        for i in 0..50 {
            c.insert(
                key(i),
                Bytes::from(vec![i as u8; 8]),
                ValidityInterval::unbounded(Timestamp(1)),
                TagSet::new(),
                WallClock::ZERO,
            );
        }
        for i in 0..50 {
            assert!(c.lookup(&key(i), &LookupRequest::at(Timestamp(1))).is_hit());
        }
        let stats = c.stats();
        assert_eq!(stats.hits, 50);
        assert_eq!(stats.insertions, 50);
        assert!(c.used_bytes() > 0);
        assert_eq!(c.entry_count(), 50);
        assert_eq!(c.node_count(), 3);
    }

    #[test]
    fn invalidations_reach_every_node() {
        let c = cluster();
        for i in 0..30 {
            c.insert(
                key(i),
                Bytes::from_static(b"v"),
                ValidityInterval::unbounded(Timestamp(1)),
                [InvalidationTag::keyed("items", format!("id={i}"))]
                    .into_iter()
                    .collect(),
                WallClock::ZERO,
            );
        }
        // Invalidate a single item: exactly one entry somewhere is affected.
        c.apply_invalidation(
            Timestamp(10),
            &[InvalidationTag::keyed("items", "id=7")]
                .into_iter()
                .collect(),
        );
        assert_eq!(c.stats().invalidated_entries, 1);
        // Every node processed the message.
        assert_eq!(c.stats().invalidation_messages, 3);
        // The invalidated key now misses at ts 10.
        assert!(!c
            .lookup(&key(7), &LookupRequest::range(Timestamp(10), Timestamp(10)))
            .is_hit());
    }

    #[test]
    fn stale_eviction_and_reset() {
        let c = cluster();
        c.insert(
            key(1),
            Bytes::from_static(b"old"),
            ValidityInterval::bounded(Timestamp(1), Timestamp(5)).unwrap(),
            TagSet::new(),
            WallClock::ZERO,
        );
        c.evict_stale(Timestamp(10));
        assert_eq!(c.entry_count(), 0);
        c.reset_stats();
        assert_eq!(c.stats().lookups(), 0);
    }

    #[test]
    fn with_total_capacity_divides_evenly() {
        let c = CacheCluster::with_total_capacity(4, 4 << 20);
        assert_eq!(c.node_count(), 4);
        let debug = format!("{c:?}");
        assert!(debug.contains("CacheCluster"));
    }

    #[test]
    fn cluster_exposes_nodes_and_their_shards() {
        let c = cluster();
        c.insert(
            key(1),
            Bytes::from_static(b"v"),
            ValidityInterval::unbounded(Timestamp(1)),
            TagSet::new(),
            WallClock::ZERO,
        );
        assert_eq!(c.node_for(&key(1)).entry_count(), 1);
        assert!(std::ptr::eq(
            c.node_for(&key(1)),
            (0..c.node_count())
                .map(|i| c.node(i))
                .find(|n| n.entry_count() == 1)
                .unwrap()
        ));
        let shard_stats = c.shard_stats();
        assert_eq!(shard_stats.len(), 3);
        let writes: u64 = shard_stats
            .iter()
            .flat_map(|(_, shards)| shards.iter().map(|s| s.write_locks))
            .sum();
        assert_eq!(writes, 1);
    }
}
