//! # wire — the txcached network protocol (§4, §7)
//!
//! The paper's cache is a distributed tier: application servers reach cache
//! nodes over a memcached-like binary protocol extended with *versioned*
//! lookups and an *invalidation stream*. This crate defines that protocol for
//! the reproduction: a compact, length-prefixed binary encoding of every
//! message exchanged between the TxCache client library and a `txcached`
//! cache node, independent of any particular transport.
//!
//! ## Framing (protocol v6)
//!
//! Every message travels in one frame:
//!
//! ```text
//! +-----------------+--------------+---------+--------+----------+
//! | body length u32 | sequence u64 | version | opcode | payload  |
//! +-----------------+--------------+---------+--------+----------+
//! ```
//!
//! The 4-byte little-endian length counts the body (sequence number,
//! version byte, opcode byte, and payload). The 8-byte sequence number —
//! introduced in protocol version 2 — is stamped on every request by the
//! client and echoed verbatim in the matching response. Since protocol
//! version 4 it is a true *correlation id*: many requests may be in flight
//! on one connection and the server may answer them in any order, with
//! [`FramedStream`] pairing each response to its request through a
//! pending-request table. A response whose id matches no pending request —
//! a duplicated, reordered, or invented frame — is detected as
//! [`WireError::Desync`] before a value can be attributed to the wrong
//! request; only the awaited request degrades, the connection stays
//! usable. Version 4 also added the scatter-gather [`Request::MultiGet`] /
//! [`Request::MultiPut`] opcodes, so a transaction's read or write set
//! reaches each cache node in one round trip, and a zero-copy receive path
//! ([`codec::Reader::new_shared`]) that hands out [`bytes::Bytes`] slices
//! of the received frame instead of copying every value. Frames larger
//! than [`MAX_FRAME_BYTES`] are rejected before allocation, so a corrupt
//! peer cannot make a node allocate gigabytes. Version 5 added ring
//! membership awareness: a [`Request::RingEpoch`] announcement (answered by
//! [`Response::EpochAck`]) plus an epoch field on `MultiGet`/`MultiPut`, so
//! a client routing on a stale ring view gets a typed
//! [`Response::WrongEpoch`] redirect instead of silent misses for keys that
//! moved. Version 6 added the observability pair: [`Request::Metrics`]
//! fetches the node's full metrics registry as a
//! [`Response::MetricsSnapshot`] — named counters, gauges, and sparse log2
//! latency histogram buckets ([`MetricsReport`]), the wire form of the
//! `obs` crate's registry. The version byte is checked
//! on decode; a mismatch produces [`WireError::Version`], which servers
//! answer with an explicit [`Response::Error`] frame carrying
//! [`ErrorCode::Version`].
//!
//! ## Transports
//!
//! The framing layer runs over anything implementing [`Transport`]
//! (with [`Listener`] and [`Connector`] covering the accept and dial
//! sides): real TCP in production, or the deterministic in-process
//! [`sim::SimNet`] whose pipes inject seeded frame drops, duplicates,
//! reorderings, connection resets, and scripted partitions for the chaos
//! test suite (`tests/chaos.rs` at the workspace root).
//!
//! ## Messages
//!
//! Requests ([`Request`]) mirror the operations of the in-process cache:
//!
//! * [`Request::VersionedGet`] — a key plus the transaction's acceptable
//!   timestamp interval (pin-set bounds and staleness floor, §4.1);
//! * [`Request::Put`] — a computed value with its validity interval and
//!   invalidation tags (§6.1);
//! * [`Request::InvalidationBatch`] — an ordered slice of the database's
//!   invalidation stream plus a heartbeat timestamp (§4.2);
//! * [`Request::EvictStale`], [`Request::Stats`], [`Request::ResetStats`],
//!   [`Request::Ping`] — maintenance and monitoring.
//!
//! Responses ([`Response`]) carry hit/miss outcomes (with the stored and
//! effective validity intervals a hit needs for pin-set narrowing), stats
//! snapshots, acks, and typed error frames.
//!
//! The encoding is deterministic and non-self-describing, in the same spirit
//! as the value codec in the `txcache` crate: both ends know the protocol
//! version and the expected frame type, and every round trip is covered by
//! property tests (`tests/wire_roundtrip.rs` at the workspace root).

#![forbid(unsafe_code)]

pub mod codec;
pub mod frame;
pub mod msg;
pub mod sim;
pub mod transport;

pub use codec::{Reader, Writer};
pub use frame::{
    read_frame, split_seq, write_frame, FramedStream, MAX_FRAME_BYTES, PROTOCOL_VERSION, SEQ_BYTES,
};
pub use msg::{
    ErrorCode, GetResult, HistogramReport, InvalidationEvent, MetricsReport, MissCode, NodeStats,
    PutEntry, Request, Response, ShardStats,
};
pub use sim::{ChaosConfig, FaultAction, FaultCounts, SimConn, SimListener, SimNet, SplitMix64};
pub use transport::{Closer, Connector, Listener, TcpConnector, Transport};

use std::fmt;
use std::io;

/// Errors produced while encoding, decoding, or transporting frames.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed (includes timeouts).
    Io(io::Error),
    /// The frame ended before the payload was complete.
    Truncated,
    /// The frame had bytes left over after the payload was decoded.
    TrailingBytes(usize),
    /// The peer speaks a different protocol version.
    Version {
        /// The version byte received.
        got: u8,
    },
    /// The opcode byte does not name a known message.
    UnknownOpcode(u8),
    /// A declared length exceeds [`MAX_FRAME_BYTES`].
    TooLarge(usize),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A tag byte (option marker, miss kind, error code) was out of range.
    BadTag(u8),
    /// A response's echoed correlation id matched no pending request — the
    /// frame was duplicated, reordered, or invented upstream. The stream
    /// is still frame-aligned: the request being awaited is abandoned, but
    /// the connection and its other in-flight requests remain usable.
    Desync {
        /// The correlation id the response carried.
        got: u64,
        /// The oldest outstanding correlation id at the time (`None` if no
        /// request was pending at all).
        want: Option<u64>,
    },
    /// The peer answered with an explicit error frame.
    Remote {
        /// The machine-readable error category.
        code: ErrorCode,
        /// The peer's human-readable message.
        message: String,
    },
}

impl WireError {
    /// Returns `true` if the error came from the transport (connection reset,
    /// timeout) rather than from malformed data; transport errors are the
    /// ones a client may heal by reconnecting.
    #[must_use]
    pub fn is_transport(&self) -> bool {
        matches!(self, WireError::Io(_))
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Truncated => f.write_str("frame truncated"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            WireError::Version { got } => {
                write!(
                    f,
                    "protocol version mismatch: got {got}, want {PROTOCOL_VERSION}"
                )
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds limit of {MAX_FRAME_BYTES}")
            }
            WireError::BadUtf8 => f.write_str("invalid UTF-8 in string field"),
            WireError::BadTag(t) => write!(f, "invalid tag byte {t:#04x}"),
            WireError::Desync { got, want } => match want {
                Some(want) => write!(f, "response sequence desync: got {got}, expected {want}"),
                None => write!(f, "unsolicited response with sequence {got}"),
            },
            WireError::Remote { code, message } => {
                write!(f, "remote error ({code:?}): {message}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// A convenience alias for wire-level results.
pub type Result<T> = std::result::Result<T, WireError>;
