//! Consistent hashing (§4).
//!
//! Cached data is partitioned across cache nodes with consistent hashing so
//! that adding or removing a node relocates only a small fraction of the
//! keys. Unlike a DHT, every client knows the full node list and can map a
//! key to its node directly.

use std::collections::BTreeMap;

use txtypes::key::stable_hash_of;
use txtypes::CacheKey;

/// A consistent-hash ring over named nodes.
#[derive(Debug, Clone)]
pub struct ConsistentHashRing {
    /// hash point → node index.
    points: BTreeMap<u64, usize>,
    node_names: Vec<String>,
    replicas: usize,
}

impl ConsistentHashRing {
    /// Default number of virtual points per node.
    pub const DEFAULT_REPLICAS: usize = 64;

    /// Builds a ring with the given node names and virtual replica count.
    #[must_use]
    pub fn new(node_names: Vec<String>, replicas: usize) -> ConsistentHashRing {
        let replicas = replicas.max(1);
        let mut points = BTreeMap::new();
        for (idx, name) in node_names.iter().enumerate() {
            for r in 0..replicas {
                let point = stable_hash_of(&(name.as_str(), r));
                points.insert(point, idx);
            }
        }
        ConsistentHashRing {
            points,
            node_names,
            replicas,
        }
    }

    /// Builds a ring with the default replica count.
    #[must_use]
    pub fn with_nodes(node_names: Vec<String>) -> ConsistentHashRing {
        ConsistentHashRing::new(node_names, Self::DEFAULT_REPLICAS)
    }

    /// Number of nodes on the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.node_names.len()
    }

    /// Returns `true` if the ring has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.node_names.is_empty()
    }

    /// The node names, in construction order (indexes returned by
    /// [`node_for`](Self::node_for) refer to this list).
    #[must_use]
    pub fn node_names(&self) -> &[String] {
        &self.node_names
    }

    /// The node index responsible for `key`.
    ///
    /// # Panics
    /// Panics if the ring is empty; construct rings with at least one node.
    #[must_use]
    pub fn node_for(&self, key: &CacheKey) -> usize {
        assert!(!self.is_empty(), "consistent-hash ring has no nodes");
        let h = key.stable_hash();
        match self.points.range(h..).next() {
            Some((_, idx)) => *idx,
            None => *self
                .points
                .values()
                .next()
                .expect("non-empty ring has points"),
        }
    }

    /// Returns a new ring with an additional node.
    #[must_use]
    pub fn with_added_node(&self, name: impl Into<String>) -> ConsistentHashRing {
        let mut names = self.node_names.clone();
        names.push(name.into());
        ConsistentHashRing::new(names, self.replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<CacheKey> {
        (0..n)
            .map(|i| CacheKey::new("f", format!("[{i}]")))
            .collect()
    }

    #[test]
    fn placement_is_deterministic() {
        let ring = ConsistentHashRing::with_nodes(vec!["a".into(), "b".into(), "c".into()]);
        for k in keys(50) {
            assert_eq!(ring.node_for(&k), ring.node_for(&k));
        }
        assert_eq!(ring.len(), 3);
        assert!(!ring.is_empty());
        assert_eq!(ring.node_names().len(), 3);
    }

    #[test]
    fn keys_spread_across_nodes() {
        let ring = ConsistentHashRing::with_nodes(vec!["a".into(), "b".into(), "c".into()]);
        let mut counts = [0usize; 3];
        for k in keys(3000) {
            counts[ring.node_for(&k)] += 1;
        }
        for c in counts {
            assert!(
                c > 300,
                "each node should receive a reasonable share, got {c}"
            );
        }
    }

    #[test]
    fn adding_a_node_moves_only_a_fraction_of_keys() {
        let ring3 = ConsistentHashRing::with_nodes(vec!["a".into(), "b".into(), "c".into()]);
        let ring4 = ring3.with_added_node("d");
        let ks = keys(4000);
        let moved = ks
            .iter()
            .filter(|k| {
                let before = ring3.node_names()[ring3.node_for(k)].clone();
                let after = ring4.node_names()[ring4.node_for(k)].clone();
                before != after
            })
            .count();
        // Ideally ~1/4 of keys move; allow generous slack but far below 1/2.
        assert!(
            moved < ks.len() / 2,
            "only a fraction of keys should move, moved {moved}/{}",
            ks.len()
        );
        assert!(moved > 0);
    }

    #[test]
    fn single_node_ring_maps_everything_to_it() {
        let ring = ConsistentHashRing::with_nodes(vec!["only".into()]);
        for k in keys(20) {
            assert_eq!(ring.node_for(&k), 0);
        }
    }

    #[test]
    #[should_panic(expected = "no nodes")]
    fn empty_ring_panics_on_lookup() {
        let ring = ConsistentHashRing::with_nodes(vec![]);
        let _ = ring.node_for(&CacheKey::new("f", "[]"));
    }
}
