//! Database statistics counters.
//!
//! [`DbStats`] is the serializable snapshot handed to callers;
//! [`AtomicDbStats`] is the engine's live counter bank, updated with relaxed
//! atomics so that statistics never force otherwise-independent operations to
//! share a lock. [`ShardStats`] reports per-table lock activity — how often
//! each table shard's reader/writer lock was taken and how often the
//! acquisition had to wait — so lock contention regressions show up in
//! benchmark output instead of only in flat scaling curves.

use serde::{Deserialize, Serialize};

// The striped-counter primitive moved to the shared `obs` crate; re-exported
// here so existing `mvdb::stats::StripedCounter` users keep compiling.
pub use obs::StripedCounter;

/// Counters accumulated over the lifetime of a [`crate::Database`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DbStats {
    /// SELECT queries executed.
    pub queries: u64,
    /// Rows inserted.
    pub inserts: u64,
    /// Rows updated.
    pub updates: u64,
    /// Rows deleted.
    pub deletes: u64,
    /// Transactions committed (read-only and read/write).
    pub commits: u64,
    /// Read/write commits that published invalidations.
    pub invalidating_commits: u64,
    /// Transactions aborted by the application.
    pub aborts: u64,
    /// Write conflicts detected (first-updater-wins failures).
    pub serialization_failures: u64,
    /// Snapshots pinned.
    pub pins: u64,
    /// Snapshots unpinned.
    pub unpins: u64,
    /// Tuple versions reclaimed by vacuum.
    pub vacuumed_versions: u64,
    /// Records appended to the write-ahead log (zero for in-memory
    /// databases).
    pub wal_appends: u64,
    /// Fsyncs issued by the write-ahead log; under group commit this is
    /// (often much) smaller than `wal_appends`.
    pub wal_fsyncs: u64,
    /// Snapshot files written by `snapshot_now` or the background
    /// snapshotter.
    pub snapshots_written: u64,
}

impl DbStats {
    /// Total write statements executed.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.inserts + self.updates + self.deletes
    }
}

/// Lock-free live counters behind [`DbStats`]. All increments are relaxed
/// and striped: the counters are monotonic telemetry, not synchronization.
#[derive(Debug, Default)]
pub struct AtomicDbStats {
    /// SELECT queries executed.
    pub queries: StripedCounter,
    /// Rows inserted.
    pub inserts: StripedCounter,
    /// Rows updated.
    pub updates: StripedCounter,
    /// Rows deleted.
    pub deletes: StripedCounter,
    /// Transactions committed (read-only and read/write).
    pub commits: StripedCounter,
    /// Read/write commits that published invalidations.
    pub invalidating_commits: StripedCounter,
    /// Transactions aborted by the application.
    pub aborts: StripedCounter,
    /// Write conflicts detected (first-updater-wins failures).
    pub serialization_failures: StripedCounter,
    /// Snapshots pinned.
    pub pins: StripedCounter,
    /// Snapshots unpinned.
    pub unpins: StripedCounter,
    /// Tuple versions reclaimed by vacuum.
    pub vacuumed_versions: StripedCounter,
}

impl AtomicDbStats {
    /// Takes a consistent-enough snapshot of the counters. Individual loads
    /// are relaxed; cross-counter skew is acceptable for telemetry.
    #[must_use]
    pub fn snapshot(&self) -> DbStats {
        DbStats {
            queries: self.queries.get(),
            inserts: self.inserts.get(),
            updates: self.updates.get(),
            deletes: self.deletes.get(),
            commits: self.commits.get(),
            invalidating_commits: self.invalidating_commits.get(),
            aborts: self.aborts.get(),
            serialization_failures: self.serialization_failures.get(),
            pins: self.pins.get(),
            unpins: self.unpins.get(),
            vacuumed_versions: self.vacuumed_versions.get(),
            // Durability counters live on the WAL itself;
            // `Database::stats` fills them in when one is attached.
            wal_appends: 0,
            wal_fsyncs: 0,
            snapshots_written: 0,
        }
    }
}

/// Per-table-shard lock activity, snapshotted by
/// [`crate::Database::shard_stats`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// The table this shard stores.
    pub table: String,
    /// Shared (reader) lock acquisitions.
    pub read_locks: u64,
    /// Exclusive (writer) lock acquisitions.
    pub write_locks: u64,
    /// Reader acquisitions that could not be granted immediately.
    pub read_waits: u64,
    /// Writer acquisitions that could not be granted immediately.
    pub write_waits: u64,
}

impl ShardStats {
    /// Total lock acquisitions on this shard.
    #[must_use]
    pub fn acquisitions(&self) -> u64 {
        self.read_locks + self.write_locks
    }

    /// Fraction of acquisitions that had to wait, in [0, 1].
    #[must_use]
    pub fn contention_rate(&self) -> f64 {
        let total = self.acquisitions();
        if total == 0 {
            0.0
        } else {
            (self.read_waits + self.write_waits) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_stats_snapshot_reflects_bumps() {
        let live = AtomicDbStats::default();
        live.queries.bump();
        live.queries.bump();
        live.updates.add(7);
        let snap = live.snapshot();
        assert_eq!(snap.queries, 2);
        assert_eq!(snap.updates, 7);
        assert_eq!(snap.commits, 0);
    }

    #[test]
    fn striped_counter_sums_across_threads() {
        let c = StripedCounter::default();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.bump();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn shard_stats_contention_rate() {
        let s = ShardStats {
            table: "users".into(),
            read_locks: 8,
            write_locks: 2,
            read_waits: 1,
            write_waits: 1,
        };
        assert_eq!(s.acquisitions(), 10);
        assert!((s.contention_rate() - 0.2).abs() < 1e-12);
        let idle = ShardStats {
            table: "idle".into(),
            read_locks: 0,
            write_locks: 0,
            read_waits: 0,
            write_waits: 0,
        };
        assert_eq!(idle.contention_rate(), 0.0);
    }

    #[test]
    fn writes_sums_components() {
        let s = DbStats {
            inserts: 1,
            updates: 2,
            deletes: 3,
            ..DbStats::default()
        };
        assert_eq!(s.writes(), 6);
        assert_eq!(DbStats::default().writes(), 0);
    }
}
