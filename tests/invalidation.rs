//! End-to-end tests of automatic invalidation (§4.2, §5.3) and of the RUBiS
//! application paths, including the §2.1 "edit count" class of bug that
//! explicit invalidation schemes get wrong.
//!
//! The core invalidation scenarios run against both cache deployments: the
//! in-process cluster and loopback `txcached` TCP servers, where the
//! database's invalidation stream travels as pushed `InvalidationBatch`
//! frames.

use std::sync::Arc;

use txcache_repro::cache_server::{CacheCluster, NodeConfig, TxcachedServer};
use txcache_repro::harness::{run_experiment, DbKind, ExperimentConfig};
use txcache_repro::mvdb::{Database, DbConfig};
use txcache_repro::pincushion::Pincushion;
use txcache_repro::rubis::{self, RubisApp, RubisScale};
use txcache_repro::txcache::backend::{CacheBackend, RemoteCluster};
use txcache_repro::txcache::{BackendKind, CacheMode, TxCache, TxCacheConfig};
use txcache_repro::txtypes::{SimClock, Staleness};

fn rubis_stack(mode: CacheMode) -> (RubisApp, SimClock) {
    let (app, clock, _) = rubis_stack_on(mode, BackendKind::InProcess);
    (app, clock)
}

fn rubis_stack_on(mode: CacheMode, kind: BackendKind) -> (RubisApp, SimClock, Vec<TxcachedServer>) {
    let clock = SimClock::new();
    let db = Arc::new(Database::new(DbConfig::default(), clock.clone()));
    rubis::create_tables(&db).unwrap();
    rubis::populate(&db, &RubisScale::tiny(), 11).unwrap();
    let (cache, servers): (Arc<dyn CacheBackend>, Vec<TxcachedServer>) = match kind {
        BackendKind::InProcess => (Arc::new(CacheCluster::new(2, 16 << 20)), Vec::new()),
        BackendKind::Remote => {
            let servers: Vec<TxcachedServer> = (0..2)
                .map(|i| {
                    TxcachedServer::bind(
                        "127.0.0.1:0",
                        format!("txcached-{i}"),
                        NodeConfig {
                            capacity_bytes: 8 << 20,
                            ..NodeConfig::default()
                        },
                    )
                    .expect("bind loopback txcached")
                })
                .collect();
            let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
            (
                Arc::new(RemoteCluster::connect(&addrs).expect("connect loopback txcached")),
                servers,
            )
        }
    };
    let pincushion = Arc::new(Pincushion::new(Default::default(), clock.clone()));
    let txcache = Arc::new(TxCache::with_backend(
        db,
        cache,
        pincushion,
        clock.clone(),
        TxCacheConfig {
            mode,
            ..TxCacheConfig::default()
        },
    ));
    (RubisApp::new(txcache), clock, servers)
}

fn scenario_cached_item_pages_are_invalidated_by_bids(kind: BackendKind) {
    let (app, clock, _servers) = rubis_stack_on(CacheMode::Full, kind);

    // View item 1 twice: the second view is a cache hit.
    for _ in 0..2 {
        let mut tx = app.begin_ro(Staleness::seconds(30)).unwrap();
        let page = app.page_view_item(&mut tx, 1).unwrap();
        assert!(page.body.contains("price"));
        tx.commit().unwrap();
    }
    let before = app.txcache().stats();
    assert!(before.cache_hits > 0);

    // Place a bid that raises the price.
    let mut rw = app.begin_rw().unwrap();
    app.store_bid(&mut rw, 3, 1, 10_000.0).unwrap();
    rw.commit().unwrap();

    // A fresh transaction must see the new price even though the old page and
    // item objects are still sitting in the cache.
    clock.advance_secs(40);
    let mut tx = app.begin_ro(Staleness::seconds(1)).unwrap();
    let item = app.get_item(&mut tx, 1).unwrap().unwrap();
    let page = app.page_view_item(&mut tx, 1).unwrap();
    tx.commit().unwrap();
    assert_eq!(item.current_price, 10_000.0);
    assert!(
        page.body.contains("10000.00"),
        "page must be recomputed after the bid: {}",
        page.body
    );
}

#[test]
fn cached_item_pages_are_invalidated_by_bids() {
    scenario_cached_item_pages_are_invalidated_by_bids(BackendKind::InProcess);
}

#[test]
fn remote_cached_item_pages_are_invalidated_by_bids() {
    scenario_cached_item_pages_are_invalidated_by_bids(BackendKind::Remote);
}

fn scenario_user_rating_dependency_is_invalidated(kind: BackendKind) {
    // The §2.1 MediaWiki bug: a cached user object embeds a derived value
    // (here the rating updated by store_comment); forgetting to invalidate it
    // is the classic error. TxCache derives the dependency automatically.
    let (app, clock, _servers) = rubis_stack_on(CacheMode::Full, kind);

    let mut tx = app.begin_ro(Staleness::seconds(30)).unwrap();
    let before = app.get_user(&mut tx, 5).unwrap().unwrap();
    app.page_view_user_info(&mut tx, 5).unwrap();
    tx.commit().unwrap();

    let mut rw = app.begin_rw().unwrap();
    app.store_comment(&mut rw, 1, 5, 1, 3, "superb").unwrap();
    rw.commit().unwrap();

    clock.advance_secs(40);
    let mut tx = app.begin_ro(Staleness::seconds(1)).unwrap();
    let after = app.get_user(&mut tx, 5).unwrap().unwrap();
    tx.commit().unwrap();
    assert_eq!(after.rating, before.rating + 3);
}

#[test]
fn user_rating_dependency_is_invalidated_automatically() {
    scenario_user_rating_dependency_is_invalidated(BackendKind::InProcess);
}

#[test]
fn remote_user_rating_dependency_is_invalidated_automatically() {
    scenario_user_rating_dependency_is_invalidated(BackendKind::Remote);
}

#[test]
fn stale_reads_within_the_limit_remain_consistent_snapshots() {
    let (app, _clock) = rubis_stack(CacheMode::Full);

    // Warm the cache with item 2's page.
    let mut tx = app.begin_ro(Staleness::seconds(30)).unwrap();
    let original = app.get_item(&mut tx, 2).unwrap().unwrap();
    tx.commit().unwrap();

    // A bid changes the item.
    let mut rw = app.begin_rw().unwrap();
    app.store_bid(&mut rw, 4, 2, 9_999.0).unwrap();
    rw.commit().unwrap();

    // A transaction with a loose staleness bound may legitimately see either
    // version — but the item details and the bid count it observes must come
    // from the same snapshot.
    let mut tx = app.begin_ro(Staleness::seconds(30)).unwrap();
    let item = app.get_item(&mut tx, 2).unwrap().unwrap();
    let history = app.get_bid_history(&mut tx, 2).unwrap();
    tx.commit().unwrap();
    if item.current_price == original.current_price {
        assert_eq!(history.len() as i64, original.nb_of_bids);
    } else {
        assert_eq!(history.len() as i64, original.nb_of_bids + 1);
    }
}

#[test]
fn registering_an_item_invalidates_category_listings() {
    let (app, clock) = rubis_stack(CacheMode::Full);

    let mut tx = app.begin_ro(Staleness::seconds(30)).unwrap();
    let before = app.search_items_by_category(&mut tx, 1, 0).unwrap();
    tx.commit().unwrap();

    let mut rw = app.begin_rw().unwrap();
    let new_id = app
        .register_item(&mut rw, 1, 1, 1, "fresh widget", "newly listed", 5.0)
        .unwrap();
    rw.commit().unwrap();

    clock.advance_secs(40);
    let mut tx = app.begin_ro(Staleness::seconds(1)).unwrap();
    let after = app.search_items_by_category(&mut tx, 1, 0).unwrap();
    tx.commit().unwrap();

    // Listings are paginated; the new item shows up unless the first page was
    // already full, in which case the listing is simply unchanged — but the
    // new item must be visible directly in either case.
    let mut tx = app.begin_ro(Staleness::seconds(1)).unwrap();
    let fetched = app.get_item(&mut tx, new_id).unwrap();
    tx.commit().unwrap();
    assert!(fetched.is_some());
    assert!(after.len() >= before.len());
}

#[test]
fn in_list_keyed_tags_invalidate_only_probed_categories() {
    // An IN-list probe plan tags the cached entry with one keyed tag per
    // probed key (items:category=1, items:category=2) instead of the table
    // wildcard. A write to an UNprobed category must leave the entry alive;
    // a write to a probed category must kill it.
    use std::sync::atomic::{AtomicU32, Ordering};
    use txcache_repro::mvdb::{Predicate, SelectQuery, SortOrder};
    use txcache_repro::txcache::Transaction;

    let (app, clock) = rubis_stack(CacheMode::Full);
    let recomputes = AtomicU32::new(0);
    let fetch = |tx: &mut Transaction<'_>| -> Vec<i64> {
        tx.cached("inlist_probe_ids", &(1i64, 2i64), |tx| {
            recomputes.fetch_add(1, Ordering::Relaxed);
            let q = SelectQuery::table("items")
                .filter(Predicate::in_list("category", [1i64, 2]))
                .select(vec!["id"])
                .order_by("id", SortOrder::Asc);
            let r = tx.query(&q)?;
            Ok((0..r.len())
                .map(|i| r.get(i, "id").unwrap().as_int().unwrap())
                .collect())
        })
        .unwrap()
    };

    // Warm the entry, then confirm a second read is served from cache.
    let mut tx = app.begin_ro(Staleness::seconds(30)).unwrap();
    fetch(&mut tx);
    tx.commit().unwrap();
    assert_eq!(recomputes.load(Ordering::Relaxed), 1);
    let mut tx = app.begin_ro(Staleness::seconds(30)).unwrap();
    fetch(&mut tx);
    tx.commit().unwrap();
    assert_eq!(
        recomputes.load(Ordering::Relaxed),
        1,
        "second read must hit"
    );

    // Register an item in category 4 — NOT probed by the IN-list. The write
    // emits items:category=4, which does not match the entry's keyed tags,
    // so even a fresh-snapshot read keeps hitting the cache.
    let mut rw = app.begin_rw().unwrap();
    app.register_item(&mut rw, 1, 4, 1, "unrelated", "other category", 5.0)
        .unwrap();
    rw.commit().unwrap();
    clock.advance_secs(40);
    let mut tx = app.begin_ro(Staleness::seconds(1)).unwrap();
    fetch(&mut tx);
    tx.commit().unwrap();
    assert_eq!(
        recomputes.load(Ordering::Relaxed),
        1,
        "write to an unprobed category must not invalidate the entry"
    );

    // Register an item in category 2 — probed. items:category=2 matches a
    // keyed tag, the entry is invalidated, and the recompute sees the item.
    let mut rw = app.begin_rw().unwrap();
    let new_id = app
        .register_item(&mut rw, 1, 2, 1, "probed", "probed category", 5.0)
        .unwrap();
    rw.commit().unwrap();
    clock.advance_secs(40);
    let mut tx = app.begin_ro(Staleness::seconds(1)).unwrap();
    let ids = fetch(&mut tx);
    tx.commit().unwrap();
    assert_eq!(
        recomputes.load(Ordering::Relaxed),
        2,
        "write to a probed category must invalidate the entry"
    );
    assert!(ids.contains(&new_id), "recompute must observe the new item");
}

#[test]
fn no_consistency_mode_still_returns_fresh_data_eventually() {
    let (app, clock) = rubis_stack(CacheMode::NoConsistency);
    let mut tx = app.begin_ro(Staleness::seconds(30)).unwrap();
    app.page_view_item(&mut tx, 3).unwrap();
    tx.commit().unwrap();

    let mut rw = app.begin_rw().unwrap();
    app.store_bid(&mut rw, 2, 3, 8_888.0).unwrap();
    rw.commit().unwrap();

    clock.advance_secs(60);
    app.txcache().maintenance();
    let mut tx = app.begin_ro(Staleness::seconds(1)).unwrap();
    let item = app.get_item(&mut tx, 3).unwrap().unwrap();
    tx.commit().unwrap();
    assert_eq!(item.current_price, 8_888.0);
}

#[test]
fn harness_smoke_disk_bound_configuration() {
    // A tiny disk-bound experiment exercises the buffer-pressure path and the
    // full stack end to end.
    let config = ExperimentConfig {
        scale_factor: 0.0006,
        requests: 200,
        warmup_requests: 100,
        sessions: 8,
        ..ExperimentConfig::new(DbKind::DiskBound)
    };
    let result = run_experiment(&config).unwrap();
    assert!(result.peak_throughput > 0.0);
    assert!(result.usage.requests > 0);
}
