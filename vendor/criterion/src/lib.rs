//! Offline subset of the `criterion` benchmark framework.
//!
//! Runs each benchmark for a short calibrated burst and prints mean
//! time-per-iteration. No statistical machinery, plots, or baselines — just
//! enough to keep the workspace's `benches/` targets building and producing
//! comparable numbers in the offline container.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// How batched inputs are sized; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    #[must_use]
    pub fn new() -> Criterion {
        Criterion::default()
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            group: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub autoscales iteration counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / u32::try_from(bencher.iters.min(u64::from(u32::MAX))).unwrap_or(1)
        };
        println!(
            "  {}/{name}: {:>12.1} ns/iter ({} iters)",
            self.group,
            per_iter.as_nanos() as f64,
            bencher.iters
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Measures a closure over a calibrated number of iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and calibrate with one batch, then run until TARGET.
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < TARGET {
            black_box(routine());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let start = Instant::now();
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        while start.elapsed() < TARGET {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            measured += t0.elapsed();
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = measured;
    }
}

/// Declares the benchmark entry point functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
