//! Cache keys for cacheable function calls (§6.1).
//!
//! The TxCache library names cache entries automatically by serializing the
//! cacheable function's name and arguments. We keep both a human-readable
//! rendering (useful for debugging and statistics) and a 64-bit hash used for
//! consistent-hashing placement across cache nodes.

use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

/// The identity of a cacheable call: function name plus serialized arguments.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CacheKey {
    /// The cacheable function's registered name.
    pub function: String,
    /// A canonical serialization of the call's arguments.
    pub args: String,
}

impl CacheKey {
    /// Builds a key from a function name and an already-serialized argument
    /// string.
    #[must_use]
    pub fn new(function: impl Into<String>, args: impl Into<String>) -> CacheKey {
        CacheKey {
            function: function.into(),
            args: args.into(),
        }
    }

    /// Returns a stable 64-bit hash of the key, used to place the key on the
    /// consistent-hashing ring.
    ///
    /// The hash is FNV-1a over the rendered key; it must be identical across
    /// processes and runs, so we do not use `std`'s `RandomState`.
    #[must_use]
    pub fn stable_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in self
            .function
            .as_bytes()
            .iter()
            .chain([0u8].iter())
            .chain(self.args.as_bytes())
        {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// Approximate size in bytes of the key, used for cache memory accounting.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.function.len() + self.args.len() + 16
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.function, self.args)
    }
}

/// Hashes an arbitrary `Hash` value with a stable seed; a convenience for
/// components (e.g. the consistent-hash ring) that need deterministic
/// placement of non-`CacheKey` items such as node identifiers.
#[must_use]
pub fn stable_hash_of<T: Hash>(value: &T) -> u64 {
    // A tiny, dependency-free FNV-based hasher. Not cryptographic; only used
    // for placement and sharding decisions.
    struct Fnv(u64);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
            for b in bytes {
                self.0 ^= u64::from(*b);
                self.0 = self.0.wrapping_mul(FNV_PRIME);
            }
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_with_same_content_hash_equal() {
        let a = CacheKey::new("get_item", "[42]");
        let b = CacheKey::new("get_item", "[42]");
        assert_eq!(a, b);
        assert_eq!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn different_args_produce_different_hashes() {
        let a = CacheKey::new("get_item", "[42]");
        let b = CacheKey::new("get_item", "[43]");
        assert_ne!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn function_and_args_are_separated_in_hash() {
        // "ab" + "c" must not collide with "a" + "bc".
        let a = CacheKey::new("ab", "c");
        let b = CacheKey::new("a", "bc");
        assert_ne!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn display_and_size() {
        let k = CacheKey::new("get_user", "[7]");
        assert_eq!(k.to_string(), "get_user([7])");
        assert!(k.size_bytes() >= "get_user".len() + "[7]".len());
    }

    #[test]
    fn stable_hash_of_is_deterministic() {
        assert_eq!(stable_hash_of(&"node-1"), stable_hash_of(&"node-1"));
        assert_ne!(stable_hash_of(&"node-1"), stable_hash_of(&"node-2"));
    }
}
