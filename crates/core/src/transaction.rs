//! Transactions and cacheable function calls (§6).
//!
//! A [`Transaction`] is the object an application holds between `BEGIN` and
//! `COMMIT`/`ABORT`. Read/write transactions pass every operation straight to
//! the database and bypass the cache (§2.2). Read-only transactions are where
//! the interesting machinery lives:
//!
//! * a **pin set** of candidate serialization timestamps, seeded from the
//!   pincushion and narrowed as data is observed (lazy timestamp selection,
//!   §6.2);
//! * **cacheable calls** ([`Transaction::cached`]), which look up the
//!   serialized (function, arguments) key in the cache, and on a miss run the
//!   implementation while accumulating the validity intervals and
//!   invalidation tags of everything it reads, then insert the result
//!   (§6.1);
//! * **nested calls** keep one accumulation frame per call-stack level, so an
//!   inner cacheable function may end up with a wider validity interval than
//!   its caller but never vice versa (§6.3).

use std::collections::HashMap;

use cache_server::{LookupOutcome, LookupRequest};
use mvdb::{PageCounts, Predicate, QueryResult, SelectQuery, SnapshotId, TxnToken, Value};
use serde::{de::DeserializeOwned, Serialize};
use txtypes::{CacheKey, Error, Result, Staleness, TagSet, Timestamp, ValidityInterval, WallClock};

use crate::codec;
use crate::config::{CacheMode, TimestampPolicy};
use crate::handle::TxCache;
use crate::pinset::PinSet;
use crate::stats::CommitInfo;

/// Per-call accumulation of validity and dependencies (§6.3).
#[derive(Debug, Clone)]
struct Frame {
    validity: ValidityInterval,
    tags: TagSet,
}

impl Frame {
    fn new() -> Frame {
        Frame {
            validity: ValidityInterval::ALL,
            tags: TagSet::new(),
        }
    }
}

/// State specific to read-only transactions.
#[derive(Debug)]
struct ReadOnlyState {
    staleness: Staleness,
    pin_set: PinSet,
    /// Wall-clock pin time for each candidate, for the 5-second reuse policy.
    pinned_at: HashMap<Timestamp, WallClock>,
    /// Earliest timestamp acceptable under the staleness limit alone; used by
    /// the cache server to classify consistency vs staleness misses.
    freshness_lo: Option<Timestamp>,
    /// Pins whose use count we must release at the end of the transaction.
    acquired_pins: Vec<Timestamp>,
    /// The lazily-opened database transaction, if any.
    db_token: Option<TxnToken>,
    /// The snapshot that transaction runs at, once chosen.
    chosen_snapshot: Option<Timestamp>,
    /// Accumulation frames for the cacheable calls currently on the stack.
    frames: Vec<Frame>,
}

/// State specific to read/write transactions.
#[derive(Debug)]
struct ReadWriteState {
    db_token: TxnToken,
    rows_written: u64,
}

#[derive(Debug)]
enum State {
    ReadOnly(ReadOnlyState),
    ReadWrite(ReadWriteState),
    Finished,
}

/// An open TxCache transaction.
#[derive(Debug)]
pub struct Transaction<'a> {
    sys: &'a TxCache,
    state: State,
    // Per-transaction counters reported in CommitInfo.
    db_queries: u64,
    db_pages: PageCounts,
    cache_hits: u64,
    cache_misses: u64,
}

impl<'a> Transaction<'a> {
    pub(crate) fn new_read_only(sys: &'a TxCache, staleness: Staleness) -> Result<Transaction<'a>> {
        let mut pinned_at = HashMap::new();
        let mut acquired = Vec::new();
        let (pin_set, freshness_lo) = match sys.policy() {
            TimestampPolicy::Lazy => {
                let fresh = sys.pincushion.fresh_pins(staleness);
                for p in &fresh {
                    pinned_at.insert(p.timestamp, p.pinned_at);
                    acquired.push(p.timestamp);
                }
                let freshness_lo = fresh.iter().map(|p| p.timestamp).min();
                (
                    PinSet::new(fresh.iter().map(|p| p.timestamp), true),
                    freshness_lo,
                )
            }
            TimestampPolicy::Eager => {
                // Choose one timestamp right now: the newest fresh pin if it
                // is recent enough, otherwise a newly pinned snapshot.
                let fresh = sys.pincushion.fresh_pins(staleness);
                for p in &fresh {
                    pinned_at.insert(p.timestamp, p.pinned_at);
                    acquired.push(p.timestamp);
                }
                let now = sys.clock.now();
                let threshold = sys.config.pin_reuse_threshold_micros;
                let reusable = fresh
                    .first()
                    .filter(|p| now.since(p.pinned_at) <= threshold)
                    .map(|p| p.timestamp);
                let chosen = match reusable {
                    Some(ts) => {
                        sys.stats.reused_pins.bump();
                        ts
                    }
                    None => {
                        let (snap, at) = sys.db.pin_latest();
                        sys.pincushion.register(snap.timestamp(), at);
                        sys.stats.new_pins.bump();
                        pinned_at.insert(snap.timestamp(), at);
                        acquired.push(snap.timestamp());
                        snap.timestamp()
                    }
                };
                (PinSet::new([chosen], false), Some(chosen))
            }
        };
        Ok(Transaction {
            sys,
            state: State::ReadOnly(ReadOnlyState {
                staleness,
                pin_set,
                pinned_at,
                freshness_lo,
                acquired_pins: acquired,
                db_token: None,
                chosen_snapshot: None,
                frames: Vec::new(),
            }),
            db_queries: 0,
            db_pages: PageCounts::default(),
            cache_hits: 0,
            cache_misses: 0,
        })
    }

    pub(crate) fn new_read_write(sys: &'a TxCache) -> Result<Transaction<'a>> {
        let db_token = sys.db.begin_rw()?;
        Ok(Transaction {
            sys,
            state: State::ReadWrite(ReadWriteState {
                db_token,
                rows_written: 0,
            }),
            db_queries: 0,
            db_pages: PageCounts::default(),
            cache_hits: 0,
            cache_misses: 0,
        })
    }

    /// Whether this is a read-only transaction.
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        matches!(self.state, State::ReadOnly(_))
    }

    /// The staleness limit this transaction was begun with (read-only
    /// transactions only).
    #[must_use]
    pub fn staleness(&self) -> Option<Staleness> {
        match &self.state {
            State::ReadOnly(ro) => Some(ro.staleness),
            _ => None,
        }
    }

    /// The candidate serialization timestamps (read-only transactions only);
    /// exposed for tests and diagnostics.
    #[must_use]
    pub fn pin_set_candidates(&self) -> Vec<Timestamp> {
        match &self.state {
            State::ReadOnly(ro) => ro.pin_set.candidates(),
            _ => Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Cacheable calls
    // ------------------------------------------------------------------

    /// Invokes a cacheable function (the wrapper `MAKE-CACHEABLE` produces in
    /// Figure 2).
    ///
    /// `name` identifies the function; `args` are serialized into the cache
    /// key; `body` is the implementation, which may issue queries through the
    /// transaction and call further cacheable functions. In read-only
    /// transactions the result is looked up in — and on a miss inserted into
    /// — the cache. In read/write transactions (and with caching disabled)
    /// the implementation simply runs.
    pub fn cached<A, R, F>(&mut self, name: &str, args: &A, body: F) -> Result<R>
    where
        A: Serialize,
        R: Serialize + DeserializeOwned,
        F: FnOnce(&mut Transaction<'a>) -> Result<R>,
    {
        self.sys.stats.cacheable_calls.bump();
        let mode = self.sys.mode();
        let bypass = mode == CacheMode::Disabled || !self.is_read_only();
        if bypass {
            self.cache_misses += 1;
            self.sys.stats.cache_misses.bump();
            return body(self);
        }

        let key = CacheKey::new(name, codec::encode_hex(args)?);
        self.ensure_candidates()?;
        let request = self.lookup_request(mode)?;

        match self.sys.cache.lookup(&key, &request) {
            LookupOutcome::Hit {
                value,
                validity,
                stored_validity,
                tags,
            } => {
                self.cache_hits += 1;
                self.sys.stats.cache_hits.bump();
                if mode == CacheMode::Full {
                    // Narrow the pin set with the conservative (effective)
                    // interval and fold the entry's validity and tags into
                    // every enclosing frame.
                    self.observe(&validity, &stored_validity, &tags)?;
                }
                codec::decode(&value)
            }
            LookupOutcome::Miss(_) => {
                self.cache_misses += 1;
                self.sys.stats.cache_misses.bump();
                self.push_frame()?;
                let result = body(self);
                let frame = self.pop_frame()?;
                let value = result?;
                let encoded = codec::encode(&value)?;
                self.sys.cache.insert(
                    key,
                    encoded,
                    frame.validity,
                    frame.tags,
                    self.sys.clock.now(),
                );
                Ok(value)
            }
        }
    }

    /// Invokes a batch of cacheable calls to the same function — one per
    /// element of `args_list` — paying one scatter-gather cache round trip
    /// for the whole batch instead of one per call.
    ///
    /// All keys are looked up together through the backend's `lookup_many`
    /// (on the remote backend: one `MultiGet` frame per involved cache
    /// node). Hits are observed and decoded exactly as in
    /// [`Transaction::cached`]; for each miss `body` runs with the miss's
    /// index into `args_list`, inside its own accumulation frame, and every
    /// computed value is written back in one batch insert (`MultiPut` on
    /// the remote backend). Results come back in `args_list` order.
    pub fn cached_many<A, R, F>(
        &mut self,
        name: &str,
        args_list: &[A],
        mut body: F,
    ) -> Result<Vec<R>>
    where
        A: Serialize,
        R: Serialize + DeserializeOwned,
        F: FnMut(&mut Transaction<'a>, usize) -> Result<R>,
    {
        if args_list.is_empty() {
            return Ok(Vec::new());
        }
        let count = args_list.len() as u64;
        self.sys.stats.cacheable_calls.add(count);
        let mode = self.sys.mode();
        let bypass = mode == CacheMode::Disabled || !self.is_read_only();
        if bypass {
            self.cache_misses += count;
            self.sys.stats.cache_misses.add(count);
            return (0..args_list.len()).map(|i| body(self, i)).collect();
        }

        let keys: Vec<CacheKey> = args_list
            .iter()
            .map(|args| Ok(CacheKey::new(name, codec::encode_hex(args)?)))
            .collect::<Result<_>>()?;
        self.ensure_candidates()?;
        let request = self.lookup_request(mode)?;

        let outcomes = self.sys.cache.lookup_many(&keys, &request);
        let mut results: Vec<R> = Vec::with_capacity(keys.len());
        let mut write_backs = Vec::new();
        for (pos, (key, outcome)) in keys.into_iter().zip(outcomes).enumerate() {
            match outcome {
                LookupOutcome::Hit {
                    value,
                    validity,
                    stored_validity,
                    tags,
                } => {
                    self.cache_hits += 1;
                    self.sys.stats.cache_hits.bump();
                    if mode == CacheMode::Full {
                        self.observe(&validity, &stored_validity, &tags)?;
                    }
                    results.push(codec::decode(&value)?);
                }
                LookupOutcome::Miss(_) => {
                    self.cache_misses += 1;
                    self.sys.stats.cache_misses.bump();
                    self.push_frame()?;
                    let result = body(self, pos);
                    let frame = self.pop_frame()?;
                    let value = result?;
                    write_backs.push((key, codec::encode(&value)?, frame.validity, frame.tags));
                    results.push(value);
                }
            }
        }
        if !write_backs.is_empty() {
            self.sys
                .cache
                .insert_many(write_backs, self.sys.clock.now());
        }
        Ok(results)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Issues a SELECT query within the transaction.
    ///
    /// In read-only transactions the query runs at the transaction's chosen
    /// snapshot (choosing one lazily if necessary) and its validity interval
    /// and invalidation tags are folded into the pin set and any enclosing
    /// cacheable-call frames.
    pub fn query(&mut self, query: &SelectQuery) -> Result<QueryResult> {
        self.db_queries += 1;
        self.sys.stats.db_queries.bump();
        match &mut self.state {
            State::Finished => Err(Error::InvalidState("transaction already finished".into())),
            State::ReadWrite(rw) => {
                let result = self.sys.db.query(rw.db_token, query)?;
                self.db_pages.hits += result.pages.hits;
                self.db_pages.misses += result.pages.misses;
                Ok(result)
            }
            State::ReadOnly(_) => {
                self.ensure_db_txn()?;
                let token = {
                    let ro = self.read_only_state()?;
                    ro.db_token
                        .ok_or_else(|| Error::InvalidState("no database transaction".into()))?
                };
                let result = self.sys.db.query(token, query)?;
                self.db_pages.hits += result.pages.hits;
                self.db_pages.misses += result.pages.misses;
                if self.sys.mode() != CacheMode::NoConsistency {
                    self.observe(&result.validity, &result.validity, &result.tags)?;
                } else {
                    self.observe_frames_only(&result.validity, &result.tags)?;
                }
                Ok(result)
            }
        }
    }

    // ------------------------------------------------------------------
    // DML (read/write transactions only)
    // ------------------------------------------------------------------

    /// Inserts a row; valid only in read/write transactions.
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> Result<u64> {
        let token = self.read_write_token()?;
        let row = self.sys.db.insert(token, table, values)?;
        if let State::ReadWrite(rw) = &mut self.state {
            rw.rows_written += 1;
        }
        Ok(row)
    }

    /// Updates rows matching `predicate`; valid only in read/write
    /// transactions.
    pub fn update(
        &mut self,
        table: &str,
        predicate: &Predicate,
        assignments: &[(String, Value)],
    ) -> Result<usize> {
        let token = self.read_write_token()?;
        let n = self.sys.db.update(token, table, predicate, assignments)?;
        if let State::ReadWrite(rw) = &mut self.state {
            rw.rows_written += n as u64;
        }
        Ok(n)
    }

    /// Deletes rows matching `predicate`; valid only in read/write
    /// transactions.
    pub fn delete(&mut self, table: &str, predicate: &Predicate) -> Result<usize> {
        let token = self.read_write_token()?;
        let n = self.sys.db.delete(token, table, predicate)?;
        if let State::ReadWrite(rw) = &mut self.state {
            rw.rows_written += n as u64;
        }
        Ok(n)
    }

    // ------------------------------------------------------------------
    // Commit / abort
    // ------------------------------------------------------------------

    /// Commits the transaction and returns a report including the timestamp
    /// it ran at (`COMMIT` in Figure 2). Applications can use the timestamp
    /// as a staleness bound for later transactions to enforce causality
    /// (§2.2).
    pub fn commit(mut self) -> Result<CommitInfo> {
        let info = self.finish(true)?;
        self.sys.stats.commits.bump();
        Ok(info)
    }

    /// Aborts the transaction (`ABORT` in Figure 2).
    pub fn abort(mut self) -> Result<()> {
        self.finish(false)?;
        self.sys.stats.aborts.bump();
        Ok(())
    }

    fn finish(&mut self, commit: bool) -> Result<CommitInfo> {
        let state = std::mem::replace(&mut self.state, State::Finished);
        match state {
            State::Finished => Err(Error::InvalidState("transaction already finished".into())),
            State::ReadWrite(rw) => {
                let timestamp = if commit {
                    self.sys.db.commit(rw.db_token)?
                } else {
                    self.sys.db.abort(rw.db_token)?;
                    self.sys.db.latest_timestamp()
                };
                // Make the resulting invalidations visible promptly.
                self.sys.deliver_invalidations();
                Ok(CommitInfo {
                    timestamp,
                    read_only: false,
                    db_queries: self.db_queries,
                    db_pages: self.db_pages,
                    cache_hits: self.cache_hits,
                    cache_misses: self.cache_misses,
                    rows_written: rw.rows_written,
                })
            }
            State::ReadOnly(ro) => {
                if let Some(token) = ro.db_token {
                    if commit {
                        self.sys.db.commit(token)?;
                    } else {
                        self.sys.db.abort(token)?;
                    }
                }
                self.sys.pincushion.release(&ro.acquired_pins);
                // Report a timestamp the whole transaction is serializable
                // at (§6.2: every surviving pin-set candidate lies inside
                // every observed validity interval). The snapshot the
                // database transaction ran at may have been *narrowed away*
                // by a later cache hit whose validity excluded it — the
                // observations are then only guaranteed consistent at the
                // remaining candidates, so prefer those. Applications use
                // this timestamp as a causality bound (§2.2), and the chaos
                // history checker verifies every read against it.
                let timestamp = ro
                    .chosen_snapshot
                    .filter(|ts| ro.pin_set.contains(*ts))
                    .or_else(|| ro.pin_set.newest())
                    .unwrap_or_else(|| self.sys.db.latest_timestamp());
                Ok(CommitInfo {
                    timestamp,
                    read_only: true,
                    db_queries: self.db_queries,
                    db_pages: self.db_pages,
                    cache_hits: self.cache_hits,
                    cache_misses: self.cache_misses,
                    rows_written: 0,
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn read_only_state(&self) -> Result<&ReadOnlyState> {
        match &self.state {
            State::ReadOnly(ro) => Ok(ro),
            _ => Err(Error::InvalidState("not a read-only transaction".into())),
        }
    }

    fn read_only_state_mut(&mut self) -> Result<&mut ReadOnlyState> {
        match &mut self.state {
            State::ReadOnly(ro) => Ok(ro),
            _ => Err(Error::InvalidState("not a read-only transaction".into())),
        }
    }

    fn read_write_token(&self) -> Result<TxnToken> {
        match &self.state {
            State::ReadWrite(rw) => Ok(rw.db_token),
            State::ReadOnly(_) => Err(Error::InvalidState(
                "writes are not allowed in read-only transactions".into(),
            )),
            State::Finished => Err(Error::InvalidState("transaction already finished".into())),
        }
    }

    /// Builds the cache lookup request from the pin set (or, for the
    /// no-consistency baseline, from the staleness limit alone).
    fn lookup_request(&self, mode: CacheMode) -> Result<LookupRequest> {
        let ro = self.read_only_state()?;
        let freshness_lo = ro.freshness_lo.unwrap_or(Timestamp::ZERO);
        Ok(match mode {
            CacheMode::NoConsistency => LookupRequest {
                pinset_lo: freshness_lo,
                pinset_hi: Timestamp::MAX,
                freshness_lo,
            },
            _ => {
                let (lo, hi) = ro
                    .pin_set
                    .bounds()
                    .ok_or_else(|| Error::InvalidState("pin set has no candidates".into()))?;
                LookupRequest {
                    pinset_lo: lo,
                    pinset_hi: hi,
                    freshness_lo,
                }
            }
        })
    }

    fn push_frame(&mut self) -> Result<()> {
        self.read_only_state_mut()?.frames.push(Frame::new());
        Ok(())
    }

    fn pop_frame(&mut self) -> Result<Frame> {
        self.read_only_state_mut()?
            .frames
            .pop()
            .ok_or_else(|| Error::InvalidState("cacheable-call frame stack underflow".into()))
    }

    /// Makes sure the pin set has at least one concrete candidate: if the
    /// pincushion had no sufficiently fresh snapshot, pin the latest one now
    /// (§6.1).
    fn ensure_candidates(&mut self) -> Result<()> {
        let needs_pin = {
            let ro = self.read_only_state()?;
            ro.pin_set.bounds().is_none()
        };
        if !needs_pin {
            return Ok(());
        }
        let (snap, at) = self.sys.db.pin_latest();
        self.sys.pincushion.register(snap.timestamp(), at);
        self.sys.stats.new_pins.bump();
        let ro = self.read_only_state_mut()?;
        ro.pin_set.insert(snap.timestamp());
        ro.pinned_at.insert(snap.timestamp(), at);
        ro.acquired_pins.push(snap.timestamp());
        if ro.freshness_lo.is_none() {
            ro.freshness_lo = Some(snap.timestamp());
        }
        Ok(())
    }

    /// Opens the underlying database read-only transaction if it has not been
    /// opened yet, choosing the snapshot per the §6.2 policy: pin a fresh
    /// snapshot if `?` is available and the newest candidate is older than
    /// the reuse threshold, otherwise run at the newest candidate.
    fn ensure_db_txn(&mut self) -> Result<()> {
        if self.read_only_state()?.db_token.is_some() {
            return Ok(());
        }
        self.ensure_candidates()?;
        let now = self.sys.clock.now();
        let threshold = self.sys.config.pin_reuse_threshold_micros;

        let (use_present, newest) = {
            let ro = self.read_only_state()?;
            let newest = ro
                .pin_set
                .newest()
                .ok_or_else(|| Error::InvalidState("pin set has no candidates".into()))?;
            let newest_age = ro
                .pinned_at
                .get(&newest)
                .map(|at| now.since(*at))
                .unwrap_or(u64::MAX);
            (ro.pin_set.has_present() && newest_age > threshold, newest)
        };

        let chosen = if use_present {
            let (snap, at) = self.sys.db.pin_latest();
            self.sys.pincushion.register(snap.timestamp(), at);
            self.sys.stats.new_pins.bump();
            let ro = self.read_only_state_mut()?;
            ro.pin_set.insert(snap.timestamp());
            ro.pin_set.remove_present();
            ro.pinned_at.insert(snap.timestamp(), at);
            ro.acquired_pins.push(snap.timestamp());
            snap.timestamp()
        } else {
            self.sys.stats.reused_pins.bump();
            newest
        };

        let token = self.sys.db.begin_ro(Some(SnapshotId(chosen)))?;
        let ro = self.read_only_state_mut()?;
        ro.db_token = Some(token);
        ro.chosen_snapshot = Some(chosen);
        Ok(())
    }

    /// Folds an observation into the pin set and every frame on the stack.
    ///
    /// `narrowing` is the conservative interval used to narrow the pin set
    /// (Invariant 1); `accumulated` is the interval folded into the
    /// cacheable-call frames (it may be wider, e.g. the stored, unbounded
    /// validity of a still-valid cache entry whose dependencies are carried
    /// by `tags`).
    fn observe(
        &mut self,
        narrowing: &ValidityInterval,
        accumulated: &ValidityInterval,
        tags: &TagSet,
    ) -> Result<()> {
        self.observe_frames_only(accumulated, tags)?;
        let chosen = self.read_only_state()?.chosen_snapshot;
        let sys = self.sys;
        let ro = self.read_only_state_mut()?;
        if !ro.pin_set.narrow(narrowing) {
            // Invariant 2 recovery: the conservative narrowing can drop every
            // candidate when the matching interval lies strictly between
            // candidates. Re-pin a timestamp inside the observed interval so
            // the transaction remains serializable there.
            let ts = chosen
                .filter(|ts| narrowing.contains(*ts))
                .unwrap_or(narrowing.lower);
            sys.db.pin(ts)?;
            let at = sys.clock.now();
            sys.pincushion.register(ts, at);
            ro.pin_set.insert(ts);
            ro.pinned_at.insert(ts, at);
            ro.acquired_pins.push(ts);
        }
        Ok(())
    }

    /// Folds validity and tags into the cacheable-call frames only (used by
    /// the no-consistency baseline, which skips pin-set narrowing).
    fn observe_frames_only(&mut self, accumulated: &ValidityInterval, tags: &TagSet) -> Result<()> {
        let ro = self.read_only_state_mut()?;
        for frame in &mut ro.frames {
            frame.validity = frame
                .validity
                .intersect(accumulated)
                .unwrap_or(*accumulated);
            frame.tags.merge(tags);
        }
        Ok(())
    }
}
