//! A cluster of cache nodes behind an epoch-versioned consistent-hash ring.
//!
//! [`CacheCluster`] is what the TxCache library talks to: it routes lookups
//! and inserts to each key's *replica set* (primary + R−1 ring successors,
//! see [`RingView`]), fans invalidation messages out to every node
//! (standing in for the paper's reliable multicast), and aggregates
//! statistics. Nodes are internally sharded ([`CacheNode`]), so the cluster
//! holds them directly — no wrapper locks: concurrent application servers
//! contend only when they touch the same *shard* of the same node, and
//! lookups on distinct keys proceed under shared or disjoint shard locks.
//!
//! Membership is dynamic: [`CacheCluster::join`] and
//! [`CacheCluster::leave`] publish a new ring epoch at runtime through the
//! cluster's [`Membership`] handle. During the migration window that a
//! membership change opens, reads that miss under the current view fall
//! back to the key's owner under the *previous* view — and a fallback hit
//! is re-inserted at the new owner, so keys migrate as they are touched.
//! [`CacheCluster::retire_previous`] closes the window once migration has
//! warmed the new placement.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;
use txtypes::{CacheKey, TagSet, Timestamp, ValidityInterval, WallClock};

use crate::entry::{LookupOutcome, LookupRequest};
use crate::membership::Membership;
use crate::node::{CacheNode, NodeConfig};
use crate::ring::RingBuilder;
use crate::stats::{CacheShardStats, CacheStats};

/// A set of cache nodes plus the epoch-versioned ring that places keys on
/// them.
pub struct CacheCluster {
    /// Every node currently serving, by name: the current view's members
    /// plus any node that left but still serves its old keys until the
    /// previous epoch is retired.
    nodes: RwLock<HashMap<String, Arc<CacheNode>>>,
    membership: Membership,
    /// Configuration applied to nodes created by [`CacheCluster::join`].
    config: NodeConfig,
    /// Monotonic name counter so joined nodes never reuse a name.
    next_node_id: AtomicUsize,
    /// Entries copied from their previous-epoch owner to their new owner by
    /// a migration-window fallback hit.
    migrated_entries: AtomicU64,
}

impl CacheCluster {
    /// Creates a cluster of `node_count` unreplicated nodes, each with
    /// `capacity_bytes` of memory. The paper's experiments vary the *total*
    /// cache size; use [`CacheCluster::with_total_capacity`] for that.
    #[must_use]
    pub fn new(node_count: usize, capacity_bytes: usize) -> CacheCluster {
        CacheCluster::with_config(
            node_count,
            NodeConfig {
                capacity_bytes,
                ..NodeConfig::default()
            },
        )
    }

    /// Creates a cluster of `node_count` nodes sharing one node
    /// configuration (capacity, shard count, history limit), without
    /// replication (R = 1).
    #[must_use]
    pub fn with_config(node_count: usize, config: NodeConfig) -> CacheCluster {
        CacheCluster::with_replication(node_count, 1, config)
    }

    /// Creates a cluster whose keys are placed on `replication` nodes each:
    /// the ring primary plus R−1 distinct successors. Writes fan out to the
    /// whole replica set; reads try the replicas in ring order.
    #[must_use]
    pub fn with_replication(
        node_count: usize,
        replication: usize,
        config: NodeConfig,
    ) -> CacheCluster {
        let node_count = node_count.max(1);
        let names: Vec<String> = (0..node_count).map(|i| format!("cache-{i}")).collect();
        let nodes = names
            .iter()
            .map(|n| (n.clone(), Arc::new(CacheNode::new(n.clone(), config))))
            .collect();
        let view = RingBuilder::new()
            .add_all(names)
            .replication(replication)
            .build(1);
        CacheCluster {
            nodes: RwLock::new(nodes),
            membership: Membership::new(view),
            config,
            next_node_id: AtomicUsize::new(node_count),
            migrated_entries: AtomicU64::new(0),
        }
    }

    /// Creates a cluster whose per-node capacity divides `total_bytes`
    /// evenly.
    #[must_use]
    pub fn with_total_capacity(node_count: usize, total_bytes: usize) -> CacheCluster {
        let node_count = node_count.max(1);
        CacheCluster::new(node_count, total_bytes / node_count)
    }

    /// Number of nodes in the current ring view.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.membership.current().len()
    }

    /// The replica-set size keys are placed with.
    #[must_use]
    pub fn replication(&self) -> usize {
        self.membership.current().replication()
    }

    /// The current membership epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.membership.epoch()
    }

    /// Every serving node, in current-view order (diagnostics and tests).
    /// Nodes that left but still serve their migration window are excluded.
    #[must_use]
    pub fn nodes(&self) -> Vec<Arc<CacheNode>> {
        let view = self.membership.current();
        let nodes = self.nodes.read();
        view.node_names()
            .iter()
            .filter_map(|name| nodes.get(name).cloned())
            .collect()
    }

    /// Adds a freshly created node to the ring at runtime, publishing the
    /// next epoch. Returns the new node's name and the epoch. The displaced
    /// view stays live for reads (see [`CacheCluster::retire_previous`]).
    pub fn join(&self) -> (String, u64) {
        let name = format!("cache-{}", self.next_node_id.fetch_add(1, Ordering::SeqCst));
        let node = Arc::new(CacheNode::new(name.clone(), self.config));
        // The node is resolvable *before* the view that routes to it is
        // published, so a reader holding the new view never misses the map.
        self.nodes.write().insert(name.clone(), node);
        let view = self.membership.join(name.clone());
        (name, view.epoch())
    }

    /// Removes a node from the ring at runtime, publishing the next epoch.
    /// The node keeps serving reads for keys it owned under the previous
    /// view until [`CacheCluster::retire_previous`] drops it. Returns the
    /// new epoch.
    pub fn leave(&self, name: &str) -> u64 {
        self.membership.leave(name).epoch()
    }

    /// Closes the migration window: previous-epoch owners stop being
    /// consulted and nodes that left the ring are dropped.
    pub fn retire_previous(&self) {
        let view = self.membership.current();
        self.nodes
            .write()
            .retain(|name, _| view.node_names().contains(name));
        self.membership.retire_previous();
    }

    /// Entries copied to their new owner by migration-window fallback hits.
    #[must_use]
    pub fn migrated_entries(&self) -> u64 {
        self.migrated_entries.load(Ordering::Relaxed)
    }

    /// Looks up a key on its replica set: the primary first, then (only on
    /// a miss) each ring successor. During a migration window, a miss also
    /// consults the key's previous-epoch owner; a hit there is copied to
    /// the new primary so the key migrates.
    pub fn lookup(&self, key: &CacheKey, request: &LookupRequest) -> LookupOutcome {
        let view = self.membership.current();
        let nodes = self.nodes.read();
        let names = view.node_names();
        let replicas = view.replicas_for(key);
        let mut outcome = LookupOutcome::Miss(crate::entry::MissKind::Compulsory);
        for &idx in &replicas {
            if let Some(node) = nodes.get(&names[idx]) {
                outcome = node.lookup(key, request);
                if outcome.is_hit() {
                    return outcome;
                }
            }
        }
        // Migration window: the old owner serves until the epoch is
        // retired, and a fallback hit re-inserts at the new owner.
        if let Some(prev) = self.membership.previous() {
            let old_name = &prev.node_names()[prev.primary_for(key)];
            if old_name != &names[replicas[0]] {
                if let Some(old_node) = nodes.get(old_name) {
                    let fallback = old_node.lookup(key, request);
                    if let LookupOutcome::Hit {
                        value,
                        stored_validity,
                        tags,
                        ..
                    } = &fallback
                    {
                        if let Some(new_owner) = nodes.get(&names[replicas[0]]) {
                            new_owner.insert(
                                key.clone(),
                                value.clone(),
                                *stored_validity,
                                tags.clone(),
                                WallClock::ZERO,
                            );
                            self.migrated_entries.fetch_add(1, Ordering::Relaxed);
                        }
                        return fallback;
                    }
                }
            }
        }
        outcome
    }

    /// Inserts a value on every node of the key's replica set.
    pub fn insert(
        &self,
        key: CacheKey,
        value: Bytes,
        validity: ValidityInterval,
        tags: TagSet,
        now: WallClock,
    ) {
        let view = self.membership.current();
        let nodes = self.nodes.read();
        let names = view.node_names();
        let replicas = view.replicas_for(&key);
        let (&last, rest) = replicas.split_last().expect("non-empty replica set");
        for &idx in rest {
            if let Some(node) = nodes.get(&names[idx]) {
                node.insert(key.clone(), value.clone(), validity, tags.clone(), now);
            }
        }
        if let Some(node) = nodes.get(&names[last]) {
            node.insert(key, value, validity, tags, now);
        }
    }

    /// Delivers one invalidation-stream message to every serving node (the
    /// multicast of §4.2), including previous-epoch owners still serving
    /// their migration window. Messages must be applied in commit order.
    pub fn apply_invalidation(&self, timestamp: Timestamp, tags: &TagSet) {
        for node in self.nodes.read().values() {
            node.apply_invalidation(timestamp, tags);
        }
    }

    /// Propagates a timestamp heartbeat to every node: all invalidations up
    /// to `ts` have been delivered, so still-valid entries may be served for
    /// lookups up to `ts`.
    pub fn note_timestamp(&self, ts: Timestamp) {
        for node in self.nodes.read().values() {
            node.note_timestamp(ts);
        }
    }

    /// Eagerly evicts entries that ended before `min_useful_ts` on every
    /// node.
    pub fn evict_stale(&self, min_useful_ts: Timestamp) {
        for node in self.nodes.read().values() {
            node.evict_stale(min_useful_ts);
        }
    }

    /// Aggregated statistics across all serving nodes.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for node in self.nodes.read().values() {
            total.merge(&node.stats());
        }
        total
    }

    /// Per-shard lock and eviction counters of every node, keyed by node
    /// name (the cluster-level mirror of [`CacheNode::shard_stats`]), in
    /// current-view order.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<(String, Vec<CacheShardStats>)> {
        self.nodes()
            .iter()
            .map(|n| (n.name().to_string(), n.shard_stats()))
            .collect()
    }

    /// Resets hit/miss counters on every node.
    pub fn reset_stats(&self) {
        for node in self.nodes.read().values() {
            node.reset_stats();
        }
    }

    /// Total bytes of cached data across the cluster.
    #[must_use]
    pub fn used_bytes(&self) -> usize {
        self.nodes.read().values().map(|n| n.used_bytes()).sum()
    }

    /// Total number of entries across the cluster.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.nodes.read().values().map(|n| n.entry_count()).sum()
    }
}

impl std::fmt::Debug for CacheCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheCluster")
            .field("nodes", &self.node_count())
            .field("replication", &self.replication())
            .field("epoch", &self.epoch())
            .field("entries", &self.entry_count())
            .field("used_bytes", &self.used_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtypes::InvalidationTag;

    fn key(i: u64) -> CacheKey {
        CacheKey::new("f", format!("[{i}]"))
    }

    fn cluster() -> CacheCluster {
        CacheCluster::new(3, 1 << 20)
    }

    #[test]
    fn insert_and_lookup_route_to_same_node() {
        let c = cluster();
        for i in 0..50 {
            c.insert(
                key(i),
                Bytes::from(vec![i as u8; 8]),
                ValidityInterval::unbounded(Timestamp(1)),
                TagSet::new(),
                WallClock::ZERO,
            );
        }
        for i in 0..50 {
            assert!(c.lookup(&key(i), &LookupRequest::at(Timestamp(1))).is_hit());
        }
        let stats = c.stats();
        assert_eq!(stats.hits, 50);
        assert_eq!(stats.insertions, 50);
        assert!(c.used_bytes() > 0);
        assert_eq!(c.entry_count(), 50);
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.replication(), 1);
        assert_eq!(c.epoch(), 1);
    }

    #[test]
    fn replicated_inserts_land_on_every_replica() {
        let c = CacheCluster::with_replication(
            3,
            2,
            NodeConfig {
                capacity_bytes: 1 << 20,
                ..NodeConfig::default()
            },
        );
        assert_eq!(c.replication(), 2);
        for i in 0..40 {
            c.insert(
                key(i),
                Bytes::from_static(b"v"),
                ValidityInterval::unbounded(Timestamp(1)),
                TagSet::new(),
                WallClock::ZERO,
            );
        }
        // Every key stored twice: once on its primary, once on a successor.
        assert_eq!(c.entry_count(), 80);
        assert_eq!(c.stats().insertions, 80);
        for i in 0..40 {
            assert!(c.lookup(&key(i), &LookupRequest::at(Timestamp(1))).is_hit());
        }
    }

    #[test]
    fn invalidations_reach_every_node() {
        let c = cluster();
        for i in 0..30 {
            c.insert(
                key(i),
                Bytes::from_static(b"v"),
                ValidityInterval::unbounded(Timestamp(1)),
                [InvalidationTag::keyed("items", format!("id={i}"))]
                    .into_iter()
                    .collect(),
                WallClock::ZERO,
            );
        }
        // Invalidate a single item: exactly one entry somewhere is affected.
        c.apply_invalidation(
            Timestamp(10),
            &[InvalidationTag::keyed("items", "id=7")]
                .into_iter()
                .collect(),
        );
        assert_eq!(c.stats().invalidated_entries, 1);
        // Every node processed the message.
        assert_eq!(c.stats().invalidation_messages, 3);
        // The invalidated key now misses at ts 10.
        assert!(!c
            .lookup(&key(7), &LookupRequest::range(Timestamp(10), Timestamp(10)))
            .is_hit());
    }

    #[test]
    fn stale_eviction_and_reset() {
        let c = cluster();
        c.insert(
            key(1),
            Bytes::from_static(b"old"),
            ValidityInterval::bounded(Timestamp(1), Timestamp(5)).unwrap(),
            TagSet::new(),
            WallClock::ZERO,
        );
        c.evict_stale(Timestamp(10));
        assert_eq!(c.entry_count(), 0);
        c.reset_stats();
        assert_eq!(c.stats().lookups(), 0);
    }

    #[test]
    fn with_total_capacity_divides_evenly() {
        let c = CacheCluster::with_total_capacity(4, 4 << 20);
        assert_eq!(c.node_count(), 4);
        let debug = format!("{c:?}");
        assert!(debug.contains("CacheCluster"));
    }

    #[test]
    fn cluster_exposes_nodes_and_their_shards() {
        let c = cluster();
        c.insert(
            key(1),
            Bytes::from_static(b"v"),
            ValidityInterval::unbounded(Timestamp(1)),
            TagSet::new(),
            WallClock::ZERO,
        );
        let nodes = c.nodes();
        assert_eq!(nodes.len(), 3);
        assert_eq!(
            nodes.iter().filter(|n| n.entry_count() == 1).count(),
            1,
            "exactly one node owns the single entry"
        );
        let shard_stats = c.shard_stats();
        assert_eq!(shard_stats.len(), 3);
        let writes: u64 = shard_stats
            .iter()
            .flat_map(|(_, shards)| shards.iter().map(|s| s.write_locks))
            .sum();
        assert_eq!(writes, 1);
    }

    #[test]
    fn join_migrates_keys_on_fallback_and_retire_closes_the_window() {
        let c = cluster();
        for i in 0..200 {
            c.insert(
                key(i),
                Bytes::from_static(b"v"),
                ValidityInterval::unbounded(Timestamp(1)),
                TagSet::new(),
                WallClock::ZERO,
            );
        }
        let (name, epoch) = c.join();
        assert_eq!(name, "cache-3");
        assert_eq!(epoch, 2);
        assert_eq!(c.node_count(), 4);

        // Every key still hits: relocated keys are served by their
        // previous-epoch owner and copied to the new one.
        let request = LookupRequest::at(Timestamp(1));
        for i in 0..200 {
            assert!(c.lookup(&key(i), &request).is_hit(), "key {i} must hit");
        }
        let migrated = c.migrated_entries();
        assert!(migrated > 0, "some keys must have moved to the new node");

        // After migration, relocated keys hit their *new* owner directly.
        c.retire_previous();
        for i in 0..200 {
            assert!(c.lookup(&key(i), &request).is_hit(), "key {i} post-retire");
        }
        assert_eq!(c.migrated_entries(), migrated, "no further fallbacks");
    }

    #[test]
    fn leave_keeps_old_owner_serving_until_retired() {
        let c = cluster();
        for i in 0..100 {
            c.insert(
                key(i),
                Bytes::from_static(b"v"),
                ValidityInterval::unbounded(Timestamp(1)),
                TagSet::new(),
                WallClock::ZERO,
            );
        }
        let epoch = c.leave("cache-0");
        assert_eq!(epoch, 2);
        assert_eq!(c.node_count(), 2);

        // Keys that lived on cache-0 fall back to it during the window and
        // are copied to their new owner.
        let request = LookupRequest::at(Timestamp(1));
        for i in 0..100 {
            assert!(c.lookup(&key(i), &request).is_hit(), "key {i} must hit");
        }
        c.retire_previous();
        // The departed node is dropped; every key now hits a survivor.
        assert_eq!(c.nodes().len(), 2);
        for i in 0..100 {
            assert!(c.lookup(&key(i), &request).is_hit(), "key {i} post-retire");
        }
    }
}
