//! Cache entries and lookup requests/outcomes.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use txtypes::{CacheKey, TagSet, Timestamp, ValidityInterval, WallClock};

/// A versioned entry stored on a cache node (§4.1).
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The cacheable call this entry memoizes.
    pub key: CacheKey,
    /// The serialized result of the call.
    pub value: Bytes,
    /// The range of database timestamps over which the value is current.
    pub validity: ValidityInterval,
    /// The entry's database dependencies; still-valid entries are truncated
    /// when an invalidation matching one of these tags arrives.
    pub tags: TagSet,
    /// Wall-clock time of insertion (for statistics).
    pub inserted_at: WallClock,
}

impl CacheEntry {
    /// Approximate memory footprint of the entry.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.key.size_bytes()
            + self.value.len()
            + self
                .tags
                .tags()
                .iter()
                .map(|t| t.table.len() + 24)
                .sum::<usize>()
            + 64
    }
}

/// A lookup request from the TxCache library (§4.1, §6.2).
///
/// The library sends the bounds of the transaction's pin set — any entry
/// whose validity interval intersects `[pinset_lo, pinset_hi]` keeps the
/// transaction serializable — plus the lower bound acceptable under the
/// staleness limit alone, which the server uses only to classify misses
/// (consistency vs staleness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LookupRequest {
    /// Lowest timestamp in the transaction's pin set.
    pub pinset_lo: Timestamp,
    /// Highest timestamp in the transaction's pin set.
    pub pinset_hi: Timestamp,
    /// Earliest timestamp acceptable under the staleness limit, ignoring what
    /// the transaction has already observed.
    pub freshness_lo: Timestamp,
}

impl LookupRequest {
    /// A request for any version valid at exactly `ts`.
    #[must_use]
    pub fn at(ts: Timestamp) -> LookupRequest {
        LookupRequest {
            pinset_lo: ts,
            pinset_hi: ts,
            freshness_lo: ts,
        }
    }

    /// A request for any version valid somewhere in `[lo, hi]`.
    #[must_use]
    pub fn range(lo: Timestamp, hi: Timestamp) -> LookupRequest {
        LookupRequest {
            pinset_lo: lo,
            pinset_hi: hi,
            freshness_lo: lo,
        }
    }
}

/// Why a lookup missed, following the classification of §8.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MissKind {
    /// The object was never in the cache.
    Compulsory,
    /// The object was invalidated and every cached version is older than the
    /// staleness limit allows.
    Staleness,
    /// The object was previously evicted.
    Capacity,
    /// A sufficiently fresh version exists, but it is inconsistent with the
    /// data the transaction has already read (its validity interval does not
    /// intersect the pin set).
    Consistency,
}

impl From<MissKind> for wire::MissCode {
    fn from(kind: MissKind) -> wire::MissCode {
        match kind {
            MissKind::Compulsory => wire::MissCode::Compulsory,
            MissKind::Staleness => wire::MissCode::Staleness,
            MissKind::Capacity => wire::MissCode::Capacity,
            MissKind::Consistency => wire::MissCode::Consistency,
        }
    }
}

impl From<wire::MissCode> for MissKind {
    fn from(code: wire::MissCode) -> MissKind {
        match code {
            wire::MissCode::Compulsory => MissKind::Compulsory,
            wire::MissCode::Staleness => MissKind::Staleness,
            wire::MissCode::Capacity => MissKind::Capacity,
            wire::MissCode::Consistency => MissKind::Consistency,
        }
    }
}

/// The result of a cache lookup.
#[derive(Debug, Clone)]
pub enum LookupOutcome {
    /// A matching entry was found; the value and its validity interval are
    /// returned so the library can narrow the transaction's pin set.
    Hit {
        /// The cached value.
        value: Bytes,
        /// The entry's validity interval with still-valid entries bounded by
        /// the last processed invalidation (§4.2). The library narrows the
        /// transaction's pin set with this conservative interval.
        validity: ValidityInterval,
        /// The validity interval exactly as stored (possibly unbounded).
        /// Enclosing cacheable functions accumulate this one, so a chain of
        /// still-valid results stays still-valid.
        stored_validity: ValidityInterval,
        /// The entry's dependency tags. Returned so enclosing cacheable
        /// functions inherit the dependencies of nested cache hits and are
        /// invalidated correctly (§6.3).
        tags: TagSet,
    },
    /// No matching entry; the kind says why.
    Miss(MissKind),
}

impl LookupOutcome {
    /// Returns `true` for hits.
    #[must_use]
    pub fn is_hit(&self) -> bool {
        matches!(self, LookupOutcome::Hit { .. })
    }

    /// Returns the miss kind, if this is a miss.
    #[must_use]
    pub fn miss_kind(&self) -> Option<MissKind> {
        match self {
            LookupOutcome::Miss(kind) => Some(*kind),
            LookupOutcome::Hit { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_size_counts_value_and_tags() {
        let e = CacheEntry {
            key: CacheKey::new("f", "[1]"),
            value: Bytes::from(vec![0u8; 100]),
            validity: ValidityInterval::unbounded(Timestamp(1)),
            tags: [txtypes::InvalidationTag::keyed("items", "id=1")]
                .into_iter()
                .collect(),
            inserted_at: WallClock::ZERO,
        };
        assert!(e.size_bytes() > 100);
    }

    #[test]
    fn request_constructors() {
        let r = LookupRequest::at(Timestamp(5));
        assert_eq!(r.pinset_lo, Timestamp(5));
        assert_eq!(r.pinset_hi, Timestamp(5));
        let r2 = LookupRequest::range(Timestamp(3), Timestamp(9));
        assert_eq!(r2.freshness_lo, Timestamp(3));
    }

    #[test]
    fn outcome_helpers() {
        let hit = LookupOutcome::Hit {
            value: Bytes::new(),
            validity: ValidityInterval::unbounded(Timestamp(1)),
            stored_validity: ValidityInterval::unbounded(Timestamp(1)),
            tags: TagSet::new(),
        };
        assert!(hit.is_hit());
        assert_eq!(hit.miss_kind(), None);
        let miss = LookupOutcome::Miss(MissKind::Capacity);
        assert!(!miss.is_hit());
        assert_eq!(miss.miss_kind(), Some(MissKind::Capacity));
    }
}
