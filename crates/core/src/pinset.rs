//! The pin set: candidate serialization timestamps for a read-only
//! transaction (§6.2).
//!
//! A read-only transaction begins with a pin set containing every
//! sufficiently fresh pinned snapshot plus the special marker `?` ("the
//! present": the transaction could still run on a newly pinned snapshot). As
//! the transaction observes cached values and query results, timestamps
//! incompatible with the observed validity intervals are removed. The paper's
//! two invariants (§6.2.1) — every observation is consistent with every
//! remaining timestamp, and the set never becomes empty — are enforced here
//! and property-tested in `tests/`.

use std::collections::BTreeSet;

use txtypes::{Timestamp, ValidityInterval};

/// The set of timestamps at which the enclosing read-only transaction can
/// still be serialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinSet {
    candidates: BTreeSet<Timestamp>,
    /// Whether the transaction may still run "in the present" on a newly
    /// pinned snapshot (the `?` member of §6.2).
    present: bool,
}

impl PinSet {
    /// Creates a pin set from the pinned snapshots returned by the
    /// pincushion. `present` should be true for lazily-timestamped
    /// transactions that have not yet observed any data.
    #[must_use]
    pub fn new(candidates: impl IntoIterator<Item = Timestamp>, present: bool) -> PinSet {
        PinSet {
            candidates: candidates.into_iter().collect(),
            present,
        }
    }

    /// A pin set containing only `?`.
    #[must_use]
    pub fn only_present() -> PinSet {
        PinSet::new([], true)
    }

    /// Whether `?` is still a member.
    #[must_use]
    pub fn has_present(&self) -> bool {
        self.present
    }

    /// Removes `?` (the transaction can no longer run on a new snapshot).
    pub fn remove_present(&mut self) {
        self.present = false;
    }

    /// Number of concrete candidate timestamps (excluding `?`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the set is completely empty — this would violate Invariant 2
    /// and never happens during correct operation.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty() && !self.present
    }

    /// The candidate timestamps in ascending order.
    #[must_use]
    pub fn candidates(&self) -> Vec<Timestamp> {
        self.candidates.iter().copied().collect()
    }

    /// Whether `ts` is a candidate.
    #[must_use]
    pub fn contains(&self, ts: Timestamp) -> bool {
        self.candidates.contains(&ts)
    }

    /// The oldest candidate, if any.
    #[must_use]
    pub fn oldest(&self) -> Option<Timestamp> {
        self.candidates.iter().next().copied()
    }

    /// The newest candidate, if any.
    #[must_use]
    pub fn newest(&self) -> Option<Timestamp> {
        self.candidates.iter().next_back().copied()
    }

    /// The lookup bounds sent to the cache: the lowest and highest candidate
    /// timestamps, excluding `?` (§6.2). `None` when there are no concrete
    /// candidates yet.
    #[must_use]
    pub fn bounds(&self) -> Option<(Timestamp, Timestamp)> {
        Some((self.oldest()?, self.newest()?))
    }

    /// Adds a candidate timestamp (a snapshot newly pinned on the
    /// transaction's behalf).
    pub fn insert(&mut self, ts: Timestamp) {
        self.candidates.insert(ts);
    }

    /// Narrows the set after observing a value with validity `interval`:
    /// removes every candidate outside the interval and removes `?` (observed
    /// data pins the transaction to the past). Returns `true` if at least one
    /// candidate remains.
    pub fn narrow(&mut self, interval: &ValidityInterval) -> bool {
        self.candidates.retain(|ts| interval.contains(*ts));
        self.present = false;
        !self.candidates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: u64, hi: u64) -> ValidityInterval {
        ValidityInterval::bounded(Timestamp(lo), Timestamp(hi)).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let p = PinSet::new([Timestamp(5), Timestamp(9), Timestamp(7)], true);
        assert_eq!(p.len(), 3);
        assert!(p.has_present());
        assert!(!p.is_empty());
        assert_eq!(p.oldest(), Some(Timestamp(5)));
        assert_eq!(p.newest(), Some(Timestamp(9)));
        assert_eq!(p.bounds(), Some((Timestamp(5), Timestamp(9))));
        assert!(p.contains(Timestamp(7)));
        assert!(!p.contains(Timestamp(8)));
        assert_eq!(
            p.candidates(),
            vec![Timestamp(5), Timestamp(7), Timestamp(9)]
        );
    }

    #[test]
    fn only_present_has_no_bounds() {
        let mut p = PinSet::only_present();
        assert_eq!(p.bounds(), None);
        assert!(!p.is_empty());
        p.remove_present();
        assert!(p.is_empty());
    }

    #[test]
    fn narrow_removes_incompatible_candidates_and_present() {
        let mut p = PinSet::new([Timestamp(5), Timestamp(7), Timestamp(9)], true);
        assert!(p.narrow(&iv(6, 10)));
        assert_eq!(p.candidates(), vec![Timestamp(7), Timestamp(9)]);
        assert!(!p.has_present());
        assert!(p.narrow(&ValidityInterval::unbounded(Timestamp(9))));
        assert_eq!(p.candidates(), vec![Timestamp(9)]);
    }

    #[test]
    fn narrow_reports_emptiness() {
        let mut p = PinSet::new([Timestamp(5)], false);
        assert!(!p.narrow(&iv(10, 20)));
        assert!(p.is_empty());
    }

    #[test]
    fn insert_extends_bounds() {
        let mut p = PinSet::new([Timestamp(5)], true);
        p.insert(Timestamp(12));
        assert_eq!(p.bounds(), Some((Timestamp(5), Timestamp(12))));
    }
}
