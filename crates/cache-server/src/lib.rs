//! # cache-server — the versioned application-data cache (§4)
//!
//! This crate implements the cache half of TxCache: in-memory cache nodes
//! that store *versioned* entries. Each entry is tagged with the validity
//! interval over which its value was the current result, and still-valid
//! entries carry invalidation tags describing their database dependencies.
//!
//! Key behaviours reproduced from the paper:
//!
//! * **Versioned lookups** (§4.1): a lookup names a key plus a range of
//!   acceptable timestamps (the transaction's pin-set bounds); the node
//!   returns the most recent version whose validity interval intersects the
//!   range, along with that interval.
//! * **Invalidation streams** (§4.2): nodes process the database's ordered
//!   per-commit invalidation messages, truncating the validity of matching
//!   still-valid entries at the commit timestamp. Still-valid entries are
//!   treated as valid only up to the last processed invalidation, which
//!   closes the update/insert race; an insert that arrives after its own
//!   invalidation is truncated on arrival.
//! * **Dual-granularity tags** (§4.2): keyed tags (`table:col=value`) and
//!   wildcard tags (`table:?`) on both the dependency and the update side.
//! * **Eviction** (§4.1): LRU under a per-node byte budget, plus eager
//!   removal of entries too stale to satisfy any transaction.
//! * **Consistent hashing** (§4): keys are partitioned across nodes; every
//!   client maps keys to nodes directly. Placement is published as an
//!   immutable, epoch-versioned [`RingView`] mapping each key to an ordered
//!   replica set (primary + R−1 ring successors); the [`Membership`] handle
//!   supports node join/leave at runtime with a migration window during
//!   which the old owner keeps serving relocated keys.
//! * **Miss classification** (§8.3): compulsory, staleness, capacity and
//!   consistency misses, used to regenerate Figure 8.
//!
//! # Concurrency
//!
//! Each node's store is split into key-hash shards, each behind its own
//! reader/writer lock ([`node`] module docs describe the full locking
//! protocol): lookups take one shard's shared lock, inserts and evictions
//! one shard's exclusive lock, and the invalidation stream applies in commit
//! order under a node-level sequencer that write-locks only the shards a
//! batch actually touches. Both consumers — the in-process
//! [`CacheCluster`] and the networked [`TxcachedServer`] — share their node
//! by reference, so concurrent application servers and connection handlers
//! scale with cores instead of queueing on one node-wide mutex. Per-shard
//! lock and eviction counters ([`CacheShardStats`]) make residual contention
//! observable locally and over the wire.

#![forbid(unsafe_code)]

pub mod cluster;
pub mod entry;
mod event_loop;
pub mod membership;
pub mod node;
pub mod ring;
pub mod server;
mod shard;
pub mod stats;
pub mod telemetry;

pub use cluster::CacheCluster;
pub use entry::{CacheEntry, LookupOutcome, LookupRequest, MissKind};
pub use membership::Membership;
pub use node::{CacheNode, NodeConfig};
pub use ring::{RingBuilder, RingView};
pub use server::{ConnectionSummary, ServerStats, TxcachedServer};
pub use stats::{CacheShardStats, CacheStats};
pub use telemetry::snapshot_from_wire;
