//! Error types shared across the workspace.

use std::fmt;

/// A convenience alias for results whose error type is [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the TxCache components.
///
/// The set is intentionally small: most operations in the system are
/// infallible by construction (cache misses are not errors, for example), and
/// the remaining failures fall into a few categories that callers handle
/// differently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A transaction referenced an unknown or already-finished transaction id.
    UnknownTransaction(String),
    /// A query referenced a table, column, or index that does not exist.
    Schema(String),
    /// A query or statement was malformed (type mismatch, bad predicate, …).
    Query(String),
    /// A read/write transaction lost a first-committer-wins conflict and must
    /// be retried by the application.
    SerializationFailure(String),
    /// A requested snapshot is no longer available (it was unpinned and
    /// vacuumed away).
    SnapshotUnavailable(String),
    /// The client library was used incorrectly, e.g. issuing a query outside
    /// a transaction or committing twice.
    InvalidState(String),
    /// A cached value could not be serialized or deserialized.
    Serialization(String),
    /// A remote cache node could not be reached. Lookup-path failures are
    /// absorbed as cache misses; this surfaces only from explicit
    /// connection-management calls.
    Network(String),
}

impl Error {
    /// Returns `true` if the error indicates a transient condition the caller
    /// should retry (serialization failures, unavailable snapshots).
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::SerializationFailure(_) | Error::SnapshotUnavailable(_)
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownTransaction(m) => write!(f, "unknown transaction: {m}"),
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Query(m) => write!(f, "query error: {m}"),
            Error::SerializationFailure(m) => write!(f, "serialization failure: {m}"),
            Error::SnapshotUnavailable(m) => write!(f, "snapshot unavailable: {m}"),
            Error::InvalidState(m) => write!(f, "invalid state: {m}"),
            Error::Serialization(m) => write!(f, "serialization error: {m}"),
            Error::Network(m) => write!(f, "network error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification() {
        assert!(Error::SerializationFailure("x".into()).is_retryable());
        assert!(Error::SnapshotUnavailable("x".into()).is_retryable());
        assert!(!Error::Schema("x".into()).is_retryable());
        assert!(!Error::InvalidState("x".into()).is_retryable());
        assert!(!Error::Network("x".into()).is_retryable());
    }

    #[test]
    fn display_includes_category() {
        let e = Error::Query("bad predicate".into());
        assert!(e.to_string().contains("query error"));
        assert!(e.to_string().contains("bad predicate"));
    }
}
