//! §8.1 overhead check: the paper reports no observable throughput difference
//! between stock PostgreSQL and the modified version that tracks validity
//! intervals and invalidation tags. This binary measures the same comparison
//! on `mvdb`: the no-caching RUBiS workload against a database with the
//! TxCache machinery enabled vs disabled.

use bench::BenchArgs;
use harness::{run_experiment, summary_line, DbKind, ExperimentConfig};
use txcache::CacheMode;

fn main() {
    let args = BenchArgs::parse();
    let base = ExperimentConfig {
        mode: CacheMode::Disabled,
        ..args.config(DbKind::InMemory)
    };

    // "Modified" database: validity tracking and invalidation tags enabled
    // (the default ExecOptions).
    let modified = run_experiment(&base).expect("experiment failed");

    // A stock database has no validity tracking; since the workload bypasses
    // the cache entirely in both runs, any difference is pure bookkeeping
    // overhead. The executor cost is identical in our simulated service-time
    // model, so we additionally report the real (wall-clock) per-query cost
    // measured by the Criterion bench `ablation_validity_tracking`.
    println!("# §8.1: database-side overhead of TxCache support (no caching in both runs)");
    println!("{}", summary_line("modified DB (validity on)", &modified));
    println!(
        "db work per request: {:.0} us",
        modified
            .usage
            .db_us_per_request(&DbKind::InMemory.cost_model())
    );
    println!();
    println!("Run `cargo bench -p bench --bench ablation_validity_tracking` for the wall-clock");
    println!(
        "per-query comparison of validity tracking on vs off (paper: no observable difference)."
    );
}
