//! Ablation of the §6.2 design choice: lazy timestamp selection (the paper's
//! pin-set algorithm) versus choosing a timestamp eagerly when the
//! transaction begins. Lazy selection should achieve an equal or higher cache
//! hit rate because it can adapt to whatever versions are in the cache.

use bench::BenchArgs;
use harness::{run_experiment, summary_line, DbKind, ExperimentConfig};
use txcache::TimestampPolicy;

fn main() {
    let args = BenchArgs::parse();
    let base = args.config(DbKind::InMemory);

    let lazy = run_experiment(&ExperimentConfig {
        policy: TimestampPolicy::Lazy,
        ..base
    })
    .expect("experiment failed");
    let eager = run_experiment(&ExperimentConfig {
        policy: TimestampPolicy::Eager,
        ..base
    })
    .expect("experiment failed");

    println!(
        "# Ablation: lazy vs eager timestamp selection (in-memory DB, 512MB cache, 30s staleness)"
    );
    println!("{}", summary_line("lazy (paper design)", &lazy));
    println!("{}", summary_line("eager (at BEGIN)", &eager));
    println!();
    println!(
        "hit-rate delta: {:+.1} percentage points in favour of lazy selection",
        (lazy.hit_rate - eager.hit_rate) * 100.0
    );
}
