//! Figure 7: relative peak throughput as a function of the staleness limit
//! (1–120 s), for the in-memory (512 MB cache) and disk-bound (9 GB cache)
//! configurations, normalized to the no-caching baseline.

use bench::BenchArgs;
use harness::{run_experiment, DbKind, ExperimentConfig};
use txcache::CacheMode;
use txtypes::Staleness;

fn main() {
    let args = BenchArgs::parse();
    let staleness_limits = [1u64, 5, 10, 20, 30, 60, 120];

    for (title, db_kind, cache_bytes) in [
        (
            "in-memory DB, 512MB cache",
            DbKind::InMemory,
            512usize << 20,
        ),
        ("disk-bound DB, 9GB cache", DbKind::DiskBound, 9usize << 30),
    ] {
        let base = ExperimentConfig {
            cache_bytes_full_scale: cache_bytes,
            ..args.config(db_kind)
        };
        let baseline = run_experiment(&ExperimentConfig {
            mode: CacheMode::Disabled,
            ..base
        })
        .expect("baseline failed");

        println!("# Figure 7: staleness limit vs relative throughput ({title})");
        println!("{:<12}{:>16}{:>14}", "staleness", "peak req/s", "relative");
        for secs in staleness_limits {
            let result = run_experiment(&ExperimentConfig {
                staleness: Staleness::seconds(secs),
                ..base
            })
            .expect("experiment failed");
            println!(
                "{:<12}{:>16.0}{:>13.2}x",
                format!("{secs}s"),
                result.peak_throughput,
                result.peak_throughput / baseline.peak_throughput
            );
        }
        println!(
            "{:<12}{:>16.0}{:>13.2}x  (no caching baseline)\n",
            "-", baseline.peak_throughput, 1.0
        );
    }
}
