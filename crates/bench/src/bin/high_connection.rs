//! Connection-ramp benchmark for the event-driven `txcached` server.
//!
//! The thread-per-connection server paid one OS thread (stack, scheduler
//! slot) per connection, so fan-in from many application servers was the
//! configuration it handled worst. The event-driven server multiplexes all
//! connections onto one epoll reactor plus a small worker pool, so holding
//! hundreds of mostly-idle connections should cost nothing and throughput
//! should stay flat as the connection count ramps.
//!
//! This binary measures exactly that: one server, a ramp of connection
//! counts (`--connections 1,16,64,128`), the same total number of warm
//! `VersionedGet`s driven at every point by a small fixed pool of client
//! threads that round-robin over their share of the connections. Reported
//! per point: aggregate throughput and p99 latency. The throughput series
//! is written as JSON and compared against
//! `crates/bench/BENCH_high_connection.baseline.json` by `ci.sh
//! --bench-smoke` (connection counts ride in the baseline's `threads`
//! field, and the ceiling is looser than the in-process gates' — this
//! bench shares the host's cores between client threads, reactor, and
//! workers, so it wobbles with the scheduler).
//!
//! ```text
//! high_connection [--connections 1,16,64,128] [--requests N] [--json PATH]
//!                 [--baseline PATH] [--max-regress 0.2]
//! ```

use std::net::TcpStream;
use std::time::Instant;

use bench::{gate_failures, BenchArgs, SweepReport};
use bytes::Bytes;
use cache_server::{NodeConfig, TxcachedServer};
use obs::HistogramSnapshot;
use txtypes::{CacheKey, TagSet, Timestamp, ValidityInterval, WallClock};
use wire::{FramedStream, Request, Response};

/// Keys warmed into the node before measuring.
const WARM_KEYS: u64 = 1_024;
const VALUE_BYTES: usize = 128;
/// Client threads driving the ramp — fixed and small so the ramp varies
/// only the connection count, never the driving parallelism.
const CLIENT_THREADS: usize = 4;

fn key(i: u64) -> CacheKey {
    CacheKey::new("get_item", format!("[{i}]"))
}

/// Deterministic mixer so the op stream needs no RNG dependency.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One client thread's share: closed-loop warm gets, round-robin over its
/// connections, per-op latency tallied in nanoseconds into a mergeable
/// histogram (no per-op Vec growth, no end-of-run sort).
fn drive(
    conns: &mut [FramedStream<TcpStream>],
    thread: u64,
    ops: u64,
    latencies_ns: &mut HistogramSnapshot,
) {
    for i in 0..ops {
        let conn = &mut conns[(i as usize) % conns.len()];
        let r = mix(thread.wrapping_mul(0x5_0000_0007).wrapping_add(i));
        let t = Instant::now();
        let got = conn
            .call(&Request::VersionedGet {
                key: key(r % WARM_KEYS),
                pinset_lo: Timestamp(500),
                pinset_hi: Timestamp(500),
                freshness_lo: Timestamp(500),
            })
            .expect("get");
        latencies_ns.record(t.elapsed().as_nanos() as u64);
        assert!(matches!(got, Response::Hit { .. }), "warm key must hit");
    }
}

fn parse_connections() -> Vec<usize> {
    let args: Vec<String> = std::env::args().collect();
    for i in 1..args.len() {
        if args[i] == "--connections" && i + 1 < args.len() {
            let parsed: Vec<usize> = args[i + 1]
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&c| c > 0)
                .collect();
            if !parsed.is_empty() {
                return parsed;
            }
        }
    }
    vec![1, 16, 64, 128]
}

fn main() {
    let args = BenchArgs::parse();
    let connections = parse_connections();
    // Each ramp point drives pure cache gets, so a proper sample is cheap.
    let requests = args.requests.max(10_000);

    println!(
        "high_connection: {} warm keys, {}-byte values, {} requests/point, \
         {} client thread(s), ramp {:?}",
        WARM_KEYS, VALUE_BYTES, requests, CLIENT_THREADS, connections
    );

    let server = TxcachedServer::bind(
        "127.0.0.1:0",
        "bench-node",
        NodeConfig {
            capacity_bytes: 64 << 20,
            ..NodeConfig::default()
        },
    )
    .expect("bind loopback txcached");
    let addr = server.local_addr();

    let warm_stream = TcpStream::connect(addr).expect("connect");
    warm_stream.set_nodelay(true).expect("set nodelay");
    let mut warm = FramedStream::new(warm_stream);
    for i in 0..WARM_KEYS {
        warm.call(&Request::Put {
            key: key(i),
            value: Bytes::from(vec![7u8; VALUE_BYTES]),
            validity: ValidityInterval::unbounded(Timestamp(1)),
            tags: TagSet::new(),
            now: WallClock::ZERO,
        })
        .expect("warm put");
    }
    warm.call(&Request::InvalidationBatch {
        events: Vec::new(),
        heartbeat: Timestamp(1_000_000),
    })
    .expect("warm heartbeat");
    drop(warm);

    println!(
        "\n  {:>11} {:>12} {:>12} {:>12}",
        "connections", "ops/s", "mean us", "p99 us"
    );
    let mut rates = Vec::with_capacity(connections.len());
    for &count in &connections {
        // All connections for this ramp point are opened before the clock
        // starts: the ramp measures holding + serving them, not dialling.
        let mut pool: Vec<Vec<FramedStream<TcpStream>>> =
            (0..CLIENT_THREADS.min(count)).map(|_| Vec::new()).collect();
        let threads = pool.len();
        for c in 0..count {
            let stream = TcpStream::connect(addr).expect("connect ramp");
            stream.set_nodelay(true).expect("set nodelay");
            pool[c % threads].push(FramedStream::new(stream));
        }
        let ops_per_thread = (requests / threads).max(1) as u64;
        let started = Instant::now();
        let mut all_latencies = HistogramSnapshot::default();
        std::thread::scope(|scope| {
            let handles: Vec<_> = pool
                .iter_mut()
                .enumerate()
                .map(|(thread, conns)| {
                    scope.spawn(move || {
                        let mut latencies = HistogramSnapshot::default();
                        drive(conns, thread as u64, ops_per_thread, &mut latencies);
                        latencies
                    })
                })
                .collect();
            for handle in handles {
                all_latencies.merge(&handle.join().expect("client thread"));
            }
        });
        let elapsed = started.elapsed().as_secs_f64().max(1e-9);
        let total_ops = ops_per_thread * threads as u64;
        let rate = total_ops as f64 / elapsed;
        let mean_us = all_latencies.mean() / 1_000.0;
        let p99_us = all_latencies.percentile(0.99) as f64 / 1_000.0;
        println!("  {count:>11} {rate:>12.0} {mean_us:>12.2} {p99_us:>12.2}");
        rates.push(rate);
    }

    let stats = server.stats();
    println!(
        "\n  server: {} connections accepted, {} requests served",
        stats.connections_accepted, stats.requests
    );

    let report = SweepReport {
        available_parallelism: std::thread::available_parallelism().map_or(1, usize::from),
        threads: connections.clone(),
        txn_per_sec: rates,
    };
    if let Some(path) = &args.json_out {
        std::fs::write(path, report.to_json()).expect("failed to write sweep JSON");
        println!("\n  sweep written to {path}");
    }
    let failures = gate_failures(&args, &report);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("BENCH GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
}
