//! Database statistics counters.

use serde::{Deserialize, Serialize};

/// Counters accumulated over the lifetime of a [`crate::Database`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DbStats {
    /// SELECT queries executed.
    pub queries: u64,
    /// Rows inserted.
    pub inserts: u64,
    /// Rows updated.
    pub updates: u64,
    /// Rows deleted.
    pub deletes: u64,
    /// Transactions committed (read-only and read/write).
    pub commits: u64,
    /// Read/write commits that published invalidations.
    pub invalidating_commits: u64,
    /// Transactions aborted by the application.
    pub aborts: u64,
    /// Write conflicts detected (first-updater-wins failures).
    pub serialization_failures: u64,
    /// Snapshots pinned.
    pub pins: u64,
    /// Snapshots unpinned.
    pub unpins: u64,
    /// Tuple versions reclaimed by vacuum.
    pub vacuumed_versions: u64,
}

impl DbStats {
    /// Total write statements executed.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.inserts + self.updates + self.deletes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_sums_components() {
        let s = DbStats {
            inserts: 1,
            updates: 2,
            deletes: 3,
            ..DbStats::default()
        };
        assert_eq!(s.writes(), 6);
        assert_eq!(DbStats::default().writes(), 0);
    }
}
