//! Length-prefixed framing over any `Read`/`Write` transport.
//!
//! A frame is a little-endian `u32` body length followed by the body. The
//! framing layer is transport-agnostic: the `txcached` server and the
//! remote client both run it over [`crate::Transport`] implementations
//! (real `TcpStream`s or the chaos-testing [`crate::sim::SimConn`]), and
//! the tests run it over in-memory buffers.
//!
//! ## Request correlation (protocol v2)
//!
//! Every body carried through a [`FramedStream`] starts with an 8-byte
//! little-endian **sequence number**. The client stamps each request with
//! the next value of a per-connection counter; the server echoes the
//! request's sequence number in its response. The stream layer verifies,
//! on every received response, that the echoed number matches the oldest
//! outstanding request — so a duplicated, reordered, or dropped frame
//! (which shifts the pairing of requests to responses) is detected as
//! [`WireError::Desync`] *before* a wrong value can be attributed to the
//! wrong request. Clients treat a desync like any transport failure: drop
//! the connection, degrade to a miss, reconnect (and re-seal, §4.2).
//!
//! ## Partial reads
//!
//! [`FramedStream`] reads are *resumable*: if the transport returns a
//! timeout mid-frame (a slow peer, an injected delay), the bytes already
//! consumed are kept, and the next receive call continues where the last
//! one stopped instead of desynchronizing the stream or surfacing a decode
//! error. Only clean EOFs at a frame boundary are reported as end of
//! stream; an EOF mid-frame is [`WireError::Truncated`].

use std::collections::VecDeque;
use std::io::{Read, Write};

use crate::msg::{Request, Response};
use crate::WireError;

/// The protocol version this crate encodes and accepts. Version 2 added
/// the per-request sequence number carried by [`FramedStream`]; version 3
/// added `history_floor_drops` to the `StatsSnapshot` layout and the
/// per-shard stats request/response pair.
pub const PROTOCOL_VERSION: u8 = 3;

/// Upper bound on a frame body; larger declared lengths are rejected before
/// any allocation happens.
pub const MAX_FRAME_BYTES: usize = 32 << 20;

/// Bytes of sequence number prefixed to every framed message body.
pub const SEQ_BYTES: usize = 8;

/// Writes one frame (length prefix + body) and flushes.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> crate::Result<()> {
    if body.len() > MAX_FRAME_BYTES {
        return Err(WireError::TooLarge(body.len()));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame body from a stateless reader. Returns `Ok(None)` on a
/// clean EOF at a frame boundary (the peer closed the connection between
/// frames).
///
/// This free function has no resumption state: a timeout mid-frame loses
/// the partial bytes. Connection handlers should read through
/// [`FramedStream`], which resumes cleanly.
pub fn read_frame(r: &mut impl Read) -> crate::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // A clean close before any length byte is a normal disconnect; a close
    // mid-prefix or mid-body is a truncated frame.
    match r.read(&mut len_buf)? {
        0 => return Ok(None),
        n => r.read_exact(&mut len_buf[n..]).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                WireError::Truncated
            } else {
                WireError::Io(e)
            }
        })?,
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::TooLarge(len));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    })?;
    Ok(Some(body))
}

/// A bidirectional framed message stream over any `Read + Write` transport.
///
/// Used symmetrically: the server reads requests and writes responses, the
/// client writes requests and reads responses. `send_request` and
/// `recv_response` are separate calls so a client can *pipeline* — write
/// several requests before reading the (in-order, sequence-verified)
/// responses back.
#[derive(Debug)]
pub struct FramedStream<S> {
    stream: S,
    /// The in-progress incoming frame (length prefix included), kept
    /// across calls so a timeout mid-frame resumes instead of
    /// desynchronizing. Zero-extended to the currently known frame size;
    /// `rx_filled` tracks how many bytes are real.
    rx_partial: Vec<u8>,
    /// How many bytes of `rx_partial` have been received so far.
    rx_filled: usize,
    /// The next request sequence number to stamp.
    tx_seq: u64,
    /// Sequence numbers of sent requests whose responses are outstanding,
    /// oldest first.
    awaiting: VecDeque<u64>,
}

impl<S: Read + Write> FramedStream<S> {
    /// Wraps a transport.
    #[must_use]
    pub fn new(stream: S) -> FramedStream<S> {
        FramedStream {
            stream,
            rx_partial: Vec::new(),
            rx_filled: 0,
            tx_seq: 1,
            awaiting: VecDeque::new(),
        }
    }

    /// Returns the underlying transport.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.stream
    }

    /// Borrows the underlying transport (e.g. to adjust socket timeouts).
    #[must_use]
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Mutably borrows the underlying transport, for callers that need to
    /// read or write raw frames alongside the typed helpers.
    #[must_use]
    pub fn transport_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    /// Reads one frame body, resuming any partial frame left by an earlier
    /// timeout. `Ok(None)` on a clean EOF at a frame boundary.
    pub fn recv_frame(&mut self) -> crate::Result<Option<Vec<u8>>> {
        loop {
            let have = self.rx_filled;
            let need = if have < 4 {
                4
            } else {
                let len = u32::from_le_bytes([
                    self.rx_partial[0],
                    self.rx_partial[1],
                    self.rx_partial[2],
                    self.rx_partial[3],
                ]) as usize;
                if len > MAX_FRAME_BYTES {
                    self.rx_partial.clear();
                    self.rx_filled = 0;
                    return Err(WireError::TooLarge(len));
                }
                if have == 4 + len {
                    let mut frame = std::mem::take(&mut self.rx_partial);
                    self.rx_filled = 0;
                    frame.drain(..4);
                    return Ok(Some(frame));
                }
                4 + len
            };
            // Zero-extend once per stage (prefix, then body) — the fill
            // cursor makes chunked delivery linear, not quadratic.
            if self.rx_partial.len() != need {
                self.rx_partial.resize(need, 0);
            }
            match self.stream.read(&mut self.rx_partial[have..need]) {
                Ok(0) => {
                    if have == 0 {
                        return Ok(None);
                    }
                    return Err(WireError::Truncated);
                }
                Ok(n) => self.rx_filled = have + n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // The partial frame (and fill cursor) stay put: a retry
                    // after a timeout resumes exactly where this read
                    // stopped.
                    return Err(WireError::Io(e));
                }
            }
        }
    }

    /// Sends one request frame, stamped with the next sequence number. The
    /// number is remembered so the matching response can be verified.
    pub fn send_request(&mut self, request: &Request) -> crate::Result<()> {
        let seq = self.tx_seq;
        let mut body = Vec::with_capacity(SEQ_BYTES + 32);
        body.extend_from_slice(&seq.to_le_bytes());
        body.extend_from_slice(&request.encode());
        write_frame(&mut self.stream, &body)?;
        // Count the request only once it is fully written: a failed write
        // never produces a response.
        self.tx_seq += 1;
        self.awaiting.push_back(seq);
        Ok(())
    }

    /// Receives one response frame and verifies its echoed sequence number
    /// against the oldest outstanding request; `Ok(None)` on clean
    /// disconnect. A mismatch (duplicated, reordered, or dropped frame
    /// upstream) is [`WireError::Desync`] — the connection must be dropped.
    pub fn recv_response(&mut self) -> crate::Result<Option<Response>> {
        match self.recv_frame()? {
            None => Ok(None),
            Some(body) => {
                let (seq, rest) = split_seq(&body)?;
                let want = self.awaiting.front().copied();
                match want {
                    Some(want) if want == seq => {
                        self.awaiting.pop_front();
                    }
                    want => return Err(WireError::Desync { got: seq, want }),
                }
                Ok(Some(Response::decode(rest)?))
            }
        }
    }

    /// Receives one request frame, returning its sequence number alongside
    /// the body's decode result; `Ok(None)` on clean disconnect.
    ///
    /// Frame-level failures (truncation, oversize, transport errors) are
    /// the outer `Err` — the stream is desynchronized and must be closed.
    /// A body that fails to *decode* is the inner `Err`: the stream is
    /// still at a frame boundary, so the server can answer with an error
    /// frame (echoing the sequence number) and keep serving.
    pub fn recv_request(&mut self) -> crate::Result<Option<(u64, crate::Result<Request>)>> {
        match self.recv_frame()? {
            None => Ok(None),
            Some(body) => {
                let (seq, rest) = split_seq(&body)?;
                Ok(Some((seq, Request::decode(rest))))
            }
        }
    }

    /// Sends one response frame echoing `seq`, the sequence number of the
    /// request being answered.
    pub fn send_response(&mut self, seq: u64, response: &Response) -> crate::Result<()> {
        let mut body = Vec::with_capacity(SEQ_BYTES + 32);
        body.extend_from_slice(&seq.to_le_bytes());
        body.extend_from_slice(&response.encode());
        write_frame(&mut self.stream, &body)
    }

    /// Sends a request and waits for its (sequence-verified) response — the
    /// unpipelined convenience path. A clean disconnect mid-call is an
    /// error here.
    pub fn call(&mut self, request: &Request) -> crate::Result<Response> {
        self.send_request(request)?;
        match self.recv_response()? {
            Some(r) => Ok(r),
            None => Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed awaiting response",
            ))),
        }
    }
}

/// Splits the 8-byte sequence prefix off a framed body.
fn split_seq(body: &[u8]) -> crate::Result<(u64, &[u8])> {
    if body.len() < SEQ_BYTES {
        return Err(WireError::Truncated);
    }
    let seq = u64::from_le_bytes(body[..SEQ_BYTES].try_into().expect("8 bytes"));
    Ok((seq, &body[SEQ_BYTES..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"second").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"first");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"second");
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn truncated_frames_are_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        // Cut the body short.
        let mut cur = Cursor::new(&buf[..buf.len() - 2]);
        assert!(matches!(read_frame(&mut cur), Err(WireError::Truncated)));
        // Cut the length prefix short.
        let mut cur = Cursor::new(&buf[..2]);
        assert!(matches!(read_frame(&mut cur), Err(WireError::Truncated)));
        // The stateful reader agrees on both.
        let mut framed = FramedStream::new(Cursor::new(buf[..buf.len() - 2].to_vec()));
        assert!(matches!(framed.recv_frame(), Err(WireError::Truncated)));
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cur = Cursor::new(buf.clone());
        assert!(matches!(read_frame(&mut cur), Err(WireError::TooLarge(_))));
        let mut framed = FramedStream::new(Cursor::new(buf));
        assert!(matches!(framed.recv_frame(), Err(WireError::TooLarge(_))));
    }

    /// A transport that interleaves short chunks with timeouts, to exercise
    /// the resumable read path.
    struct Stutter {
        data: Vec<u8>,
        pos: usize,
        /// Return a timeout error on every other read.
        hiccup: bool,
    }

    impl Read for Stutter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.hiccup = !self.hiccup;
            if self.hiccup {
                return Err(std::io::Error::new(std::io::ErrorKind::TimedOut, "stutter"));
            }
            let n = buf.len().min(3).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    impl Write for Stutter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn mid_frame_timeouts_resume_cleanly() {
        let mut data = Vec::new();
        write_frame(&mut data, b"interrupted payload").unwrap();
        write_frame(&mut data, b"second").unwrap();
        let mut framed = FramedStream::new(Stutter {
            data,
            pos: 0,
            hiccup: false,
        });
        let mut frames = Vec::new();
        while frames.len() < 2 {
            match framed.recv_frame() {
                Ok(Some(body)) => frames.push(body),
                Ok(None) => panic!("unexpected EOF"),
                Err(WireError::Io(e)) if e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(frames[0], b"interrupted payload");
        assert_eq!(frames[1], b"second");
    }

    /// Reads from a prepared buffer, discards writes — so a test can send
    /// a request (registering its sequence number) and then feed the
    /// client an arbitrary response stream.
    struct Duplex {
        input: Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Read for Duplex {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Duplex {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn responses_with_wrong_sequence_numbers_are_desyncs() {
        // Hand-build a stream whose single response echoes sequence 9
        // while the client's outstanding request is sequence 1.
        let mut wire_bytes = Vec::new();
        let mut body = 9u64.to_le_bytes().to_vec();
        body.extend_from_slice(&Response::PutAck.encode());
        write_frame(&mut wire_bytes, &body).unwrap();

        let mut framed = FramedStream::new(Duplex {
            input: Cursor::new(wire_bytes),
            output: Vec::new(),
        });
        framed.send_request(&Request::Ping { nonce: 1 }).unwrap();
        assert!(matches!(
            framed.recv_response(),
            Err(WireError::Desync {
                got: 9,
                want: Some(1)
            })
        ));
    }

    #[test]
    fn unsolicited_responses_are_desyncs() {
        let mut wire_bytes = Vec::new();
        let mut body = 1u64.to_le_bytes().to_vec();
        body.extend_from_slice(&Response::PutAck.encode());
        write_frame(&mut wire_bytes, &body).unwrap();
        let mut framed = FramedStream::new(Cursor::new(wire_bytes));
        assert!(matches!(
            framed.recv_response(),
            Err(WireError::Desync { got: 1, want: None })
        ));
    }
}
