//! Query validity-interval tracking (§5.2).
//!
//! While executing a read-only query the engine accumulates two quantities:
//!
//! * the **result tuple validity** — the intersection of the committed
//!   validity intervals of every tuple version that appears in the result;
//! * the **invalidity mask** — the union of the committed validity intervals
//!   of every tuple version that was *discarded by a visibility check* (a
//!   phantom: it did not appear in the result but would have at some other
//!   timestamp).
//!
//! The query's reported validity interval is the largest interval around the
//! query's snapshot timestamp that lies inside the result validity and
//! outside the mask.

use txtypes::{IntervalSet, Timestamp, ValidityInterval};

/// Accumulates validity information for one query execution.
#[derive(Debug, Clone)]
pub struct ValidityTracker {
    enabled: bool,
    result_validity: ValidityInterval,
    invalidity_mask: IntervalSet,
    visible_tuples: u64,
    masked_tuples: u64,
}

impl ValidityTracker {
    /// Creates a tracker. When `enabled` is false every observation is a
    /// no-op and [`finalize`](Self::finalize) returns a point interval at the
    /// snapshot; this models the "stock database" baseline used in the §8.1
    /// overhead comparison.
    #[must_use]
    pub fn new(enabled: bool) -> ValidityTracker {
        ValidityTracker {
            enabled,
            result_validity: ValidityInterval::ALL,
            invalidity_mask: IntervalSet::new(),
            visible_tuples: 0,
            masked_tuples: 0,
        }
    }

    /// Records a tuple version that is part of the result.
    pub fn observe_visible(&mut self, validity: ValidityInterval) {
        self.visible_tuples += 1;
        if !self.enabled {
            return;
        }
        self.result_validity = self
            .result_validity
            .intersect(&validity)
            // Visible tuples all contain the snapshot timestamp, so the
            // intersection can only be empty if the caller mixed snapshots;
            // fall back to the narrower of the two rather than panicking.
            .unwrap_or(validity);
    }

    /// Records a tuple version that was discarded because it failed the
    /// visibility check. Versions created by still-pending transactions have
    /// no committed validity and contribute nothing.
    pub fn observe_invisible(&mut self, validity: Option<ValidityInterval>) {
        self.masked_tuples += 1;
        if !self.enabled {
            return;
        }
        if let Some(iv) = validity {
            self.invalidity_mask.insert(iv);
        }
    }

    /// Merges another tracker (e.g. from a sub-plan) into this one.
    pub fn merge(&mut self, other: &ValidityTracker) {
        self.visible_tuples += other.visible_tuples;
        self.masked_tuples += other.masked_tuples;
        if !self.enabled {
            return;
        }
        self.result_validity = self
            .result_validity
            .intersect(&other.result_validity)
            .unwrap_or(other.result_validity);
        self.invalidity_mask = self.invalidity_mask.union(&other.invalidity_mask);
    }

    /// Computes the final validity interval for a query that ran at
    /// `snapshot_ts`.
    ///
    /// The result always contains `snapshot_ts`. If tracking is disabled the
    /// result is the degenerate point interval `[snapshot_ts, snapshot_ts+1)`.
    #[must_use]
    pub fn finalize(&self, snapshot_ts: Timestamp) -> ValidityInterval {
        if !self.enabled {
            return ValidityInterval::point(snapshot_ts);
        }
        self.invalidity_mask
            .gap_around(self.result_validity, snapshot_ts)
            .unwrap_or_else(|| ValidityInterval::point(snapshot_ts))
    }

    /// Number of visible tuples observed (for statistics).
    #[must_use]
    pub fn visible_tuples(&self) -> u64 {
        self.visible_tuples
    }

    /// Number of visibility-failed tuples observed (for statistics).
    #[must_use]
    pub fn masked_tuples(&self) -> u64 {
        self.masked_tuples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: u64, hi: u64) -> ValidityInterval {
        ValidityInterval::bounded(Timestamp(lo), Timestamp(hi)).unwrap()
    }

    #[test]
    fn empty_query_is_valid_everywhere() {
        let t = ValidityTracker::new(true);
        assert_eq!(t.finalize(Timestamp(46)), ValidityInterval::ALL);
    }

    #[test]
    fn figure_4_example() {
        // Tuples 1 and 2 visible with validities [?,47) and [44,?); tuples 3
        // and 4 invisible with validities [40,45) and [48,∞).
        let mut t = ValidityTracker::new(true);
        t.observe_visible(b(30, 47));
        t.observe_visible(ValidityInterval::unbounded(Timestamp(44)));
        t.observe_invisible(Some(b(40, 45)));
        t.observe_invisible(Some(ValidityInterval::unbounded(Timestamp(48))));
        assert_eq!(t.finalize(Timestamp(46)), b(45, 47));
        assert_eq!(t.visible_tuples(), 2);
        assert_eq!(t.masked_tuples(), 2);
    }

    #[test]
    fn still_valid_result_is_unbounded() {
        let mut t = ValidityTracker::new(true);
        t.observe_visible(ValidityInterval::unbounded(Timestamp(10)));
        t.observe_visible(ValidityInterval::unbounded(Timestamp(20)));
        assert_eq!(
            t.finalize(Timestamp(25)),
            ValidityInterval::unbounded(Timestamp(20))
        );
    }

    #[test]
    fn pending_phantoms_do_not_constrain() {
        let mut t = ValidityTracker::new(true);
        t.observe_visible(ValidityInterval::unbounded(Timestamp(10)));
        t.observe_invisible(None);
        assert_eq!(
            t.finalize(Timestamp(25)),
            ValidityInterval::unbounded(Timestamp(10))
        );
    }

    #[test]
    fn disabled_tracker_returns_point() {
        let mut t = ValidityTracker::new(false);
        t.observe_visible(b(1, 100));
        t.observe_invisible(Some(b(1, 100)));
        assert_eq!(
            t.finalize(Timestamp(50)),
            ValidityInterval::point(Timestamp(50))
        );
    }

    #[test]
    fn merge_combines_both_sides() {
        let mut a = ValidityTracker::new(true);
        a.observe_visible(b(10, 50));
        let mut c = ValidityTracker::new(true);
        c.observe_visible(b(20, 60));
        c.observe_invisible(Some(b(40, 45)));
        a.merge(&c);
        // Result validity [20,50), mask [40,45); query at 30 → [20,40).
        assert_eq!(a.finalize(Timestamp(30)), b(20, 40));
        assert_eq!(a.visible_tuples(), 2);
    }

    #[test]
    fn finalize_never_excludes_snapshot() {
        // Pathological: mask covers the snapshot (can happen only with mixed
        // snapshots); we still return a point interval containing it.
        let mut t = ValidityTracker::new(true);
        t.observe_visible(b(10, 60));
        t.observe_invisible(Some(b(20, 40)));
        let iv = t.finalize(Timestamp(30));
        assert!(iv.contains(Timestamp(30)));
        assert_eq!(iv, ValidityInterval::point(Timestamp(30)));
    }
}
