//! # pincushion — the pinned-snapshot registry (§5.4)
//!
//! The pincushion is the lightweight daemon that keeps track of which
//! database snapshots are pinned, when (in wall-clock time) each was pinned,
//! and how many running transactions might be using it. When the TxCache
//! library begins a read-only transaction it asks the pincushion for every
//! pinned snapshot fresh enough for the transaction's staleness limit; the
//! returned set becomes the transaction's initial pin set (§6.2). The
//! pincushion also reaps old, unused snapshots by asking the database to
//! `UNPIN` them.
//!
//! In the paper the pincushion is a separate network daemon; here it is an
//! in-process service (see DESIGN.md for the substitution rationale). It is
//! internally locked so any number of simulated application servers can share
//! one instance.

#![forbid(unsafe_code)]

pub mod registry;

pub use registry::{Pincushion, PincushionConfig, PincushionStats, PinnedSnapshot};
