//! One key-hash shard of a [`crate::CacheNode`].
//!
//! A shard owns every index for its slice of the key space — the entry map,
//! the per-key version lists, the tag/table invalidation indexes, and the
//! byte accounting — behind a single reader/writer lock. Lookups take the
//! shared lock (their LRU touch is an atomic store on the entry, so they
//! never upgrade); inserts, invalidations, seals, and evictions take the
//! exclusive lock of the shards they affect and nothing else.
//!
//! Lock-acquisition counters mirror `mvdb`'s table shards: every acquisition
//! is counted, and acquisitions that could not be granted immediately are
//! counted again as waits, making cache-tier contention observable through
//! [`crate::CacheNode::shard_stats`].

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use txtypes::{CacheKey, InvalidationTag, TagSet};

use crate::entry::CacheEntry;
use crate::stats::AtomicCacheStats;

/// Internal identifier of a stored entry (allocated node-wide).
pub(crate) type EntryId = u64;

/// A cache entry plus its access stamp. The stamp is atomic so a lookup can
/// refresh it while holding only the shard's shared lock; eviction orders
/// unbounded entries by it.
#[derive(Debug)]
pub(crate) struct StoredEntry {
    pub entry: CacheEntry,
    pub last_access: AtomicU64,
}

/// The lock-protected indexes of one shard.
#[derive(Debug, Default)]
pub(crate) struct ShardData {
    pub entries: HashMap<EntryId, StoredEntry>,
    pub by_key: HashMap<CacheKey, Vec<EntryId>>,
    /// Still-valid entries indexed by each of their dependency tags.
    pub tag_index: HashMap<InvalidationTag, HashSet<EntryId>>,
    /// Still-valid entries indexed by dependency table (for wildcard
    /// invalidations).
    pub table_index: HashMap<String, HashSet<EntryId>>,
    /// Keys that have ever been inserted, for compulsory-miss
    /// classification.
    pub known_keys: HashSet<CacheKey>,
    pub used_bytes: usize,
}

impl ShardData {
    /// Entry ids whose still-valid entries an invalidation with `tags`
    /// would truncate on this shard.
    pub fn affected_by(&self, tags: &TagSet) -> HashSet<EntryId> {
        let mut affected: HashSet<EntryId> = HashSet::new();
        for tag in tags.iter() {
            if tag.is_wildcard() {
                if let Some(ids) = self.table_index.get(&tag.table) {
                    affected.extend(ids.iter().copied());
                }
            } else {
                if let Some(ids) = self.tag_index.get(tag) {
                    affected.extend(ids.iter().copied());
                }
                // Entries that depend on the whole table (wildcard
                // dependency) are affected by any keyed update on that table.
                if let Some(ids) = self.tag_index.get(&InvalidationTag::wildcard(&tag.table)) {
                    affected.extend(ids.iter().copied());
                }
            }
        }
        affected
    }

    /// Whether an invalidation with `tags` touches anything on this shard.
    /// Used as a shared-lock pre-check so unaffected shards are never
    /// write-locked by the invalidation stream.
    pub fn touched_by(&self, tags: &TagSet) -> bool {
        tags.iter().any(|tag| {
            if tag.is_wildcard() {
                self.table_index.contains_key(&tag.table)
            } else {
                self.tag_index.contains_key(tag)
                    || self
                        .tag_index
                        .contains_key(&InvalidationTag::wildcard(&tag.table))
            }
        })
    }

    /// Drops a no-longer-still-valid entry from the tag indexes.
    pub fn unindex_tags(&mut self, id: EntryId, tags: &TagSet) {
        for tag in tags.iter() {
            if let Some(set) = self.tag_index.get_mut(tag) {
                set.remove(&id);
                if set.is_empty() {
                    self.tag_index.remove(tag);
                }
            }
            if let Some(set) = self.table_index.get_mut(&tag.table) {
                set.remove(&id);
                if set.is_empty() {
                    self.table_index.remove(&tag.table);
                }
            }
        }
    }

    /// Removes an entry from every index and returns it.
    pub fn remove_entry(&mut self, id: EntryId) -> Option<CacheEntry> {
        let stored = self.entries.remove(&id)?;
        let entry = stored.entry;
        self.used_bytes = self.used_bytes.saturating_sub(entry.size_bytes());
        if let Some(ids) = self.by_key.get_mut(&entry.key) {
            ids.retain(|e| *e != id);
            if ids.is_empty() {
                self.by_key.remove(&entry.key);
            }
        }
        let tags = entry.tags.clone();
        self.unindex_tags(id, &tags);
        Some(entry)
    }
}

/// One shard: its data behind a counted reader/writer lock, plus its live
/// statistics bank.
#[derive(Debug, Default)]
pub(crate) struct Shard {
    data: RwLock<ShardData>,
    pub stats: AtomicCacheStats,
    pub read_locks: AtomicU64,
    pub write_locks: AtomicU64,
    pub read_waits: AtomicU64,
    pub write_waits: AtomicU64,
}

impl Shard {
    /// Takes the shared lock, counting the acquisition and whether it had to
    /// wait behind a writer.
    pub fn read(&self) -> RwLockReadGuard<'_, ShardData> {
        self.read_locks.fetch_add(1, Ordering::Relaxed);
        if let Some(guard) = self.data.try_read() {
            return guard;
        }
        self.read_waits.fetch_add(1, Ordering::Relaxed);
        self.data.read()
    }

    /// Takes the exclusive lock, counting the acquisition and whether it had
    /// to wait.
    pub fn write(&self) -> RwLockWriteGuard<'_, ShardData> {
        self.write_locks.fetch_add(1, Ordering::Relaxed);
        if let Some(guard) = self.data.try_write() {
            return guard;
        }
        self.write_waits.fetch_add(1, Ordering::Relaxed);
        self.data.write()
    }

    /// Takes the shared lock *without* counting it — for telemetry paths
    /// (stats, shard snapshots, invariant checks) that must not pollute the
    /// contention counters they report.
    pub fn peek(&self) -> RwLockReadGuard<'_, ShardData> {
        self.data.read()
    }

    /// Zeroes the lock counters (the stats bank has its own reset).
    pub fn reset_lock_stats(&self) {
        self.read_locks.store(0, Ordering::Relaxed);
        self.write_locks.store(0, Ordering::Relaxed);
        self.read_waits.store(0, Ordering::Relaxed);
        self.write_waits.store(0, Ordering::Relaxed);
    }
}
