//! Loopback protocol-cost benchmark: the same cache workload driven through
//! the in-process backend and through `txcached` TCP servers on 127.0.0.1,
//! reporting hit latency and throughput for both. The gap between the two
//! columns *is* the protocol cost (framing, syscalls, loopback RTT) that the
//! in-process reproduction could never measure.
//!
//! A replicated-write phase then re-fills through a second client running
//! R = 2: every `Put` fans out to the key's full replica set, the servers'
//! insertion counters must show exactly 2x the entries, and the measured
//! write amplification (R=1 fill throughput over R=2 fill throughput) is
//! both printed and — with `--baseline` — gated against a checked-in
//! recording like the other CI bench sweeps.
//!
//! ```text
//! net_loopback [--nodes N] [--keys K] [--ops OPS] [--value-bytes B]
//!              [--json PATH] [--baseline PATH] [--max-regress F]
//! ```

use std::sync::Arc;
use std::time::Instant;

use bench::{gate_failures, BenchArgs, SweepReport};
use bytes::Bytes;
use cache_server::{CacheCluster, LookupRequest, NodeConfig, TxcachedServer};
use obs::HistogramSnapshot;
use txcache::backend::{CacheBackend, RemoteCluster, RemoteOptions};
use txtypes::{CacheKey, InvalidationTag, TagSet, Timestamp, ValidityInterval, WallClock};

struct Args {
    nodes: usize,
    keys: usize,
    ops: usize,
    value_bytes: usize,
    /// Write the replication sweep as JSON to this path (`--json`).
    json_out: Option<String>,
    /// Gate the replication sweep against this baseline (`--baseline`).
    baseline: Option<String>,
    /// Allowed fractional regression against the baseline (`--max-regress`).
    max_regress: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        nodes: 2,
        keys: 512,
        ops: 20_000,
        value_bytes: 256,
        json_out: None,
        baseline: None,
        max_regress: 0.5,
    };
    let argv: Vec<String> = std::env::args().collect();
    let usize_at = |i: usize, what: &str| {
        argv.get(i)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                eprintln!("bad or missing value for {what}");
                std::process::exit(2);
            })
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--nodes" => {
                args.nodes = usize_at(i + 1, "--nodes").max(1);
                i += 1;
            }
            "--keys" => {
                args.keys = usize_at(i + 1, "--keys").max(1);
                i += 1;
            }
            "--ops" => {
                args.ops = usize_at(i + 1, "--ops").max(1);
                i += 1;
            }
            "--value-bytes" => {
                args.value_bytes = usize_at(i + 1, "--value-bytes");
                i += 1;
            }
            "--json" => {
                args.json_out = argv.get(i + 1).cloned();
                i += 1;
            }
            "--baseline" => {
                args.baseline = argv.get(i + 1).cloned();
                i += 1;
            }
            "--max-regress" => {
                args.max_regress = argv
                    .get(i + 1)
                    .and_then(|v| v.parse::<f64>().ok())
                    .map_or(args.max_regress, |v| v.clamp(0.0, 1.0));
                i += 1;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: net_loopback [--nodes N] [--keys K] [--ops OPS] [--value-bytes B] \
                     [--json PATH] [--baseline PATH] [--max-regress F]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// Keys per batched lookup in the scatter-gather phase.
const MULTI_BATCH: usize = 16;

struct BackendReport {
    label: &'static str,
    fill_ops_per_sec: f64,
    hit_mean_us: f64,
    hit_p50_us: f64,
    hit_p99_us: f64,
    hit_ops_per_sec: f64,
    /// Mean latency of one MULTI_BATCH-key `lookup_many` round trip.
    multi_mean_us: f64,
    multi_p50_us: f64,
    multi_p99_us: f64,
    invalidation_batches_per_sec: f64,
    hit_rate: f64,
}

/// Exact median (upper median for even counts) by selection — no full
/// sort, no `len * p / 100` index bias. Only the p50s feeding the
/// protocol-efficiency gate use this; every other stat comes from the
/// shared log2 histograms.
fn exact_median_us(samples_ns: &mut [u64]) -> f64 {
    let mid = samples_ns.len() / 2;
    let (_, m, _) = samples_ns.select_nth_unstable(mid);
    *m as f64 / 1_000.0
}

fn key(i: usize) -> CacheKey {
    CacheKey::new("bench", format!("[{i}]"))
}

fn tags(i: usize) -> TagSet {
    [InvalidationTag::keyed("items", format!("id={i}"))]
        .into_iter()
        .collect()
}

/// Drives fill + hit + invalidation phases through one backend.
fn drive(label: &'static str, backend: &dyn CacheBackend, args: &Args) -> BackendReport {
    let value = Bytes::from(vec![0x5Au8; args.value_bytes]);

    // Fill phase: every key inserted once (remote: pipelined puts).
    let t0 = Instant::now();
    for i in 0..args.keys {
        backend.insert(
            key(i),
            value.clone(),
            ValidityInterval::unbounded(Timestamp(1)),
            tags(i),
            WallClock::ZERO,
        );
    }
    // Force outstanding pipelined acks to be collected so the fill phase is
    // fully accounted before timing lookups.
    let _ = backend.stats();
    let fill_secs = t0.elapsed().as_secs_f64();

    // Hit phase: uniform lookups over the filled keys, per-op latency
    // (captured in nanoseconds — in-process hits are far below 1 us)
    // tallied into a mergeable log2 histogram; the raw samples are also
    // kept because the protocol-efficiency gate compares two medians
    // whose true ratio sits near the gate line, and log2-bucket
    // percentiles (bucket upper edges, exact only to within 2x) are too
    // coarse for that one comparison.
    let request = LookupRequest::range(Timestamp(1), Timestamp(1));
    let mut latencies_ns = HistogramSnapshot::default();
    let mut hit_samples_ns = Vec::with_capacity(args.ops);
    let t0 = Instant::now();
    for op in 0..args.ops {
        let k = key(op % args.keys);
        let t = Instant::now();
        let outcome = backend.lookup(&k, &request);
        let ns = t.elapsed().as_nanos() as u64;
        latencies_ns.record(ns);
        hit_samples_ns.push(ns);
        assert!(outcome.is_hit(), "warm lookup must hit ({label})");
    }
    let hit_secs = t0.elapsed().as_secs_f64();

    // Batched-read phase: the same warm keys fetched MULTI_BATCH at a time
    // through lookup_many — on the remote backend one scatter-gather
    // MultiGet round trip per involved node instead of MULTI_BATCH serial
    // round trips.
    let multi_rounds = (args.ops / MULTI_BATCH).max(1);
    let mut multi_latencies_ns = HistogramSnapshot::default();
    let mut multi_samples_ns = Vec::with_capacity(multi_rounds);
    for round in 0..multi_rounds {
        let batch: Vec<CacheKey> = (0..MULTI_BATCH)
            .map(|j| key((round * MULTI_BATCH + j) % args.keys))
            .collect();
        let t = Instant::now();
        let outcomes = backend.lookup_many(&batch, &request);
        let ns = t.elapsed().as_nanos() as u64;
        multi_latencies_ns.record(ns);
        multi_samples_ns.push(ns);
        assert!(
            outcomes.iter().all(cache_server::LookupOutcome::is_hit),
            "warm batched lookup must hit ({label})"
        );
    }

    // Invalidation phase: empty batches with advancing heartbeats measure
    // the fan-out cost of the stream.
    let inval_rounds = 1_000usize;
    let t0 = Instant::now();
    for round in 0..inval_rounds {
        backend.apply_invalidations(&[], Timestamp(2 + round as u64));
    }
    let inval_secs = t0.elapsed().as_secs_f64();

    let stats = backend.stats();
    BackendReport {
        label,
        fill_ops_per_sec: args.keys as f64 / fill_secs.max(1e-9),
        hit_mean_us: latencies_ns.mean() / 1_000.0,
        hit_p50_us: exact_median_us(&mut hit_samples_ns),
        hit_p99_us: latencies_ns.percentile(0.99) as f64 / 1_000.0,
        hit_ops_per_sec: args.ops as f64 / hit_secs.max(1e-9),
        multi_mean_us: multi_latencies_ns.mean() / 1_000.0,
        multi_p50_us: exact_median_us(&mut multi_samples_ns),
        multi_p99_us: multi_latencies_ns.percentile(0.99) as f64 / 1_000.0,
        invalidation_batches_per_sec: inval_rounds as f64 / inval_secs.max(1e-9),
        hit_rate: stats.hit_rate(),
    }
}

fn main() {
    let args = parse_args();

    println!(
        "# Loopback cache-protocol benchmark: {} node(s), {} keys, {} lookups, {} B values",
        args.nodes, args.keys, args.ops, args.value_bytes
    );

    // In-process backend.
    let in_process = CacheCluster::new(args.nodes, 64 << 20);
    let in_process_report = drive("in-process", &in_process, &args);

    // Remote backend over loopback TCP.
    let servers: Vec<TxcachedServer> = (0..args.nodes)
        .map(|i| {
            TxcachedServer::bind(
                "127.0.0.1:0",
                format!("bench-node-{i}"),
                NodeConfig {
                    capacity_bytes: 64 << 20,
                    ..NodeConfig::default()
                },
            )
            .expect("bind loopback txcached")
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let remote = Arc::new(RemoteCluster::connect(&addrs).expect("connect loopback txcached"));
    let remote_report = drive("remote-tcp", remote.as_ref(), &args);

    // Single-node remote measurement for the protocol-efficiency gate: the
    // "one MultiGet frame vs one Get frame" ratio is a per-connection
    // property, and on hosts with fewer cores than nodes the multi-node
    // scatter's per-node round trips cannot overlap, which would charge
    // scheduling (not protocol) cost to the ratio.
    let single_report = if args.nodes > 1 {
        let single =
            Arc::new(RemoteCluster::connect(&addrs[..1]).expect("connect single loopback node"));
        let report = drive("remote-1node", single.as_ref(), &args);
        assert_eq!(single.degraded_ops(), 0, "loopback run must not degrade");
        Some(report)
    } else {
        None
    };

    println!();
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>14} {:>13} {:>13} {:>16}",
        "backend",
        "fill ops/s",
        "hit ops/s",
        "hit mean us",
        "hit p99 us",
        "m16 mean us",
        "m16 p99 us",
        "inval batch/s"
    );
    for r in [&in_process_report, &remote_report]
        .into_iter()
        .chain(single_report.as_ref())
    {
        println!(
            "{:<12} {:>14.0} {:>14.0} {:>12.2} {:>14.2} {:>13.2} {:>13.2} {:>16.0}",
            r.label,
            r.fill_ops_per_sec,
            r.hit_ops_per_sec,
            r.hit_mean_us,
            r.hit_p99_us,
            r.multi_mean_us,
            r.multi_p99_us,
            r.invalidation_batches_per_sec
        );
        assert!(
            (r.hit_rate - 1.0).abs() < 1e-9,
            "warm phase must be all hits"
        );
    }

    let slowdown = in_process_report.hit_ops_per_sec / remote_report.hit_ops_per_sec.max(1e-9);
    println!();
    println!(
        "protocol cost: TCP hit path is {slowdown:.1}x slower than in-process \
         ({:.2} us vs {:.2} us mean)",
        remote_report.hit_mean_us, in_process_report.hit_mean_us
    );
    println!(
        "scatter-gather ({} nodes): one {MULTI_BATCH}-key batch costs {:.2} us mean = {:.2}x \
         a single Get round trip ({:.2}x the serial cost of {MULTI_BATCH} Gets)",
        args.nodes,
        remote_report.multi_mean_us,
        remote_report.multi_mean_us / remote_report.hit_mean_us.max(1e-9),
        remote_report.multi_mean_us / (remote_report.hit_mean_us * MULTI_BATCH as f64).max(1e-9)
    );
    // The gate compares medians, not means: on an oversubscribed host
    // (client, reactor, and workers sharing few cores) the mean is skewed
    // by scheduler outliers that say nothing about protocol cost. What it
    // exists to catch is the batched path degenerating toward serial
    // (~16x), so the bound is deliberately loose: steady-state sits near
    // 2x (single-write framing made the single-Get denominator cheap — one
    // segment, one reactor wakeup), but the batch phase has 16x fewer
    // samples per run and wobbles with the scheduler.
    let gate = single_report.as_ref().unwrap_or(&remote_report);
    let multi_ratio = gate.multi_p50_us / gate.hit_p50_us.max(1e-9);
    println!(
        "protocol efficiency (one node, one connection): a {MULTI_BATCH}-key MultiGet frame \
         costs {multi_ratio:.2}x a single Get frame at the median (gate: <= 3.5x)"
    );
    assert!(
        multi_ratio <= 3.5,
        "a {MULTI_BATCH}-key MultiGet must cost no more than 3.5x a single Get \
         (got {multi_ratio:.2}x at the median)"
    );
    println!(
        "remote degraded ops: {} (must be 0 on loopback)",
        remote.degraded_ops()
    );
    assert_eq!(remote.degraded_ops(), 0, "loopback run must not degrade");

    // Replicated-write phase: identical fresh fills through an R=1 and an
    // R=2 client over the same servers. The R=2 client fans every Put out
    // to the key's full replica set, so the servers' insertion counters
    // must grow by exactly replication-factor x keys, and the fill-rate
    // ratio is the measured write amplification.
    let value = Bytes::from(vec![0x5Au8; args.value_bytes]);
    let fill = |backend: &dyn CacheBackend, prefix: &'static str| -> f64 {
        let t0 = Instant::now();
        for i in 0..args.keys {
            backend.insert(
                CacheKey::new(prefix, format!("[{i}]")),
                value.clone(),
                ValidityInterval::unbounded(Timestamp(1)),
                TagSet::new(),
                WallClock::ZERO,
            );
        }
        // Collect outstanding pipelined acks before stopping the clock.
        let _ = backend.stats();
        args.keys as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    };
    let server_insertions = |servers: &[TxcachedServer]| -> u64 {
        servers.iter().map(|s| s.cache_stats().insertions).sum()
    };

    let r1_fill = fill(remote.as_ref(), "bench-w1");
    let replicated = Arc::new(
        RemoteCluster::connect_with(
            &addrs,
            RemoteOptions {
                replication: 2,
                ..RemoteOptions::default()
            },
        )
        .expect("connect replicated loopback cluster"),
    );
    let replica_factor = args.nodes.min(2) as u64;
    let before = server_insertions(&servers);
    let r2_fill = fill(replicated.as_ref(), "bench-r2");
    let delta = server_insertions(&servers) - before;
    assert_eq!(
        delta,
        replica_factor * args.keys as u64,
        "an R=2 fill must land every entry on its full replica set"
    );
    let request = LookupRequest::range(Timestamp(1), Timestamp(1));
    for i in 0..args.keys.min(64) {
        let outcome = replicated.lookup(&CacheKey::new("bench-r2", format!("[{i}]")), &request);
        assert!(outcome.is_hit(), "replicated warm lookup must hit");
    }
    assert_eq!(
        replicated.degraded_ops(),
        0,
        "replicated loopback run must not degrade"
    );

    let amplification = r1_fill / r2_fill.max(1e-9);
    println!();
    println!(
        "replicated writes (R={replica_factor}, {} node(s)): fill {r2_fill:.0} ops/s vs \
         {r1_fill:.0} ops/s at R=1 — write amplification {amplification:.2}x \
         ({delta} server insertions for {} keys)",
        args.nodes, args.keys
    );
    if args.nodes >= 2 {
        assert!(
            amplification <= 3.5,
            "R=2 write amplification {amplification:.2}x exceeds the 3.5x gate \
             (pipelined fan-out should cost ~2x, not a serial re-send)"
        );
    }

    // The CI gate: the pair of fill rates recorded as a SweepReport (the
    // `threads` column holds the replication factor) and compared against a
    // checked-in baseline exactly like the other bench sweeps.
    let sweep = SweepReport {
        available_parallelism: std::thread::available_parallelism().map_or(1, usize::from),
        threads: vec![1, 2],
        txn_per_sec: vec![r1_fill, r2_fill],
    };
    if let Some(path) = &args.json_out {
        std::fs::write(path, sweep.to_json()).expect("write replication sweep JSON");
        println!("replication sweep written to {path}");
    }
    let gate_args = BenchArgs {
        baseline: args.baseline.clone(),
        max_regress: args.max_regress,
        ..BenchArgs::default()
    };
    let failures = gate_failures(&gate_args, &sweep);
    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("BENCH GATE FAILURE: {failure}");
        }
        std::process::exit(1);
    }
}
