//! Query planning and invalidation-tag assignment (§5.3).
//!
//! The planner picks an access method for the outer table and for the joined
//! table (if any). The access method determines the invalidation tags the
//! query receives: an index equality lookup yields a keyed `TABLE:COL=VALUE`
//! tag, while sequential scans and index range scans yield the wildcard
//! `TABLE:?` tag, exactly as described in the paper. Tags for index-nested-
//! loop joins are produced at execution time, one keyed tag per probed join
//! key.

use serde::{Deserialize, Serialize};
use txtypes::{Error, InvalidationTag, Result, TagSet};

use crate::query::{CmpOp, Join, Predicate, SelectQuery};
use crate::table::Table;
use crate::value::Value;

/// How the executor will fetch candidate tuples from a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AccessPath {
    /// Probe an index for a single key.
    IndexEq {
        /// Indexed column.
        column: String,
        /// Key value.
        value: Value,
    },
    /// Walk an index between two optional (inclusive) bounds.
    IndexRange {
        /// Indexed column.
        column: String,
        /// Lower bound, if any.
        lo: Option<Value>,
        /// Upper bound, if any.
        hi: Option<Value>,
    },
    /// Scan the whole heap.
    SeqScan,
}

impl AccessPath {
    /// The invalidation tag this access method contributes for `table`
    /// (§5.3): keyed for index equality, wildcard otherwise.
    #[must_use]
    pub fn invalidation_tag(&self, table: &str) -> InvalidationTag {
        match self {
            AccessPath::IndexEq { column, value } => {
                InvalidationTag::keyed(table, format!("{}={}", column, value.render_key()))
            }
            AccessPath::IndexRange { .. } | AccessPath::SeqScan => InvalidationTag::wildcard(table),
        }
    }
}

/// How the inner table of a join is accessed for each outer row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JoinAccess {
    /// Probe an index on the inner join column with the outer row's key.
    IndexNestedLoop,
    /// Scan the inner table for each outer row (only when no index exists).
    NestedLoopScan,
}

/// The planned join.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinPlan {
    /// The join specification from the query.
    pub join: Join,
    /// The chosen inner access method.
    pub access: JoinAccess,
}

/// A fully planned query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryPlan {
    /// The outer table.
    pub table: String,
    /// Outer access method.
    pub access: AccessPath,
    /// The full outer predicate (the executor re-checks it even when an index
    /// provided the equality, which keeps correctness independent of the
    /// access path).
    pub predicate: Predicate,
    /// Planned join, if the query has one.
    pub join: Option<JoinPlan>,
    /// The original query (projection, ordering, limit, aggregate).
    pub query: SelectQuery,
    /// Tags known at plan time (outer access + wildcard for scanned joins).
    pub base_tags: TagSet,
}

/// Plans `query` against the given tables.
///
/// `outer` must be the table named by `query.table`; `inner` must be present
/// iff the query has a join and must match the joined table.
pub fn plan_query(query: &SelectQuery, outer: &Table, inner: Option<&Table>) -> Result<QueryPlan> {
    if outer.schema().name != query.table {
        return Err(Error::Query(format!(
            "planner given table '{}' for query over '{}'",
            outer.schema().name,
            query.table
        )));
    }
    let access = choose_access_path(&query.predicate, outer);
    let mut base_tags = TagSet::new();
    base_tags.insert(access.invalidation_tag(&query.table));

    let join = match (&query.join, inner) {
        (None, _) => None,
        (Some(join), Some(inner_table)) => {
            if inner_table.schema().name != join.table {
                return Err(Error::Query(format!(
                    "planner given inner table '{}' for join over '{}'",
                    inner_table.schema().name,
                    join.table
                )));
            }
            // Validate join columns exist.
            outer.schema().column_index(&join.left_column)?;
            inner_table.schema().column_index(&join.right_column)?;
            let access = if inner_table.has_index_on(&join.right_column) {
                JoinAccess::IndexNestedLoop
            } else {
                base_tags.insert(InvalidationTag::wildcard(&join.table));
                JoinAccess::NestedLoopScan
            };
            Some(JoinPlan {
                join: join.clone(),
                access,
            })
        }
        (Some(join), None) => {
            return Err(Error::Query(format!(
                "query joins '{}' but no inner table was supplied",
                join.table
            )))
        }
    };

    Ok(QueryPlan {
        table: query.table.clone(),
        access,
        predicate: query.predicate.clone(),
        join,
        query: query.clone(),
        base_tags,
    })
}

/// Picks the cheapest access path supported by the predicate and the table's
/// indexes: index equality beats index range beats sequential scan.
///
/// Exposed so the DML path (UPDATE/DELETE) can locate target rows the same
/// way SELECT does.
pub fn choose_access_path(predicate: &Predicate, table: &Table) -> AccessPath {
    let conjuncts = predicate.conjuncts();

    // Prefer an equality on an indexed column.
    for p in &conjuncts {
        if let Predicate::Cmp {
            column,
            op: CmpOp::Eq,
            value,
        } = p
        {
            if table.has_index_on(column) && !value.is_null() {
                return AccessPath::IndexEq {
                    column: column.clone(),
                    value: value.clone(),
                };
            }
        }
    }

    // Otherwise look for range conditions on a single indexed column.
    for p in &conjuncts {
        if let Predicate::Cmp { column, op, value } = p {
            if !table.has_index_on(column) || value.is_null() {
                continue;
            }
            let (mut lo, mut hi) = (None, None);
            match op {
                CmpOp::Gt | CmpOp::Ge => lo = Some(value.clone()),
                CmpOp::Lt | CmpOp::Le => hi = Some(value.clone()),
                _ => continue,
            }
            // Try to find the matching opposite bound on the same column.
            for q in &conjuncts {
                if let Predicate::Cmp {
                    column: c2,
                    op: op2,
                    value: v2,
                } = q
                {
                    if c2 == column {
                        match op2 {
                            CmpOp::Gt | CmpOp::Ge if lo.is_none() => lo = Some(v2.clone()),
                            CmpOp::Lt | CmpOp::Le if hi.is_none() => hi = Some(v2.clone()),
                            _ => {}
                        }
                    }
                }
            }
            return AccessPath::IndexRange {
                column: column.clone(),
                lo,
                hi,
            };
        }
    }

    AccessPath::SeqScan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::value::ColumnType;

    fn items_table() -> Table {
        let schema = TableSchema::new("items")
            .column("id", ColumnType::Int)
            .column("seller", ColumnType::Int)
            .column("category", ColumnType::Int)
            .column("price", ColumnType::Float)
            .unique_index("id")
            .index("category");
        Table::new(schema, 16).unwrap()
    }

    fn users_table() -> Table {
        let schema = TableSchema::new("users")
            .column("id", ColumnType::Int)
            .column("region", ColumnType::Int)
            .unique_index("id");
        Table::new(schema, 16).unwrap()
    }

    #[test]
    fn equality_on_indexed_column_uses_index_eq() {
        let t = items_table();
        let q = SelectQuery::table("items").filter(Predicate::eq("id", 42i64));
        let plan = plan_query(&q, &t, None).unwrap();
        assert_eq!(
            plan.access,
            AccessPath::IndexEq {
                column: "id".into(),
                value: Value::Int(42)
            }
        );
        assert_eq!(
            plan.base_tags.tags(),
            &[InvalidationTag::keyed("items", "id=42")]
        );
    }

    #[test]
    fn equality_on_unindexed_column_falls_back_to_scan() {
        let t = items_table();
        let q = SelectQuery::table("items").filter(Predicate::eq("price", 10.0));
        let plan = plan_query(&q, &t, None).unwrap();
        assert_eq!(plan.access, AccessPath::SeqScan);
        assert_eq!(plan.base_tags.tags(), &[InvalidationTag::wildcard("items")]);
    }

    #[test]
    fn range_on_indexed_column_uses_index_range_with_wildcard_tag() {
        let t = items_table();
        let q = SelectQuery::table("items").filter(
            Predicate::cmp("category", CmpOp::Ge, 3i64).and(Predicate::cmp(
                "category",
                CmpOp::Le,
                5i64,
            )),
        );
        let plan = plan_query(&q, &t, None).unwrap();
        assert_eq!(
            plan.access,
            AccessPath::IndexRange {
                column: "category".into(),
                lo: Some(Value::Int(3)),
                hi: Some(Value::Int(5)),
            }
        );
        assert_eq!(plan.base_tags.tags(), &[InvalidationTag::wildcard("items")]);
    }

    #[test]
    fn equality_preferred_over_range() {
        let t = items_table();
        let q = SelectQuery::table("items")
            .filter(Predicate::cmp("category", CmpOp::Ge, 3i64).and(Predicate::eq("id", 7i64)));
        let plan = plan_query(&q, &t, None).unwrap();
        assert!(matches!(plan.access, AccessPath::IndexEq { .. }));
    }

    #[test]
    fn join_with_inner_index_plans_index_nested_loop() {
        let items = items_table();
        let users = users_table();
        let q = SelectQuery::table("items")
            .filter(Predicate::eq("category", 3i64))
            .join("users", "seller", "id");
        let plan = plan_query(&q, &items, Some(&users)).unwrap();
        let join = plan.join.unwrap();
        assert_eq!(join.access, JoinAccess::IndexNestedLoop);
        // No wildcard tag for users at plan time; keyed tags come at exec time.
        assert!(!plan
            .base_tags
            .tags()
            .contains(&InvalidationTag::wildcard("users")));
    }

    #[test]
    fn join_without_inner_index_gets_wildcard_tag() {
        let items = items_table();
        let users_schema = TableSchema::new("users")
            .column("id", ColumnType::Int)
            .column("region", ColumnType::Int);
        let users = Table::new(users_schema, 16).unwrap();
        let q = SelectQuery::table("items").join("users", "seller", "id");
        let plan = plan_query(&q, &items, Some(&users)).unwrap();
        assert_eq!(plan.join.unwrap().access, JoinAccess::NestedLoopScan);
        assert!(plan
            .base_tags
            .tags()
            .contains(&InvalidationTag::wildcard("users")));
    }

    #[test]
    fn planner_rejects_mismatched_tables() {
        let items = items_table();
        let users = users_table();
        let q = SelectQuery::table("items");
        assert!(plan_query(&q, &users, None).is_err());
        let qj = SelectQuery::table("items").join("users", "seller", "id");
        assert!(plan_query(&qj, &items, None).is_err());
        assert!(plan_query(&qj, &items, Some(&items)).is_err());
    }

    #[test]
    fn join_on_missing_column_is_rejected() {
        let items = items_table();
        let users = users_table();
        let q = SelectQuery::table("items").join("users", "nope", "id");
        assert!(plan_query(&q, &items, Some(&users)).is_err());
    }
}
