//! Tuple versions and visibility.
//!
//! Every row in the database is represented by a chain of immutable tuple
//! versions. A version carries the commit stamp of the transaction that
//! created it and, once superseded or deleted, the stamp of the transaction
//! that deleted it. This is the same representation multiversion concurrency
//! control engines (PostgreSQL's `xmin`/`xmax`) use to implement snapshot
//! isolation, and it is precisely the information the paper's modified
//! database reuses to compute validity intervals (§5.1–5.2).

use serde::{Deserialize, Serialize};
use txtypes::{Timestamp, ValidityInterval};

/// A logical row identity, stable across versions of the same row.
pub type RowId = u64;

/// An in-progress transaction identifier.
pub type TxnId = u64;

/// The creation/deletion stamp on a tuple version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stamp {
    /// Produced by a transaction that committed at the given timestamp.
    Committed(Timestamp),
    /// Produced by a transaction that is still in progress.
    Pending(TxnId),
    /// Produced by a transaction that aborted; the version is garbage.
    Aborted,
}

impl Stamp {
    /// Returns the commit timestamp if the stamp is committed.
    #[must_use]
    pub fn committed_at(&self) -> Option<Timestamp> {
        match self {
            Stamp::Committed(ts) => Some(*ts),
            _ => None,
        }
    }

    /// Returns `true` if the stamp belongs to the given in-progress
    /// transaction.
    #[must_use]
    pub fn is_pending_of(&self, txn: TxnId) -> bool {
        matches!(self, Stamp::Pending(id) if *id == txn)
    }
}

/// One version of a row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TupleVersion {
    /// The logical row this version belongs to.
    pub row_id: RowId,
    /// The column values of this version.
    pub values: Vec<crate::value::Value>,
    /// Stamp of the transaction that created the version.
    pub created: Stamp,
    /// Stamp of the transaction that deleted or superseded the version, if
    /// any.
    pub deleted: Option<Stamp>,
}

impl TupleVersion {
    /// Creates a fresh, live version created by an in-progress transaction.
    #[must_use]
    pub fn pending(row_id: RowId, values: Vec<crate::value::Value>, txn: TxnId) -> TupleVersion {
        TupleVersion {
            row_id,
            values,
            created: Stamp::Pending(txn),
            deleted: None,
        }
    }

    /// Creates a committed version; used when bulk-loading initial data.
    #[must_use]
    pub fn committed(
        row_id: RowId,
        values: Vec<crate::value::Value>,
        at: Timestamp,
    ) -> TupleVersion {
        TupleVersion {
            row_id,
            values,
            created: Stamp::Committed(at),
            deleted: None,
        }
    }

    /// Snapshot-isolation visibility check: is this version visible to a
    /// transaction reading at `snapshot_ts` with (optional) own id `me`?
    ///
    /// A version is visible if it was created by a transaction that committed
    /// at or before the snapshot (or by the reader itself), and it has not
    /// been deleted by such a transaction.
    #[must_use]
    pub fn visible_to(&self, snapshot_ts: Timestamp, me: Option<TxnId>) -> bool {
        let created_visible = match self.created {
            Stamp::Committed(ts) => ts <= snapshot_ts,
            Stamp::Pending(id) => me == Some(id),
            Stamp::Aborted => false,
        };
        if !created_visible {
            return false;
        }
        match self.deleted {
            None => true,
            Some(Stamp::Committed(ts)) => ts > snapshot_ts,
            Some(Stamp::Pending(id)) => me != Some(id),
            Some(Stamp::Aborted) => true,
        }
    }

    /// The validity interval of this version considering only *committed*
    /// state: `[created, deleted)` where both bounds come from committed
    /// transactions. Returns `None` if the creating transaction has not
    /// committed (the version does not yet correspond to any database state).
    ///
    /// Pending deletions are ignored: until the deleting transaction commits,
    /// the version is still the current one.
    #[must_use]
    pub fn committed_validity(&self) -> Option<ValidityInterval> {
        let lower = self.created.committed_at()?;
        match self.deleted.and_then(|s| s.committed_at()) {
            Some(upper) => ValidityInterval::bounded(lower, upper),
            None => Some(ValidityInterval::unbounded(lower)),
        }
    }

    /// Returns `true` if the version is dead to every snapshot at or after
    /// `horizon` (deleted by a transaction that committed at or before the
    /// horizon) or was created by an aborted transaction. Such versions can be
    /// reclaimed by the vacuum process.
    #[must_use]
    pub fn is_garbage_before(&self, horizon: Timestamp) -> bool {
        if matches!(self.created, Stamp::Aborted) {
            return true;
        }
        matches!(self.deleted, Some(Stamp::Committed(ts)) if ts <= horizon)
    }

    /// Approximate in-memory size of the version, for buffer-page accounting.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.values.iter().map(|v| v.size_bytes()).sum::<usize>() + 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn vals() -> Vec<Value> {
        vec![Value::Int(1), Value::text("x")]
    }

    #[test]
    fn committed_version_visibility() {
        let mut v = TupleVersion::committed(1, vals(), Timestamp(10));
        assert!(!v.visible_to(Timestamp(9), None));
        assert!(v.visible_to(Timestamp(10), None));
        assert!(v.visible_to(Timestamp(100), None));

        v.deleted = Some(Stamp::Committed(Timestamp(20)));
        assert!(v.visible_to(Timestamp(19), None));
        assert!(!v.visible_to(Timestamp(20), None));
    }

    #[test]
    fn pending_versions_visible_only_to_owner() {
        let v = TupleVersion::pending(1, vals(), 7);
        assert!(!v.visible_to(Timestamp(100), None));
        assert!(!v.visible_to(Timestamp(100), Some(8)));
        assert!(v.visible_to(Timestamp(100), Some(7)));
    }

    #[test]
    fn pending_delete_hides_only_from_owner() {
        let mut v = TupleVersion::committed(1, vals(), Timestamp(10));
        v.deleted = Some(Stamp::Pending(7));
        assert!(v.visible_to(Timestamp(50), None), "others still see it");
        assert!(
            !v.visible_to(Timestamp(50), Some(7)),
            "owner no longer sees it"
        );
    }

    #[test]
    fn aborted_creation_is_never_visible() {
        let mut v = TupleVersion::pending(1, vals(), 7);
        v.created = Stamp::Aborted;
        assert!(!v.visible_to(Timestamp(100), Some(7)));
        // An aborted deletion leaves the version live.
        let mut w = TupleVersion::committed(1, vals(), Timestamp(10));
        w.deleted = Some(Stamp::Aborted);
        assert!(w.visible_to(Timestamp(50), None));
    }

    #[test]
    fn committed_validity_intervals() {
        let mut v = TupleVersion::committed(1, vals(), Timestamp(10));
        assert_eq!(
            v.committed_validity(),
            Some(ValidityInterval::unbounded(Timestamp(10)))
        );
        v.deleted = Some(Stamp::Committed(Timestamp(20)));
        assert_eq!(
            v.committed_validity(),
            ValidityInterval::bounded(Timestamp(10), Timestamp(20))
        );
        // Pending delete does not bound the committed validity.
        v.deleted = Some(Stamp::Pending(3));
        assert_eq!(
            v.committed_validity(),
            Some(ValidityInterval::unbounded(Timestamp(10)))
        );
        // Pending creation has no committed validity at all.
        let p = TupleVersion::pending(1, vals(), 3);
        assert_eq!(p.committed_validity(), None);
    }

    #[test]
    fn garbage_detection() {
        let mut v = TupleVersion::committed(1, vals(), Timestamp(10));
        assert!(!v.is_garbage_before(Timestamp(100)));
        v.deleted = Some(Stamp::Committed(Timestamp(20)));
        assert!(v.is_garbage_before(Timestamp(20)));
        assert!(!v.is_garbage_before(Timestamp(19)));
        let mut a = TupleVersion::pending(2, vals(), 9);
        a.created = Stamp::Aborted;
        assert!(a.is_garbage_before(Timestamp::ZERO));
    }

    #[test]
    fn size_accounting() {
        let v = TupleVersion::committed(1, vals(), Timestamp(1));
        assert!(v.size_bytes() > 32);
    }
}
