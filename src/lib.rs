//! Umbrella crate for the TxCache reproduction workspace.
//!
//! Re-exports the main crates so the examples and integration tests can use a
//! single dependency. See the individual crates for the real functionality.

#![forbid(unsafe_code)]

pub use cache_server;
pub use harness;
pub use mvdb;
pub use obs;
pub use pincushion;
pub use rubis;
pub use txcache;
pub use txtypes;
pub use wire;
