//! The `TxCache` handle: the entry point applications hold.

use std::sync::Arc;

use cache_server::CacheCluster;
use crossbeam::channel::Receiver;
use mvdb::{Database, InvalidationMessage, SnapshotId};
use parking_lot::Mutex;
use pincushion::Pincushion;
use txtypes::{Result, SimClock, Staleness, Timestamp};

use crate::config::{CacheMode, TimestampPolicy, TxCacheConfig};
use crate::stats::ClientStats;
use crate::transaction::Transaction;

/// The TxCache client library.
///
/// One `TxCache` is shared by all requests of an application server. It knows
/// how to reach the database, the cache cluster and the pincushion, forwards
/// the database's invalidation stream to the cache nodes, and hands out
/// [`Transaction`] objects.
pub struct TxCache {
    pub(crate) db: Arc<Database>,
    pub(crate) cache: Arc<CacheCluster>,
    pub(crate) pincushion: Arc<Pincushion>,
    pub(crate) clock: SimClock,
    pub(crate) config: TxCacheConfig,
    pub(crate) stats: Mutex<ClientStats>,
    invalidations: Mutex<Receiver<InvalidationMessage>>,
}

impl TxCache {
    /// Creates a library instance wired to the given components.
    #[must_use]
    pub fn new(
        db: Arc<Database>,
        cache: Arc<CacheCluster>,
        pincushion: Arc<Pincushion>,
        clock: SimClock,
        config: TxCacheConfig,
    ) -> TxCache {
        let invalidations = db.subscribe_invalidations();
        TxCache {
            db,
            cache,
            pincushion,
            clock,
            config,
            stats: Mutex::new(ClientStats::default()),
            invalidations: Mutex::new(invalidations),
        }
    }

    /// The library's configuration.
    #[must_use]
    pub fn config(&self) -> &TxCacheConfig {
        &self.config
    }

    /// The underlying database (for administrative tasks such as schema
    /// creation and bulk loading).
    #[must_use]
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The cache cluster (for statistics).
    #[must_use]
    pub fn cache(&self) -> &Arc<CacheCluster> {
        &self.cache
    }

    /// The pincushion (for statistics).
    #[must_use]
    pub fn pincushion(&self) -> &Arc<Pincushion> {
        &self.pincushion
    }

    /// The shared simulated clock.
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Library-side statistics.
    #[must_use]
    pub fn stats(&self) -> ClientStats {
        *self.stats.lock()
    }

    /// Begins a read-only transaction with the given staleness limit
    /// (`BEGIN-RO` in Figure 2).
    pub fn begin_ro(&self, staleness: Staleness) -> Result<Transaction<'_>> {
        self.deliver_invalidations();
        self.stats.lock().ro_transactions += 1;
        Transaction::new_read_only(self, staleness)
    }

    /// Begins a read-only transaction with the configured default staleness.
    pub fn begin_ro_default(&self) -> Result<Transaction<'_>> {
        self.begin_ro(self.config.default_staleness)
    }

    /// Begins a read/write transaction (`BEGIN-RW` in Figure 2). Read/write
    /// transactions bypass the cache entirely and run directly on the
    /// database (§2.2).
    pub fn begin_rw(&self) -> Result<Transaction<'_>> {
        self.deliver_invalidations();
        self.stats.lock().rw_transactions += 1;
        Transaction::new_read_write(self)
    }

    /// Delivers any pending invalidation-stream messages from the database to
    /// every cache node, in commit order. In the paper this is an
    /// asynchronous multicast; here the library pumps it at transaction
    /// boundaries, which keeps experiments deterministic while preserving the
    /// ordering guarantees the protocol relies on.
    ///
    /// After draining the stream, the cache nodes are told the database's
    /// commit timestamp as of *before* the drain. Commits publish their
    /// invalidation before the timestamp becomes visible, so at that point
    /// every invalidation at or below the noted timestamp has been applied;
    /// this lets still-valid entries be served at the current time even when
    /// recent commits (or the initial bulk load) did not touch their tags.
    pub fn deliver_invalidations(&self) {
        let latest = self.db.latest_timestamp();
        let rx = self.invalidations.lock();
        for message in rx.try_iter() {
            self.cache
                .apply_invalidation(message.timestamp, &message.tags);
        }
        self.cache.note_timestamp(latest);
    }

    /// Periodic maintenance: forwards invalidations, reaps old unused pinned
    /// snapshots (issuing `UNPIN` to the database), and evicts cache entries
    /// too stale for any current transaction to use.
    pub fn maintenance(&self) {
        self.deliver_invalidations();
        for ts in self.pincushion.reap() {
            // The snapshot may already be gone if the database restarted; a
            // failed unpin is not an error for maintenance.
            let _ = self.db.unpin(SnapshotId(ts));
        }
        // Entries that ended before the oldest snapshot still tracked by the
        // pincushion can never satisfy any transaction again.
        let horizon: Timestamp = self
            .pincushion
            .oldest()
            .map_or_else(|| self.db.latest_timestamp(), |p| p.timestamp);
        self.cache.evict_stale(horizon);
    }

    pub(crate) fn mode(&self) -> CacheMode {
        self.config.mode
    }

    pub(crate) fn policy(&self) -> TimestampPolicy {
        self.config.policy
    }
}

impl std::fmt::Debug for TxCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxCache")
            .field("mode", &self.config.mode)
            .field("policy", &self.config.policy)
            .field("stats", &self.stats())
            .finish()
    }
}
