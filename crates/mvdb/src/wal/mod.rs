//! Durability for mvdb: a group-committed write-ahead log, checksummed
//! snapshots, and crash recovery that rebuilds the invalidation horizon.
//!
//! The paper's guarantee — transactionally consistent caching via validity
//! intervals and commit-ordered invalidations — only holds across a restart
//! if the *invalidation horizon* survives alongside the data: a cache
//! reconnecting after a DB crash must seal its unbounded entries at a
//! timestamp the recovered database actually vouches for. So snapshots
//! persist the invalidation log next to the version store, and WAL commit
//! records carry their invalidation tag sets; recovery rebuilds both from
//! the same commit-ordered stream.
//!
//! Module map:
//! - [`codec`] — record framing and encoding (length + FNV-1a checksum +
//!   `wire`-style payload), torn-tail scanning.
//! - [`log`] — the append-only log file and leader/follower group commit.
//! - [`snapshot_file`] — snapshot serialization with atomic rename.
//!
//! The database-facing recovery assembly lives in [`crate::db`]
//! (`Database::recover`); this module's [`load_dir`] does the file-level
//! half: pick the newest *valid* snapshot (corrupt ones are skipped, not
//! fatal), scan the WAL, and report how many bytes of torn tail must go.

pub mod codec;
pub mod log;
pub mod snapshot_file;

use std::path::Path;

use txtypes::{Result, Timestamp};

pub use codec::{WalCommit, WalOp, WalRecord};
pub use log::{CrashPoint, FsyncPolicy, WalLog, WAL_FILE};
pub use snapshot_file::{SnapshotImage, SnapshotTable, SnapshotVersion};

/// What `Database::recover` did, for operators and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Timestamp of the snapshot recovery started from (`None` → cold start
    /// from an empty store, full WAL replay).
    pub snapshot_ts: Option<Timestamp>,
    /// Snapshot files that existed but failed validation and were skipped.
    pub snapshots_skipped: usize,
    /// Commits replayed from the WAL tail (strictly newer than the
    /// snapshot).
    pub replayed_commits: usize,
    /// WAL commits skipped because the snapshot already contained them.
    pub skipped_commits: usize,
    /// Torn-tail bytes truncated from the end of the WAL.
    pub truncated_bytes: u64,
    /// The `latest` timestamp the database resumed at — by construction ≥
    /// every replayed commit timestamp, so it remains a valid serialization
    /// witness for clients.
    pub recovered_latest: Timestamp,
    /// The restored vacuum watermark; pins below it are refused, exactly as
    /// before the crash.
    pub recovered_watermark: Timestamp,
}

/// Knobs for `Database::recover_with`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoverOptions {
    /// Fault-injection mutation for the chaos acceptance test: recover the
    /// version store but *not* the invalidation horizon (empty log, zero
    /// last-timestamp). With this set, reconnecting caches have nothing to
    /// seal against and the history checker must catch the resulting
    /// stale reads. Never set outside tests.
    pub skip_horizon_rebuild_for_fault_injection: bool,
}

/// The file-level half of recovery: newest valid snapshot + WAL scan.
#[derive(Debug)]
pub(crate) struct LoadedState {
    /// The newest snapshot that passed validation, if any.
    pub snapshot: Option<SnapshotImage>,
    /// Snapshots that failed validation on the way down.
    pub snapshots_skipped: usize,
    /// Every fully-written WAL record, in commit order (includes records the
    /// snapshot already covers; the caller filters by timestamp).
    pub records: Vec<WalRecord>,
    /// Byte length of the WAL's valid prefix.
    pub wal_valid_len: u64,
    /// Torn-tail bytes past the valid prefix.
    pub truncated_bytes: u64,
}

/// Loads the durable state of `dir`: walk snapshots newest-first until one
/// verifies, then scan the WAL for its valid prefix. Missing files mean a
/// cold start, not an error.
pub(crate) fn load_dir(dir: &Path) -> Result<LoadedState> {
    let mut snapshot = None;
    let mut snapshots_skipped = 0;
    if dir.is_dir() {
        for (_, path) in snapshot_file::list_snapshots(dir)? {
            match snapshot_file::read_snapshot(&path) {
                Ok(image) => {
                    snapshot = Some(image);
                    break;
                }
                Err(_) => snapshots_skipped += 1,
            }
        }
    }
    let wal_path = dir.join(WAL_FILE);
    let (records, wal_valid_len, truncated_bytes) = if wal_path.is_file() {
        let bytes = std::fs::read(&wal_path).map_err(|e| {
            txtypes::Error::Serialization(format!("wal io (read for recovery): {e}"))
        })?;
        let scan = codec::scan_wal(&bytes)?;
        let truncated = bytes.len() as u64 - scan.valid_len;
        (scan.records, scan.valid_len, truncated)
    } else {
        (Vec::new(), 0, 0)
    };
    Ok(LoadedState {
        snapshot,
        snapshots_skipped,
        records,
        wal_valid_len,
        truncated_bytes,
    })
}
