//! Chaos tests: the full client/server/invalidation path under
//! deterministic fault injection, verified by the transactional-consistency
//! history checker.
//!
//! Every scenario here runs on a `wire::SimNet` — real `TxcachedServer`s
//! and a real `RemoteCluster`, joined by in-process pipes that inject frame
//! drops, duplicates, reorderings, connection resets, and scripted
//! partitions, all derived from a printed seed. A failing run names its
//! seed and a one-line repro command; set `CHAOS_SEED=<seed>` to replay the
//! exact fault schedule.

use txcache_repro::harness::chaos::{
    repro_command, run_chaos_scenario, seed_from_env, ChaosScenarioConfig,
};

/// Fixed seed set for the bounded sweep (`ci.sh --chaos-smoke`); overridden
/// by `CHAOS_SEED`.
const SWEEP_SEEDS: [u64; 3] = [0xC0FFEE, 42, 7_777_777];

fn sweep_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(_) => vec![seed_from_env(SWEEP_SEEDS[0])],
        Err(_) => SWEEP_SEEDS.to_vec(),
    }
}

/// The checker's invariants hold on the fault-free in-process backend —
/// the same history machinery, no transport in the way. This pins the
/// checker itself (and the workload's ground-truth recording) as sound.
#[test]
fn in_process_backend_passes_the_history_checker() {
    for seed in sweep_seeds() {
        println!("CHAOS_SEED={seed} (in-process)");
        let outcome = run_chaos_scenario(&ChaosScenarioConfig::in_process(seed));
        let summary = outcome.expect_consistent("in_process_backend_passes_the_history_checker");
        assert!(summary.read_txns > 0 && summary.commits > 0);
        assert!(
            outcome.cache_hits > 0,
            "the cache must actually serve hits for the check to mean \
             anything (seed {seed})"
        );
    }
}

/// The tentpole assertion: under random frame drops, duplicates,
/// reorderings, resets, a scripted partition window, *and* chunked partial
/// reads, every transaction still observes one consistent snapshot on the
/// networked backend.
#[test]
fn sim_remote_backend_survives_random_faults() {
    for seed in sweep_seeds() {
        println!(
            "CHAOS_SEED={seed}  repro: {}",
            repro_command(seed, "sim_remote_backend_survives_random_faults")
        );
        let outcome = run_chaos_scenario(&ChaosScenarioConfig::stormy(seed));
        let summary = outcome.expect_consistent("sim_remote_backend_survives_random_faults");
        assert!(summary.read_txns > 0 && summary.commits > 0);
        assert!(
            outcome.fault_counts.injected() > 0,
            "the storm must actually inject faults (seed {seed}): {:?}",
            outcome.fault_counts
        );
        assert!(
            outcome.cache_hits > 0,
            "the cache must serve hits even under chaos (seed {seed})"
        );
        assert!(
            outcome.degraded_ops > 0,
            "injected faults must surface as degraded operations \
             (seed {seed})"
        );
        assert!(
            outcome.reconnects > 0,
            "the partition window must force at least one heal (seed {seed})"
        );
    }
}

/// A chaos run is bit-for-bit reproducible from its seed: same fault
/// schedule, same observed history, same verdict.
#[test]
fn chaos_runs_are_bit_for_bit_reproducible() {
    let seed = seed_from_env(0xD5_1E5E);
    println!("CHAOS_SEED={seed}");
    let a = run_chaos_scenario(&ChaosScenarioConfig::stormy(seed));
    let b = run_chaos_scenario(&ChaosScenarioConfig::stormy(seed));
    assert_eq!(
        a.fault_digest,
        b.fault_digest,
        "fault schedules diverged for one seed ({seed}); repro: {}",
        repro_command(seed, "chaos_runs_are_bit_for_bit_reproducible")
    );
    assert_eq!(
        a.fault_counts, b.fault_counts,
        "fault counts diverged for seed {seed}"
    );
    assert_eq!(
        a.history_digest, b.history_digest,
        "observed histories diverged for seed {seed}"
    );
    assert_eq!(
        a.verdict.is_ok(),
        b.verdict.is_ok(),
        "checker verdicts diverged for seed {seed}"
    );
    // And a different seed produces a different schedule (the chaos layer
    // is actually seed-driven, not constant).
    let c = run_chaos_scenario(&ChaosScenarioConfig::stormy(seed ^ 0xFFFF));
    assert_ne!(a.fault_digest, c.fault_digest);
}

/// Seal-on-heal keeps a partition-and-heal run consistent: invalidations
/// lost while a node was unreachable can never resurrect stale entries,
/// because the reconnect seals the node's still-valid entries at its
/// pre-partition horizon.
#[test]
fn partition_heal_with_seal_is_consistent() {
    // Deliberately NOT seeded from CHAOS_SEED: this scenario's secondary
    // assertions (a heal happened, entries were sealed) are
    // workload-shape-specific and vetted for this seed; replaying a sweep
    // seed here would turn a replay into a spurious failure.
    let seed = 0x5EA1;
    println!("scripted partition-heal scenario, fixed seed {seed}");
    let outcome = run_chaos_scenario(&ChaosScenarioConfig::partition_heal(seed));
    let summary = outcome.expect_consistent("partition_heal_with_seal_is_consistent");
    assert!(summary.read_txns > 0);
    assert!(
        outcome.reconnects > 0,
        "the scripted partition must heal at least one connection"
    );
    assert!(
        outcome.cache_stats.sealed_entries > 0,
        "the heal must seal still-valid entries: {:?}",
        outcome.cache_stats
    );
}

/// Mutation test of the checker (the acceptance criterion): disable
/// seal-on-heal and the same scenario must FAIL the checker with a
/// snapshot-consistency violation — proving the chaos suite can actually
/// catch the §4.2 bug class it exists for, rather than vacuously passing.
#[test]
fn checker_catches_disabled_reconnect_seal() {
    // Fixed seed, like partition_heal_with_seal_is_consistent: whether the
    // mutated run *must* produce a violation depends on the workload shape,
    // which is only vetted for this seed.
    let seed = 0x5EA1;
    println!("seal-mutation scenario, fixed seed {seed}");
    let mut config = ChaosScenarioConfig::partition_heal(seed);
    config.disable_seal_on_heal = true;
    let outcome = run_chaos_scenario(&config);
    let violations = outcome.verdict.as_ref().expect_err(
        "with seal-on-heal disabled, lost invalidations must resurrect \
             stale entries and the checker must catch them; a pass here \
             means the chaos suite has lost its teeth",
    );
    assert!(
        violations
            .iter()
            .any(|v| v.invariant == "snapshot-consistency"),
        "expected a snapshot-consistency (stale resurrection) violation, \
         got: {violations:?}"
    );
}

/// The tentpole failover assertion: with R=2 replication over three nodes,
/// a scripted kill of node 0 for a third of the run must (a) keep every
/// transaction snapshot-consistent, (b) keep the cache serving — the
/// surviving replica of each key answers reads, so the hit rate inside the
/// kill window stays within 50% of steady state, (c) demote the dead node
/// after consecutive failures and count replica fallbacks, and (d) heal:
/// the node rejoins and serves traffic again without any client or peer
/// restarting.
#[test]
fn replicated_failover_keeps_history_consistent_and_bounds_hit_dip() {
    // Fixed seed, like the other scripted-window scenarios: the secondary
    // assertions are workload-shape-specific and vetted for this seed.
    let seed = 0xFA11;
    println!("replicated failover scenario, fixed seed {seed}");
    let outcome = run_chaos_scenario(&ChaosScenarioConfig::replicated_failover(seed));
    let summary = outcome
        .expect_consistent("replicated_failover_keeps_history_consistent_and_bounds_hit_dip");
    assert!(summary.read_txns > 0 && summary.commits > 0);
    assert!(
        outcome.failovers >= 1,
        "consecutive failed probes must demote the killed node: {outcome:?}"
    );
    assert!(
        outcome.replica_fallbacks > 0,
        "reads must fall back to the surviving replica during the kill: {outcome:?}"
    );
    assert!(
        outcome.steady_hit_rate > 0.0,
        "the cache must be warm before the kill: {outcome:?}"
    );
    assert!(
        outcome.disrupted_hit_rate >= 0.5 * outcome.steady_hit_rate,
        "the surviving replicas must bound the hit-rate dip during the \
         kill window: steady {:.3} vs disrupted {:.3}",
        outcome.steady_hit_rate,
        outcome.disrupted_hit_rate
    );
    assert!(
        outcome.reconnects >= 1,
        "the killed node must heal its connection: {outcome:?}"
    );
    assert!(
        outcome.healed_node_hits_final > outcome.healed_node_hits_at_heal,
        "the healed node must serve hits again after rejoining ({} at \
         heal, {} at end) without clients or peers restarting",
        outcome.healed_node_hits_at_heal,
        outcome.healed_node_hits_final
    );
}

/// The crash-restart tentpole: a durable database crashes mid-run right
/// after a burst of transfers the caches never heard about, recovers from
/// its WAL, and a fresh `TxCache` reconnects the still-warm cache tier.
/// Delivering the recovered invalidation log and horizon on reconnect must
/// keep every transaction snapshot-consistent — the invalidation horizon
/// survives the restart.
#[test]
fn crash_restart_recovery_is_consistent() {
    // Fixed seed, like the other scripted scenarios: the secondary
    // assertions (cache warm at crash time, silent commits recovered) are
    // workload-shape-specific and vetted for this seed.
    let seed = 0xC4A5;
    println!("scripted crash-restart scenario, fixed seed {seed}");
    let outcome = run_chaos_scenario(&ChaosScenarioConfig::crash_restart(seed));
    let summary = outcome.expect_consistent("crash_restart_recovery_is_consistent");
    assert!(summary.read_txns > 0 && summary.commits > 0);
    assert!(
        outcome.recovered_commits > 0,
        "recovery must replay the durable pre-crash commits: {outcome:?}"
    );
    assert!(
        outcome.cache_hits > 0,
        "the cache must serve hits across the restart: {outcome:?}"
    );
}

/// Mutation test of the recovery path (the acceptance criterion): recover
/// the database *without* rebuilding the invalidation horizon and the same
/// scenario must FAIL the checker with a snapshot-consistency violation —
/// the reconnect heartbeat revalidates entries the silent pre-crash
/// transfers made stale. This proves the chaos suite actually exercises the
/// horizon-survives-restart property rather than vacuously passing.
#[test]
fn checker_catches_skipped_horizon_recovery() {
    let seed = 0xC4A5;
    println!("horizon-recovery mutation scenario, fixed seed {seed}");
    let mut config = ChaosScenarioConfig::crash_restart(seed);
    let script = config.crash.as_mut().expect("scenario is crash-scripted");
    script.skip_horizon_recovery = true;
    let outcome = run_chaos_scenario(&config);
    let violations = outcome.verdict.as_ref().expect_err(
        "with horizon recovery skipped, the reconnect heartbeat must \
             resurrect entries staled by the silent pre-crash transfers and \
             the checker must catch them; a pass here means the crash suite \
             has lost its teeth",
    );
    assert!(
        violations
            .iter()
            .any(|v| v.invariant == "snapshot-consistency"),
        "expected a snapshot-consistency (stale resurrection) violation, \
         got: {violations:?}"
    );
}

/// The crash-restart scenario is as reproducible as the rest of the suite:
/// the recovery path (WAL replay, horizon rebuild, reconnect) introduces no
/// nondeterminism — same seed, same history, bit for bit.
#[test]
fn crash_restart_replays_bit_for_bit() {
    let seed = 0xC4A5;
    let a = run_chaos_scenario(&ChaosScenarioConfig::crash_restart(seed));
    let b = run_chaos_scenario(&ChaosScenarioConfig::crash_restart(seed));
    assert_eq!(a.fault_digest, b.fault_digest, "fault schedules diverged");
    assert_eq!(a.history_digest, b.history_digest, "histories diverged");
    assert_eq!(
        a.recovered_commits, b.recovered_commits,
        "recovery replayed a different number of commits"
    );
    assert_eq!(a.verdict.is_ok(), b.verdict.is_ok());
}

/// The replicated failover scenario is as reproducible as the rest of the
/// suite: same seed, same fault schedule, same history, bit for bit.
#[test]
fn replicated_failover_replays_bit_for_bit() {
    let seed = 0xFA11;
    let a = run_chaos_scenario(&ChaosScenarioConfig::replicated_failover(seed));
    let b = run_chaos_scenario(&ChaosScenarioConfig::replicated_failover(seed));
    assert_eq!(a.fault_digest, b.fault_digest, "fault schedules diverged");
    assert_eq!(a.history_digest, b.history_digest, "histories diverged");
    assert_eq!(a.verdict.is_ok(), b.verdict.is_ok());
}

/// The multiplexed client's failure containment, scripted frame by frame on
/// the simulated transport: reordered responses are matched by correlation
/// id (no fault at all), and a duplicated response surfaces as a `Desync`
/// charged to exactly the request that was awaiting — the connection is
/// NOT poisoned, no reconnect happens, and the very next request on the
/// same connection succeeds (the duplicate's victim is tombstoned, so its
/// late real answer is silently discarded).
#[test]
fn multiplexed_client_charges_desyncs_per_request_not_per_connection() {
    use bytes::Bytes;
    use txcache_repro::cache_server::{LookupOutcome, LookupRequest, MissKind};
    use txcache_repro::txcache::backend::{CacheBackend, RemoteCluster, RemoteOptions};
    use txcache_repro::txtypes::{CacheKey, TagSet, Timestamp, ValidityInterval, WallClock};
    use txcache_repro::wire::{FramedStream, Listener, MissCode, Response, SimNet};

    let net = SimNet::new(seed_from_env(7));
    let listener = net.bind("node-0");

    // A scripted server standing in for the network's misbehavior: it
    // reorders one put ack behind a later hit, duplicates one miss, and
    // otherwise answers normally.
    let hit = || Response::Hit {
        value: Bytes::from_static(b"v1"),
        validity: ValidityInterval::unbounded(Timestamp(1)),
        stored_validity: ValidityInterval::unbounded(Timestamp(1)),
        tags: TagSet::new(),
    };
    let server = std::thread::spawn(move || {
        let conn = listener.accept().unwrap();
        let mut framed = FramedStream::new(conn);
        let next = |framed: &mut FramedStream<_>| framed.recv_request().unwrap().unwrap().0;

        // 1: the put — hold its ack.
        let put_seq = next(&mut framed);
        // 2: a get — answer it BEFORE the held ack (reorder).
        let get1 = next(&mut framed);
        framed.send_response(get1, &hit()).unwrap();
        framed.send_response(put_seq, &Response::PutAck).unwrap();
        // 3: a get for an absent key — answer it twice (duplicate).
        let get2 = next(&mut framed);
        let miss = Response::Miss {
            kind: MissCode::Compulsory,
        };
        framed.send_response(get2, &miss).unwrap();
        framed.send_response(get2, &miss).unwrap();
        // 4 and 5: normal gets, answered normally.
        let get3 = next(&mut framed);
        framed.send_response(get3, &hit()).unwrap();
        let get4 = next(&mut framed);
        framed.send_response(get4, &hit()).unwrap();
    });

    let remote = RemoteCluster::connect_via(
        net.clone(),
        &["node-0".to_string()],
        RemoteOptions::default(),
    )
    .unwrap();
    let k1 = CacheKey::new("f", "[1]");
    let k2 = CacheKey::new("f", "[2]");
    let request = LookupRequest::at(Timestamp(1));

    // Pipelined put, ack uncollected.
    remote.insert(
        k1.clone(),
        Bytes::from_static(b"v1"),
        ValidityInterval::unbounded(Timestamp(1)),
        TagSet::new(),
        WallClock::ZERO,
    );
    // The reordered exchange: the hit comes back before the put ack, and
    // the late ack is absorbed by the pending table — no fault at all.
    assert!(remote.lookup(&k1, &request).is_hit(), "reordered hit");
    assert!(!remote.lookup(&k2, &request).is_hit(), "genuine miss");
    assert_eq!(
        remote.degraded_ops(),
        0,
        "reordering alone must not degrade anything"
    );

    // The duplicated miss lands where the next request's response belongs:
    // that one request degrades as a Desync...
    match remote.lookup(&k1, &request) {
        LookupOutcome::Miss(MissKind::Capacity) => {}
        other => panic!("the duplicate's victim must degrade to a miss, got {other:?}"),
    }
    assert_eq!(remote.degraded_ops(), 1, "exactly one op degrades");
    // ...but the connection survives: the next request on the SAME
    // connection succeeds (its recv discards the victim's tombstoned late
    // answer first), and no reconnect ever happens.
    assert!(
        remote.lookup(&k1, &request).is_hit(),
        "the connection must stay usable after a desync"
    );
    assert_eq!(remote.degraded_ops(), 1);
    assert_eq!(
        remote.reconnects(),
        0,
        "a desync must not drop the pooled connection"
    );
    server.join().unwrap();
}

/// Port of `net_smoke::healed_connection_seals_still_valid_entries` to the
/// simulated transport: the same §4.2 recovery rule, with deterministic
/// partition timing and no real sockets or sleeps.
#[test]
fn healed_connection_seals_still_valid_entries_sim() {
    use bytes::Bytes;
    use txcache_repro::cache_server::{LookupRequest, NodeConfig, TxcachedServer};
    use txcache_repro::txcache::backend::{CacheBackend, RemoteCluster, RemoteOptions};
    use txcache_repro::txtypes::{
        CacheKey, InvalidationTag, TagSet, Timestamp, ValidityInterval, WallClock,
    };
    use txcache_repro::wire::SimNet;

    let net = SimNet::new(seed_from_env(1));
    let listener = net.bind("node-0");
    let mut server = TxcachedServer::serve(
        listener,
        "seal-sim",
        NodeConfig {
            capacity_bytes: 4 << 20,
            ..NodeConfig::default()
        },
    )
    .unwrap();
    let options = RemoteOptions {
        op_timeout: std::time::Duration::from_millis(100),
        connect_timeout: std::time::Duration::from_millis(100),
        retry_cooldown: std::time::Duration::ZERO,
        ..RemoteOptions::default()
    };
    let remote = RemoteCluster::connect_via(net.clone(), &["node-0".to_string()], options).unwrap();

    let key = CacheKey::new("f", "[1]");
    let tags: TagSet = [InvalidationTag::keyed("items", "id=1")]
        .into_iter()
        .collect();
    remote.insert(
        key.clone(),
        Bytes::from_static(b"v"),
        ValidityInterval::unbounded(Timestamp(1)),
        tags.clone(),
        WallClock::ZERO,
    );
    remote.apply_invalidations(&[], Timestamp(10));
    assert!(remote
        .lookup(&key, &LookupRequest::at(Timestamp(10)))
        .is_hit());

    // Partition: live connections are reset instantly and reconnects are
    // refused; an invalidation matching the entry is published while the
    // node is unreachable — the batch is lost.
    net.sever("node-0");
    net.partition("node-0");
    let lost = txcache_repro::mvdb::InvalidationMessage {
        timestamp: Timestamp(15),
        tags,
        committed_at: WallClock::ZERO,
    };
    remote.apply_invalidations(&[lost], Timestamp(15));
    assert!(remote.degraded_ops() > 0, "the lost batch must be counted");

    // Heal — deterministically, no cooldown sleep. The reconnect seals the
    // entry at the node's horizon (ts 10), so the later heartbeat must NOT
    // extend it past the lost invalidation at ts 15.
    net.heal("node-0");
    remote.apply_invalidations(&[], Timestamp(30));
    assert_eq!(remote.reconnects(), 1, "the heal must be counted");
    assert!(
        !remote
            .lookup(&key, &LookupRequest::at(Timestamp(20)))
            .is_hit(),
        "a sealed entry must not be served past the lost invalidation"
    );
    // Below the seal point the entry is still good.
    assert!(remote
        .lookup(&key, &LookupRequest::at(Timestamp(5)))
        .is_hit());
    assert_eq!(remote.stats().sealed_entries, 1);
    server.shutdown();
}
