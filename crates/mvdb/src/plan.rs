//! Query planning and invalidation-tag assignment (§5.3).
//!
//! The planner picks an access method for the outer table and for the joined
//! table (if any). The access method determines the invalidation tags the
//! query receives: index equality and IN-list probes yield keyed
//! `TABLE:COL=VALUE` tags (one per probed key), while sequential scans,
//! index range scans, and the ordered/endpoint fast paths yield the wildcard
//! `TABLE:?` tag, exactly as described in the paper. Tags for index-nested-
//! loop joins are produced at execution time, one keyed tag per probed join
//! key.
//!
//! Access paths form a cost lattice — `IndexEq` ≻ `IndexIn` ≻ `IndexRange` ≻
//! `SeqScan` — and after the base choice the planner *upgrades* SeqScan (or a
//! same-column IndexRange, whose bounds it absorbs) to `IndexOrdered` for
//! ORDER BY pushdown or `IndexEndpoint` for MIN/MAX probes when the relevant
//! column is indexed. Keyed paths are never downgraded: their tags are
//! sharper, which matters more to the cache tier than saving a sort.

use serde::{Deserialize, Serialize};
use txtypes::{Error, InvalidationTag, Result, TagSet};

use crate::query::{Aggregate, CmpOp, Join, Predicate, SelectQuery, SortOrder};
use crate::table::Table;
use crate::value::Value;

/// How the executor will fetch candidate tuples from a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AccessPath {
    /// Probe an index for a single key.
    IndexEq {
        /// Indexed column.
        column: String,
        /// Key value.
        value: Value,
    },
    /// Probe an index once per IN-list member, emitting one keyed tag per
    /// probed key. `values` are deduplicated, NULL-free, and sorted at plan
    /// time so probe order (and page accounting) is deterministic.
    IndexIn {
        /// Indexed column.
        column: String,
        /// Distinct non-NULL keys to probe.
        values: Vec<Value>,
    },
    /// Walk an index between two optional (inclusive) bounds.
    IndexRange {
        /// Indexed column.
        column: String,
        /// Lower bound, if any.
        lo: Option<Value>,
        /// Upper bound, if any.
        hi: Option<Value>,
    },
    /// Walk an index in sort order for ORDER BY (+ LIMIT) pushdown, visiting
    /// key groups lazily so the executor can stop after `limit` visible rows.
    /// Bounds are absorbed from a same-column range predicate, if any.
    IndexOrdered {
        /// Indexed column (the ORDER BY column).
        column: String,
        /// Walk direction.
        order: SortOrder,
        /// Lower bound, if any (inclusive).
        lo: Option<Value>,
        /// Upper bound, if any (inclusive).
        hi: Option<Value>,
    },
    /// Walk an index from one end to answer MIN/MAX on the indexed column,
    /// stopping at the first key group with a visible matching row.
    IndexEndpoint {
        /// Indexed column (the aggregate's column).
        column: String,
        /// `true` for MAX (walk from the high end), `false` for MIN.
        max: bool,
        /// Lower bound, if any (inclusive).
        lo: Option<Value>,
        /// Upper bound, if any (inclusive).
        hi: Option<Value>,
    },
    /// Scan the whole heap.
    SeqScan,
}

impl AccessPath {
    /// The invalidation tags this access method contributes for `table`
    /// (§5.3): keyed for index equality and per probed IN-list key, wildcard
    /// otherwise.
    #[must_use]
    pub fn invalidation_tags(&self, table: &str) -> Vec<InvalidationTag> {
        match self {
            AccessPath::IndexEq { column, value } => {
                vec![InvalidationTag::keyed(
                    table,
                    format!("{}={}", column, value.render_key()),
                )]
            }
            AccessPath::IndexIn { column, values } => values
                .iter()
                .map(|v| InvalidationTag::keyed(table, format!("{}={}", column, v.render_key())))
                .collect(),
            AccessPath::IndexRange { .. }
            | AccessPath::IndexOrdered { .. }
            | AccessPath::IndexEndpoint { .. }
            | AccessPath::SeqScan => vec![InvalidationTag::wildcard(table)],
        }
    }

    /// Short label for observability counters (`db.plan.<label>`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            AccessPath::IndexEq { .. } => "index_eq",
            AccessPath::IndexIn { .. } => "index_in",
            AccessPath::IndexRange { .. } => "index_range",
            AccessPath::IndexOrdered { .. } => "index_ordered",
            AccessPath::IndexEndpoint { .. } => "index_endpoint",
            AccessPath::SeqScan => "seq_scan",
        }
    }
}

/// How the inner table of a join is accessed for each outer row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JoinAccess {
    /// Probe an index on the inner join column with the outer row's key.
    IndexNestedLoop,
    /// Scan the inner table for each outer row (only when no index exists).
    NestedLoopScan,
}

/// The planned join.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinPlan {
    /// The join specification from the query.
    pub join: Join,
    /// The chosen inner access method.
    pub access: JoinAccess,
}

/// A fully planned query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryPlan {
    /// The outer table.
    pub table: String,
    /// Outer access method.
    pub access: AccessPath,
    /// The full outer predicate (the executor re-checks it even when an index
    /// provided the equality, which keeps correctness independent of the
    /// access path).
    pub predicate: Predicate,
    /// Planned join, if the query has one.
    pub join: Option<JoinPlan>,
    /// The original query (projection, ordering, limit, aggregate).
    pub query: SelectQuery,
    /// Tags known at plan time (outer access + wildcard for scanned joins).
    pub base_tags: TagSet,
}

/// Plans `query` against the given tables.
///
/// `outer` must be the table named by `query.table`; `inner` must be present
/// iff the query has a join and must match the joined table.
pub fn plan_query(query: &SelectQuery, outer: &Table, inner: Option<&Table>) -> Result<QueryPlan> {
    if outer.schema().name != query.table {
        return Err(Error::Query(format!(
            "planner given table '{}' for query over '{}'",
            outer.schema().name,
            query.table
        )));
    }
    let access = if query.force_seq_scan {
        AccessPath::SeqScan
    } else {
        upgrade_access_path(choose_access_path(&query.predicate, outer), query, outer)
    };
    let mut base_tags = TagSet::new();
    for tag in access.invalidation_tags(&query.table) {
        base_tags.insert(tag);
    }

    let join = match (&query.join, inner) {
        (None, _) => None,
        (Some(join), Some(inner_table)) => {
            if inner_table.schema().name != join.table {
                return Err(Error::Query(format!(
                    "planner given inner table '{}' for join over '{}'",
                    inner_table.schema().name,
                    join.table
                )));
            }
            // Validate join columns exist.
            outer.schema().column_index(&join.left_column)?;
            inner_table.schema().column_index(&join.right_column)?;
            let access = if inner_table.has_index_on(&join.right_column) {
                JoinAccess::IndexNestedLoop
            } else {
                base_tags.insert(InvalidationTag::wildcard(&join.table));
                JoinAccess::NestedLoopScan
            };
            Some(JoinPlan {
                join: join.clone(),
                access,
            })
        }
        (Some(join), None) => {
            return Err(Error::Query(format!(
                "query joins '{}' but no inner table was supplied",
                join.table
            )))
        }
    };

    Ok(QueryPlan {
        table: query.table.clone(),
        access,
        predicate: query.predicate.clone(),
        join,
        query: query.clone(),
        base_tags,
    })
}

/// Upgrades a base access path to an order-aware fast path when the query
/// shape allows it.
///
/// `IndexOrdered` replaces SeqScan (or an IndexRange on the ORDER BY column,
/// absorbing its bounds) for no-join, no-aggregate queries ordering by an
/// indexed column — gated on the index holding no NULL sort keys, because
/// NULLs sort first in a materialized sort but are invisible to the index.
/// `IndexEndpoint` does the same for MIN/MAX aggregates on an indexed column;
/// it needs no NULL gate since both the index walk and the reference scan
/// ignore NULLs when computing MIN/MAX. Keyed paths (IndexEq/IndexIn) are
/// never replaced: their tags are sharper.
fn upgrade_access_path(base: AccessPath, query: &SelectQuery, table: &Table) -> AccessPath {
    if query.join.is_some() {
        return base;
    }
    // Bounds the base path already commits to, if it is replaceable for
    // walks over `column`; `None` means "keep the base path".
    let absorbable = |column: &str| -> Option<(Option<Value>, Option<Value>)> {
        match &base {
            AccessPath::SeqScan => Some((None, None)),
            AccessPath::IndexRange { column: c, lo, hi } if c == column => {
                Some((lo.clone(), hi.clone()))
            }
            _ => None,
        }
    };
    match &query.aggregate {
        Some(Aggregate::Min(col)) | Some(Aggregate::Max(col)) => {
            if table.has_index_on(col) {
                if let Some((lo, hi)) = absorbable(col) {
                    return AccessPath::IndexEndpoint {
                        column: col.clone(),
                        max: matches!(query.aggregate, Some(Aggregate::Max(_))),
                        lo,
                        hi,
                    };
                }
            }
            base
        }
        Some(_) => base,
        None => {
            if let Some((col, order)) = &query.order_by {
                if table.has_index_on(col) && table.index_null_count(col) == 0 {
                    if let Some((lo, hi)) = absorbable(col) {
                        return AccessPath::IndexOrdered {
                            column: col.clone(),
                            order: *order,
                            lo,
                            hi,
                        };
                    }
                }
            }
            base
        }
    }
}

/// Picks the cheapest access path supported by the predicate and the table's
/// indexes: index equality beats IN-list probes beats index range beats
/// sequential scan.
///
/// Exposed so the DML path (UPDATE/DELETE) can locate target rows the same
/// way SELECT does.
pub fn choose_access_path(predicate: &Predicate, table: &Table) -> AccessPath {
    let conjuncts = predicate.conjuncts();

    // Prefer an equality on an indexed column.
    for p in &conjuncts {
        if let Predicate::Cmp {
            column,
            op: CmpOp::Eq,
            value,
        } = p
        {
            if table.has_index_on(column) && !value.is_null() {
                return AccessPath::IndexEq {
                    column: column.clone(),
                    value: value.clone(),
                };
            }
        }
    }

    // Then an IN-list on an indexed column: one probe (and one keyed tag)
    // per distinct non-NULL member.
    for p in &conjuncts {
        if let Predicate::In { column, values } = p {
            if table.has_index_on(column) {
                let mut keys: Vec<Value> =
                    values.iter().filter(|v| !v.is_null()).cloned().collect();
                keys.sort();
                keys.dedup();
                return AccessPath::IndexIn {
                    column: column.clone(),
                    values: keys,
                };
            }
        }
    }

    // Otherwise look for range conditions on a single indexed column.
    for p in &conjuncts {
        if let Predicate::Cmp { column, op, value } = p {
            if !table.has_index_on(column) || value.is_null() {
                continue;
            }
            let (mut lo, mut hi) = (None, None);
            match op {
                CmpOp::Gt | CmpOp::Ge => lo = Some(value.clone()),
                CmpOp::Lt | CmpOp::Le => hi = Some(value.clone()),
                _ => continue,
            }
            // Try to find the matching opposite bound on the same column.
            for q in &conjuncts {
                if let Predicate::Cmp {
                    column: c2,
                    op: op2,
                    value: v2,
                } = q
                {
                    if c2 == column {
                        match op2 {
                            CmpOp::Gt | CmpOp::Ge if lo.is_none() => lo = Some(v2.clone()),
                            CmpOp::Lt | CmpOp::Le if hi.is_none() => hi = Some(v2.clone()),
                            _ => {}
                        }
                    }
                }
            }
            return AccessPath::IndexRange {
                column: column.clone(),
                lo,
                hi,
            };
        }
    }

    AccessPath::SeqScan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::value::ColumnType;

    fn items_table() -> Table {
        let schema = TableSchema::new("items")
            .column("id", ColumnType::Int)
            .column("seller", ColumnType::Int)
            .column("category", ColumnType::Int)
            .column("price", ColumnType::Float)
            .unique_index("id")
            .index("category");
        Table::new(schema, 16).unwrap()
    }

    fn users_table() -> Table {
        let schema = TableSchema::new("users")
            .column("id", ColumnType::Int)
            .column("region", ColumnType::Int)
            .unique_index("id");
        Table::new(schema, 16).unwrap()
    }

    #[test]
    fn equality_on_indexed_column_uses_index_eq() {
        let t = items_table();
        let q = SelectQuery::table("items").filter(Predicate::eq("id", 42i64));
        let plan = plan_query(&q, &t, None).unwrap();
        assert_eq!(
            plan.access,
            AccessPath::IndexEq {
                column: "id".into(),
                value: Value::Int(42)
            }
        );
        assert_eq!(
            plan.base_tags.tags(),
            &[InvalidationTag::keyed("items", "id=42")]
        );
    }

    #[test]
    fn equality_on_unindexed_column_falls_back_to_scan() {
        let t = items_table();
        let q = SelectQuery::table("items").filter(Predicate::eq("price", 10.0));
        let plan = plan_query(&q, &t, None).unwrap();
        assert_eq!(plan.access, AccessPath::SeqScan);
        assert_eq!(plan.base_tags.tags(), &[InvalidationTag::wildcard("items")]);
    }

    #[test]
    fn range_on_indexed_column_uses_index_range_with_wildcard_tag() {
        let t = items_table();
        let q = SelectQuery::table("items").filter(
            Predicate::cmp("category", CmpOp::Ge, 3i64).and(Predicate::cmp(
                "category",
                CmpOp::Le,
                5i64,
            )),
        );
        let plan = plan_query(&q, &t, None).unwrap();
        assert_eq!(
            plan.access,
            AccessPath::IndexRange {
                column: "category".into(),
                lo: Some(Value::Int(3)),
                hi: Some(Value::Int(5)),
            }
        );
        assert_eq!(plan.base_tags.tags(), &[InvalidationTag::wildcard("items")]);
    }

    #[test]
    fn equality_preferred_over_range() {
        let t = items_table();
        let q = SelectQuery::table("items")
            .filter(Predicate::cmp("category", CmpOp::Ge, 3i64).and(Predicate::eq("id", 7i64)));
        let plan = plan_query(&q, &t, None).unwrap();
        assert!(matches!(plan.access, AccessPath::IndexEq { .. }));
    }

    #[test]
    fn join_with_inner_index_plans_index_nested_loop() {
        let items = items_table();
        let users = users_table();
        let q = SelectQuery::table("items")
            .filter(Predicate::eq("category", 3i64))
            .join("users", "seller", "id");
        let plan = plan_query(&q, &items, Some(&users)).unwrap();
        let join = plan.join.unwrap();
        assert_eq!(join.access, JoinAccess::IndexNestedLoop);
        // No wildcard tag for users at plan time; keyed tags come at exec time.
        assert!(!plan
            .base_tags
            .tags()
            .contains(&InvalidationTag::wildcard("users")));
    }

    #[test]
    fn join_without_inner_index_gets_wildcard_tag() {
        let items = items_table();
        let users_schema = TableSchema::new("users")
            .column("id", ColumnType::Int)
            .column("region", ColumnType::Int);
        let users = Table::new(users_schema, 16).unwrap();
        let q = SelectQuery::table("items").join("users", "seller", "id");
        let plan = plan_query(&q, &items, Some(&users)).unwrap();
        assert_eq!(plan.join.unwrap().access, JoinAccess::NestedLoopScan);
        assert!(plan
            .base_tags
            .tags()
            .contains(&InvalidationTag::wildcard("users")));
    }

    #[test]
    fn planner_rejects_mismatched_tables() {
        let items = items_table();
        let users = users_table();
        let q = SelectQuery::table("items");
        assert!(plan_query(&q, &users, None).is_err());
        let qj = SelectQuery::table("items").join("users", "seller", "id");
        assert!(plan_query(&qj, &items, None).is_err());
        assert!(plan_query(&qj, &items, Some(&items)).is_err());
    }

    #[test]
    fn join_on_missing_column_is_rejected() {
        let items = items_table();
        let users = users_table();
        let q = SelectQuery::table("items").join("users", "nope", "id");
        assert!(plan_query(&q, &items, Some(&users)).is_err());
    }

    #[test]
    fn in_list_on_indexed_column_probes_with_keyed_tags() {
        let t = items_table();
        let q = SelectQuery::table("items").filter(
            Predicate::in_list("category", [5i64, 3, 5, 3]).and(Predicate::eq("price", 1.0)),
        );
        let plan = plan_query(&q, &t, None).unwrap();
        assert_eq!(
            plan.access,
            AccessPath::IndexIn {
                column: "category".into(),
                values: vec![Value::Int(3), Value::Int(5)],
            }
        );
        let mut tags = plan.base_tags.tags().to_vec();
        tags.sort();
        let mut want = vec![
            InvalidationTag::keyed("items", "category=3"),
            InvalidationTag::keyed("items", "category=5"),
        ];
        want.sort();
        assert_eq!(tags, want);
    }

    #[test]
    fn in_list_drops_null_members_and_eq_still_wins() {
        let t = items_table();
        let q = SelectQuery::table("items")
            .filter(Predicate::in_list("category", [Value::Int(3), Value::Null]));
        let plan = plan_query(&q, &t, None).unwrap();
        assert_eq!(
            plan.access,
            AccessPath::IndexIn {
                column: "category".into(),
                values: vec![Value::Int(3)],
            }
        );
        let q = SelectQuery::table("items")
            .filter(Predicate::in_list("category", [3i64, 4]).and(Predicate::eq("id", 7i64)));
        let plan = plan_query(&q, &t, None).unwrap();
        assert!(matches!(plan.access, AccessPath::IndexEq { .. }));
    }

    #[test]
    fn in_list_on_unindexed_column_falls_back_to_scan() {
        let t = items_table();
        let q = SelectQuery::table("items").filter(Predicate::in_list("price", [1.0, 2.0]));
        let plan = plan_query(&q, &t, None).unwrap();
        assert_eq!(plan.access, AccessPath::SeqScan);
    }

    #[test]
    fn order_by_indexed_column_upgrades_to_index_ordered() {
        let t = items_table();
        let q = SelectQuery::table("items")
            .order_by("category", SortOrder::Desc)
            .limit(10);
        let plan = plan_query(&q, &t, None).unwrap();
        assert_eq!(
            plan.access,
            AccessPath::IndexOrdered {
                column: "category".into(),
                order: SortOrder::Desc,
                lo: None,
                hi: None,
            }
        );
        assert_eq!(plan.base_tags.tags(), &[InvalidationTag::wildcard("items")]);
    }

    #[test]
    fn index_ordered_absorbs_same_column_range_bounds() {
        let t = items_table();
        let q = SelectQuery::table("items")
            .filter(
                Predicate::cmp("category", CmpOp::Ge, 3i64).and(Predicate::cmp(
                    "category",
                    CmpOp::Le,
                    5i64,
                )),
            )
            .order_by("category", SortOrder::Asc);
        let plan = plan_query(&q, &t, None).unwrap();
        assert_eq!(
            plan.access,
            AccessPath::IndexOrdered {
                column: "category".into(),
                order: SortOrder::Asc,
                lo: Some(Value::Int(3)),
                hi: Some(Value::Int(5)),
            }
        );
    }

    #[test]
    fn order_by_upgrade_gated_on_null_free_index() {
        use crate::tuple::TupleVersion;
        use txtypes::Timestamp;
        let mut t = items_table();
        let row = t.allocate_row_id();
        t.insert_version(TupleVersion::committed(
            row,
            vec![Value::Int(1), Value::Int(1), Value::Null, Value::Float(1.0)],
            Timestamp(1),
        ))
        .unwrap();
        let q = SelectQuery::table("items").order_by("category", SortOrder::Asc);
        let plan = plan_query(&q, &t, None).unwrap();
        assert_eq!(plan.access, AccessPath::SeqScan);
        // NULL-free indexed column still upgrades.
        let q = SelectQuery::table("items").order_by("id", SortOrder::Asc);
        let plan = plan_query(&q, &t, None).unwrap();
        assert!(matches!(plan.access, AccessPath::IndexOrdered { .. }));
    }

    #[test]
    fn order_by_does_not_downgrade_keyed_paths_or_joins() {
        let items = items_table();
        let q = SelectQuery::table("items")
            .filter(Predicate::eq("category", 3i64))
            .order_by("id", SortOrder::Asc)
            .limit(5);
        let plan = plan_query(&q, &items, None).unwrap();
        assert!(matches!(plan.access, AccessPath::IndexEq { .. }));

        let users = users_table();
        let qj = SelectQuery::table("items")
            .join("users", "seller", "id")
            .order_by("id", SortOrder::Asc);
        let plan = plan_query(&qj, &items, Some(&users)).unwrap();
        assert_eq!(plan.access, AccessPath::SeqScan);
    }

    #[test]
    fn min_max_on_indexed_column_upgrades_to_endpoint() {
        let t = items_table();
        let q = SelectQuery::table("items").aggregate(Aggregate::Max("id".into()));
        let plan = plan_query(&q, &t, None).unwrap();
        assert_eq!(
            plan.access,
            AccessPath::IndexEndpoint {
                column: "id".into(),
                max: true,
                lo: None,
                hi: None,
            }
        );
        let q = SelectQuery::table("items")
            .filter(Predicate::cmp("category", CmpOp::Ge, 2i64))
            .aggregate(Aggregate::Min("category".into()));
        let plan = plan_query(&q, &t, None).unwrap();
        assert_eq!(
            plan.access,
            AccessPath::IndexEndpoint {
                column: "category".into(),
                max: false,
                lo: Some(Value::Int(2)),
                hi: None,
            }
        );
        // MIN/MAX on an unindexed column keeps the base path.
        let q = SelectQuery::table("items").aggregate(Aggregate::Min("price".into()));
        let plan = plan_query(&q, &t, None).unwrap();
        assert_eq!(plan.access, AccessPath::SeqScan);
    }

    #[test]
    fn force_seq_scan_bypasses_every_fast_path() {
        let t = items_table();
        let q = SelectQuery::table("items")
            .filter(Predicate::eq("id", 1i64))
            .order_by("id", SortOrder::Asc)
            .force_seq_scan();
        let plan = plan_query(&q, &t, None).unwrap();
        assert_eq!(plan.access, AccessPath::SeqScan);
        assert_eq!(plan.base_tags.tags(), &[InvalidationTag::wildcard("items")]);
    }
}
