//! Length-prefixed framing over any `Read`/`Write` transport.
//!
//! A frame is a little-endian `u32` body length followed by the body. The
//! framing layer is transport-agnostic: the `txcached` server and the
//! remote client both run it over [`crate::Transport`] implementations
//! (real `TcpStream`s or the chaos-testing [`crate::sim::SimConn`]), and
//! the tests run it over in-memory buffers.
//!
//! ## Request correlation (protocol v2) and multiplexing (protocol v4)
//!
//! Every body carried through a [`FramedStream`] starts with an 8-byte
//! little-endian **sequence number**. The client stamps each request with
//! the next value of a per-connection counter; the server echoes the
//! request's sequence number in its response. Since protocol v4 the
//! sequence numbers are *correlation ids*: many requests may be in flight
//! on one connection, the server may answer them in any order (its worker
//! pool completes requests as the cache shards release them), and the
//! stream layer pairs each response with its request through a
//! **pending-request table** instead of the old strict oldest-outstanding
//! check. A response whose id is not in the table — a duplicated frame, or
//! a frame invented by a confused peer — is still detected as
//! [`WireError::Desync`] *before* a wrong value can be attributed to the
//! wrong request; since the stream itself remains frame-aligned, only the
//! request that was being waited on degrades (it is abandoned and its late
//! response, if any, silently discarded) while the connection and its
//! other in-flight requests stay usable. Transport errors, by contrast,
//! still poison the whole connection.
//!
//! ## Partial reads
//!
//! [`FramedStream`] reads are *resumable*: if the transport returns a
//! timeout mid-frame (a slow peer, an injected delay), the bytes already
//! consumed are kept, and the next receive call continues where the last
//! one stopped instead of desynchronizing the stream or surfacing a decode
//! error. Only clean EOFs at a frame boundary are reported as end of
//! stream; an EOF mid-frame is [`WireError::Truncated`].
//!
//! ## Zero-copy receive
//!
//! Received frames are handed to the decoder as shared [`bytes::Bytes`]
//! buffers, so a hit's value travels from the socket buffer to the caller
//! with one allocation per *frame* — per-value payload bytes are
//! reference-counted subrange slices, never copied again.

use std::collections::{BTreeSet, HashSet, VecDeque};
use std::io::{Read, Write};

use bytes::Bytes;

use crate::msg::{Request, Response};
use crate::WireError;

/// The protocol version this crate encodes and accepts. Version 2 added
/// the per-request sequence number carried by [`FramedStream`]; version 3
/// added `history_floor_drops` to the `StatsSnapshot` layout and the
/// per-shard stats request/response pair; version 4 made the sequence
/// numbers true correlation ids (responses may arrive out of request
/// order) and added the scatter-gather `MultiGet`/`MultiPut` opcodes;
/// version 5 added the `RingEpoch` membership announcement with its
/// `EpochAck`/`WrongEpoch` responses and a ring-epoch fencing field on
/// `MultiGet`/`MultiPut`; version 6 added the `Metrics` request and its
/// `MetricsSnapshot` response, carrying a node's full observability
/// registry (counters, gauges, and log2 latency histogram buckets).
pub const PROTOCOL_VERSION: u8 = 6;

/// Upper bound on a frame body; larger declared lengths are rejected before
/// any allocation happens.
pub const MAX_FRAME_BYTES: usize = 32 << 20;

/// Bytes of sequence number prefixed to every framed message body.
pub const SEQ_BYTES: usize = 8;

/// Writes one frame (length prefix + body) and flushes.
///
/// Small frames go out in a single `write` call: on an unbuffered socket,
/// a separately written 4-byte prefix becomes its own tiny TCP segment,
/// and with Nagle enabled the body is then withheld until that segment is
/// ACKed — a latency cliff at best, a wedged connection at worst. Large
/// bodies are written separately to skip the copy; their first segment is
/// MSS-sized, so the tiny-segment interlock cannot arise.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> crate::Result<()> {
    if body.len() > MAX_FRAME_BYTES {
        return Err(WireError::TooLarge(body.len()));
    }
    let prefix = (body.len() as u32).to_le_bytes();
    if body.len() <= 64 * 1024 {
        let mut frame = Vec::with_capacity(4 + body.len());
        frame.extend_from_slice(&prefix);
        frame.extend_from_slice(body);
        w.write_all(&frame)?;
    } else {
        w.write_all(&prefix)?;
        w.write_all(body)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads one frame body from a stateless reader. Returns `Ok(None)` on a
/// clean EOF at a frame boundary (the peer closed the connection between
/// frames).
///
/// This free function has no resumption state: a timeout mid-frame loses
/// the partial bytes. Connection handlers should read through
/// [`FramedStream`], which resumes cleanly.
pub fn read_frame(r: &mut impl Read) -> crate::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // A clean close before any length byte is a normal disconnect; a close
    // mid-prefix or mid-body is a truncated frame.
    match r.read(&mut len_buf)? {
        0 => return Ok(None),
        n => r.read_exact(&mut len_buf[n..]).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                WireError::Truncated
            } else {
                WireError::Io(e)
            }
        })?,
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::TooLarge(len));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    })?;
    Ok(Some(body))
}

/// A bidirectional framed message stream over any `Read + Write` transport.
///
/// Used symmetrically: the server reads requests and writes responses, the
/// client writes requests and reads responses. `send_request` and the
/// `recv_*` family are separate calls so a client can *multiplex* — keep
/// many requests in flight on one connection and collect their responses in
/// whatever order the server finishes them, pairing each by its correlation
/// id through the pending-request table (protocol v4).
#[derive(Debug)]
pub struct FramedStream<S> {
    stream: S,
    /// The in-progress incoming frame (length prefix included), kept
    /// across calls so a timeout mid-frame resumes instead of
    /// desynchronizing. Zero-extended to the currently known frame size;
    /// `rx_filled` tracks how many bytes are real.
    rx_partial: Vec<u8>,
    /// How many bytes of `rx_partial` have been received so far.
    rx_filled: usize,
    /// The next request sequence number to stamp.
    tx_seq: u64,
    /// Correlation ids of sent requests whose responses are outstanding.
    /// Ordered so a desync diagnostic can name the oldest outstanding id.
    pending: BTreeSet<u64>,
    /// Responses that arrived while a caller was waiting for a *different*
    /// correlation id ([`FramedStream::recv_for`]); drained before the
    /// transport is read again.
    mailbox: VecDeque<(u64, Response)>,
    /// Ids of requests a caller gave up on after a desync. A late or
    /// duplicated response bearing one of these ids is discarded silently
    /// instead of cascading desyncs through unrelated in-flight requests.
    abandoned: HashSet<u64>,
}

impl<S: Read + Write> FramedStream<S> {
    /// Wraps a transport.
    #[must_use]
    pub fn new(stream: S) -> FramedStream<S> {
        FramedStream {
            stream,
            rx_partial: Vec::new(),
            rx_filled: 0,
            tx_seq: 1,
            pending: BTreeSet::new(),
            mailbox: VecDeque::new(),
            abandoned: HashSet::new(),
        }
    }

    /// Returns the underlying transport.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.stream
    }

    /// Borrows the underlying transport (e.g. to adjust socket timeouts).
    #[must_use]
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Mutably borrows the underlying transport, for callers that need to
    /// read or write raw frames alongside the typed helpers.
    #[must_use]
    pub fn transport_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    /// Reads one frame body, resuming any partial frame left by an earlier
    /// timeout. `Ok(None)` on a clean EOF at a frame boundary.
    pub fn recv_frame(&mut self) -> crate::Result<Option<Vec<u8>>> {
        loop {
            let have = self.rx_filled;
            let need = if have < 4 {
                4
            } else {
                let len = u32::from_le_bytes([
                    self.rx_partial[0],
                    self.rx_partial[1],
                    self.rx_partial[2],
                    self.rx_partial[3],
                ]) as usize;
                if len > MAX_FRAME_BYTES {
                    self.rx_partial.clear();
                    self.rx_filled = 0;
                    return Err(WireError::TooLarge(len));
                }
                if have == 4 + len {
                    let mut frame = std::mem::take(&mut self.rx_partial);
                    self.rx_filled = 0;
                    frame.drain(..4);
                    return Ok(Some(frame));
                }
                4 + len
            };
            // Zero-extend once per stage (prefix, then body) — the fill
            // cursor makes chunked delivery linear, not quadratic.
            if self.rx_partial.len() != need {
                self.rx_partial.resize(need, 0);
            }
            match self.stream.read(&mut self.rx_partial[have..need]) {
                Ok(0) => {
                    if have == 0 {
                        return Ok(None);
                    }
                    return Err(WireError::Truncated);
                }
                Ok(n) => self.rx_filled = have + n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // The partial frame (and fill cursor) stay put: a retry
                    // after a timeout resumes exactly where this read
                    // stopped.
                    return Err(WireError::Io(e));
                }
            }
        }
    }

    /// Sends one request frame, stamped with the next sequence number, and
    /// returns that number — the correlation id to pass to
    /// [`FramedStream::recv_for`]. Any number of requests may be in flight
    /// before a response is collected.
    pub fn send_request(&mut self, request: &Request) -> crate::Result<u64> {
        let seq = self.tx_seq;
        let mut body = Vec::with_capacity(SEQ_BYTES + 32);
        body.extend_from_slice(&seq.to_le_bytes());
        body.extend_from_slice(&request.encode());
        write_frame(&mut self.stream, &body)?;
        // Count the request only once it is fully written: a failed write
        // never produces a response.
        self.tx_seq += 1;
        self.pending.insert(seq);
        Ok(seq)
    }

    /// How many sent requests have no response collected yet.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// The oldest outstanding correlation id, if any request is in flight.
    #[must_use]
    pub fn oldest_pending(&self) -> Option<u64> {
        self.pending.first().copied()
    }

    /// Reads frames until one matches *some* pending request, returning
    /// `(correlation id, response)`; `Ok(None)` on clean disconnect.
    /// Responses to abandoned requests are discarded along the way. A frame
    /// whose id matches nothing — duplicated, reordered upstream, or
    /// invented by a confused peer — is [`WireError::Desync`]; the stream
    /// itself is still frame-aligned afterwards, so the caller may keep the
    /// connection and fail only the affected request.
    fn next_matched(&mut self) -> crate::Result<Option<(u64, Response)>> {
        loop {
            let Some(body) = self.recv_frame()? else {
                return Ok(None);
            };
            let body = Bytes::from(body);
            let (seq, rest) = split_seq_shared(&body)?;
            if self.pending.remove(&seq) {
                return Ok(Some((seq, Response::decode_shared(&rest)?)));
            }
            if self.abandoned.remove(&seq) {
                // A late response to a request the caller already gave up
                // on — drop it so it cannot desync an unrelated request.
                continue;
            }
            return Err(WireError::Desync {
                got: seq,
                want: self.pending.first().copied(),
            });
        }
    }

    /// Takes one already-received response out of the mailbox without
    /// touching the transport — the non-blocking half of the receive path,
    /// used to opportunistically collect pipelined acks that arrived while
    /// a different request was being awaited.
    pub fn pop_mailbox(&mut self) -> Option<(u64, Response)> {
        self.mailbox.pop_front()
    }

    /// Receives the next available response for any pending request,
    /// draining the mailbox first; `Ok(None)` on clean disconnect.
    pub fn recv_matched(&mut self) -> crate::Result<Option<(u64, Response)>> {
        if let Some(entry) = self.mailbox.pop_front() {
            return Ok(Some(entry));
        }
        self.next_matched()
    }

    /// Receives the next available response, discarding its correlation id
    /// — the pre-v4 convenience shape, for callers that treat any matched
    /// response as progress (e.g. draining put acks).
    pub fn recv_response(&mut self) -> crate::Result<Option<Response>> {
        Ok(self.recv_matched()?.map(|(_, response)| response))
    }

    /// Waits for the response to the specific request `seq`, parking
    /// responses to other pending requests in the mailbox for their own
    /// waiters. On [`WireError::Desync`], `seq` is marked abandoned — its
    /// late response, should one arrive, will be silently discarded — so
    /// the connection and other in-flight requests remain usable.
    pub fn recv_for(&mut self, seq: u64) -> crate::Result<Response> {
        if let Some(at) = self.mailbox.iter().position(|(s, _)| *s == seq) {
            return Ok(self.mailbox.remove(at).expect("position is in range").1);
        }
        loop {
            match self.next_matched() {
                Ok(Some((got, response))) if got == seq => return Ok(response),
                Ok(Some(other)) => self.mailbox.push_back(other),
                Ok(None) => {
                    self.pending.remove(&seq);
                    return Err(WireError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed awaiting response",
                    )));
                }
                Err(e) => {
                    if matches!(e, WireError::Desync { .. }) && self.pending.remove(&seq) {
                        self.abandoned.insert(seq);
                        // Bound the tombstone set: past this size the peer
                        // is hopeless and dropping the connection (which
                        // clears everything) is the caller's only real
                        // option anyway.
                        if self.abandoned.len() > 4096 {
                            self.abandoned.clear();
                        }
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Receives one request frame, returning its sequence number alongside
    /// the body's decode result; `Ok(None)` on clean disconnect.
    ///
    /// Frame-level failures (truncation, oversize, transport errors) are
    /// the outer `Err` — the stream is desynchronized and must be closed.
    /// A body that fails to *decode* is the inner `Err`: the stream is
    /// still at a frame boundary, so the server can answer with an error
    /// frame (echoing the sequence number) and keep serving.
    pub fn recv_request(&mut self) -> crate::Result<Option<(u64, crate::Result<Request>)>> {
        match self.recv_frame()? {
            None => Ok(None),
            Some(body) => {
                let body = Bytes::from(body);
                let (seq, rest) = split_seq_shared(&body)?;
                Ok(Some((seq, Request::decode_shared(&rest))))
            }
        }
    }

    /// Sends one response frame echoing `seq`, the sequence number of the
    /// request being answered.
    pub fn send_response(&mut self, seq: u64, response: &Response) -> crate::Result<()> {
        let mut body = Vec::with_capacity(SEQ_BYTES + 32);
        body.extend_from_slice(&seq.to_le_bytes());
        body.extend_from_slice(&response.encode());
        write_frame(&mut self.stream, &body)
    }

    /// Sends a request and waits for its (correlation-verified) response —
    /// the unmultiplexed convenience path. A clean disconnect mid-call is
    /// an error here.
    pub fn call(&mut self, request: &Request) -> crate::Result<Response> {
        let seq = self.send_request(request)?;
        self.recv_for(seq)
    }
}

/// Splits the 8-byte sequence prefix off a framed body. Servers that
/// manage their own receive buffers (the event-loop server) use this to
/// recover the correlation id before decoding the request payload.
pub fn split_seq(body: &[u8]) -> crate::Result<(u64, &[u8])> {
    if body.len() < SEQ_BYTES {
        return Err(WireError::Truncated);
    }
    let seq = u64::from_le_bytes(body[..SEQ_BYTES].try_into().expect("8 bytes"));
    Ok((seq, &body[SEQ_BYTES..]))
}

/// [`split_seq`] over a shared buffer: the returned body slice shares the
/// frame's allocation, keeping the decode path zero-copy.
fn split_seq_shared(body: &Bytes) -> crate::Result<(u64, Bytes)> {
    if body.len() < SEQ_BYTES {
        return Err(WireError::Truncated);
    }
    let seq = u64::from_le_bytes(body[..SEQ_BYTES].try_into().expect("8 bytes"));
    Ok((seq, body.slice(SEQ_BYTES..)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"second").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"first");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"second");
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn truncated_frames_are_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        // Cut the body short.
        let mut cur = Cursor::new(&buf[..buf.len() - 2]);
        assert!(matches!(read_frame(&mut cur), Err(WireError::Truncated)));
        // Cut the length prefix short.
        let mut cur = Cursor::new(&buf[..2]);
        assert!(matches!(read_frame(&mut cur), Err(WireError::Truncated)));
        // The stateful reader agrees on both.
        let mut framed = FramedStream::new(Cursor::new(buf[..buf.len() - 2].to_vec()));
        assert!(matches!(framed.recv_frame(), Err(WireError::Truncated)));
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cur = Cursor::new(buf.clone());
        assert!(matches!(read_frame(&mut cur), Err(WireError::TooLarge(_))));
        let mut framed = FramedStream::new(Cursor::new(buf));
        assert!(matches!(framed.recv_frame(), Err(WireError::TooLarge(_))));
    }

    /// A transport that interleaves short chunks with timeouts, to exercise
    /// the resumable read path.
    struct Stutter {
        data: Vec<u8>,
        pos: usize,
        /// Return a timeout error on every other read.
        hiccup: bool,
    }

    impl Read for Stutter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.hiccup = !self.hiccup;
            if self.hiccup {
                return Err(std::io::Error::new(std::io::ErrorKind::TimedOut, "stutter"));
            }
            let n = buf.len().min(3).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    impl Write for Stutter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn mid_frame_timeouts_resume_cleanly() {
        let mut data = Vec::new();
        write_frame(&mut data, b"interrupted payload").unwrap();
        write_frame(&mut data, b"second").unwrap();
        let mut framed = FramedStream::new(Stutter {
            data,
            pos: 0,
            hiccup: false,
        });
        let mut frames = Vec::new();
        while frames.len() < 2 {
            match framed.recv_frame() {
                Ok(Some(body)) => frames.push(body),
                Ok(None) => panic!("unexpected EOF"),
                Err(WireError::Io(e)) if e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(frames[0], b"interrupted payload");
        assert_eq!(frames[1], b"second");
    }

    /// Reads from a prepared buffer, discards writes — so a test can send
    /// a request (registering its sequence number) and then feed the
    /// client an arbitrary response stream.
    struct Duplex {
        input: Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Read for Duplex {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Duplex {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn responses_with_wrong_sequence_numbers_are_desyncs() {
        // Hand-build a stream whose single response echoes sequence 9
        // while the client's outstanding request is sequence 1.
        let mut wire_bytes = Vec::new();
        let mut body = 9u64.to_le_bytes().to_vec();
        body.extend_from_slice(&Response::PutAck.encode());
        write_frame(&mut wire_bytes, &body).unwrap();

        let mut framed = FramedStream::new(Duplex {
            input: Cursor::new(wire_bytes),
            output: Vec::new(),
        });
        framed.send_request(&Request::Ping { nonce: 1 }).unwrap();
        assert!(matches!(
            framed.recv_response(),
            Err(WireError::Desync {
                got: 9,
                want: Some(1)
            })
        ));
    }

    #[test]
    fn unsolicited_responses_are_desyncs() {
        let mut wire_bytes = Vec::new();
        let mut body = 1u64.to_le_bytes().to_vec();
        body.extend_from_slice(&Response::PutAck.encode());
        write_frame(&mut wire_bytes, &body).unwrap();
        let mut framed = FramedStream::new(Cursor::new(wire_bytes));
        assert!(matches!(
            framed.recv_response(),
            Err(WireError::Desync { got: 1, want: None })
        ));
    }

    /// Encodes a response frame echoing `seq` into `out`.
    fn push_response(out: &mut Vec<u8>, seq: u64, response: &Response) {
        let mut body = seq.to_le_bytes().to_vec();
        body.extend_from_slice(&response.encode());
        write_frame(out, &body).unwrap();
    }

    #[test]
    fn out_of_order_responses_match_the_pending_table() {
        // Server answers 3, 1, 2 while the client waits 1, 2, 3.
        let mut wire_bytes = Vec::new();
        push_response(&mut wire_bytes, 3, &Response::PutAck);
        push_response(&mut wire_bytes, 1, &Response::Pong { nonce: 11 });
        push_response(&mut wire_bytes, 2, &Response::Pong { nonce: 22 });
        let mut framed = FramedStream::new(Duplex {
            input: Cursor::new(wire_bytes),
            output: Vec::new(),
        });
        let s1 = framed.send_request(&Request::Ping { nonce: 11 }).unwrap();
        let s2 = framed.send_request(&Request::Ping { nonce: 22 }).unwrap();
        let s3 = framed.send_request(&Request::Ping { nonce: 33 }).unwrap();
        assert_eq!((s1, s2, s3), (1, 2, 3));
        assert_eq!(framed.pending_count(), 3);
        assert!(matches!(
            framed.recv_for(s1),
            Ok(Response::Pong { nonce: 11 })
        ));
        // Waiting for 1 parked 3's response in the mailbox.
        assert!(matches!(
            framed.recv_for(s2),
            Ok(Response::Pong { nonce: 22 })
        ));
        assert!(matches!(framed.recv_for(s3), Ok(Response::PutAck)));
        assert_eq!(framed.pending_count(), 0);
    }

    #[test]
    fn desync_abandons_only_the_awaited_request() {
        // Stream: an unsolicited id 99 (desyncs the wait for request 1),
        // then a late response for 1 (now abandoned — must be skipped),
        // then request 2's response (must still match).
        let mut wire_bytes = Vec::new();
        push_response(&mut wire_bytes, 99, &Response::PutAck);
        push_response(&mut wire_bytes, 1, &Response::Pong { nonce: 11 });
        push_response(&mut wire_bytes, 2, &Response::Pong { nonce: 22 });
        let mut framed = FramedStream::new(Duplex {
            input: Cursor::new(wire_bytes),
            output: Vec::new(),
        });
        let s1 = framed.send_request(&Request::Ping { nonce: 11 }).unwrap();
        let s2 = framed.send_request(&Request::Ping { nonce: 22 }).unwrap();
        // The unknown id fails only the request being waited on.
        assert!(matches!(
            framed.recv_for(s1),
            Err(WireError::Desync {
                got: 99,
                want: Some(1)
            })
        ));
        // Request 2 survives: the late response to abandoned 1 is skipped,
        // then 2's own response matches.
        assert!(matches!(
            framed.recv_for(s2),
            Ok(Response::Pong { nonce: 22 })
        ));
        assert_eq!(framed.pending_count(), 0);
    }

    #[test]
    fn recv_matched_returns_any_pending_response() {
        let mut wire_bytes = Vec::new();
        push_response(&mut wire_bytes, 2, &Response::PutAck);
        push_response(&mut wire_bytes, 1, &Response::PutAck);
        let mut framed = FramedStream::new(Duplex {
            input: Cursor::new(wire_bytes),
            output: Vec::new(),
        });
        framed.send_request(&Request::Ping { nonce: 1 }).unwrap();
        framed.send_request(&Request::Ping { nonce: 2 }).unwrap();
        let (first, _) = framed.recv_matched().unwrap().unwrap();
        let (second, _) = framed.recv_matched().unwrap().unwrap();
        assert_eq!((first, second), (2, 1));
        assert!(framed.recv_matched().unwrap().is_none());
    }
}
