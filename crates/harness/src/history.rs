//! A transactional-consistency history recorder and checker.
//!
//! The paper's central claim is that everything a read-only transaction
//! observes — whether it came from the cache or the database — reflects one
//! (possibly slightly stale) snapshot, even under invalidation loss,
//! reordering, and node failure. End-state equality cannot check that: a
//! run can end in the right state while some transaction along the way saw
//! a mixed-version "frankenread". This module checks the *history* instead.
//!
//! The chaos scenario runner records, for every committed transaction:
//!
//! * read/write transactions: their commit timestamp, commit wall-clock
//!   time, and the value each touched key was left at — the ground-truth
//!   version history of the database;
//! * read-only transactions: the snapshot timestamp the transaction
//!   reported at commit, the latest database timestamp and wall-clock time
//!   at begin, the staleness limit, and every `(key, value)` pair read.
//!
//! [`History::check`] then asserts, for every read-only transaction:
//!
//! 1. **Snapshot consistency** (no frankenreads): every value read equals
//!    the ground-truth value of that key *at the transaction's snapshot
//!    timestamp*. A cache entry resurrected past a lost invalidation fails
//!    exactly here — the snapshot says `S`, the database's version history
//!    at `S` says the new value, the cache served the old one.
//! 2. **No future reads**: the snapshot is at or below the latest committed
//!    timestamp when the transaction began (the invalidation horizon a
//!    transaction runs against never runs ahead of the database).
//! 3. **Staleness floor**: every update that committed earlier than
//!    `begin_wall − staleness` is included in the snapshot — the
//!    transaction never time-travels further back than its `BEGIN-RO`
//!    bound allows.
//!
//! The checker is deliberately backend-agnostic: the same history is
//! recorded (and the same invariants asserted) for the in-process cache
//! cluster and for the networked tier under chaos.

use std::collections::BTreeMap;
use std::fmt;

use txtypes::{Timestamp, WallClock};

/// One committed read/write transaction: the ground truth it established.
#[derive(Debug, Clone)]
pub struct CommitRecord {
    /// The commit timestamp the database assigned.
    pub timestamp: Timestamp,
    /// The (simulated) wall-clock time of the commit.
    pub wall: WallClock,
    /// The value each written key was left at.
    pub writes: Vec<(u64, i64)>,
}

/// One committed read-only transaction: what it observed.
#[derive(Debug, Clone)]
pub struct ReadRecord {
    /// Which client session ran it.
    pub session: usize,
    /// The database's latest committed timestamp when the transaction
    /// began.
    pub begin_latest: Timestamp,
    /// Wall-clock time at begin.
    pub begin_wall: WallClock,
    /// The staleness limit, in microseconds.
    pub staleness_micros: u64,
    /// The snapshot timestamp reported by `COMMIT`.
    pub snapshot: Timestamp,
    /// Every `(key, value)` the transaction read, in order.
    pub reads: Vec<(u64, i64)>,
}

/// A consistency violation found by [`History::check`].
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: &'static str,
    /// Index of the offending read-only transaction in recording order.
    pub txn_index: usize,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] ro-txn #{}: {}",
            self.invariant, self.txn_index, self.detail
        )
    }
}

/// Summary of a clean check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckSummary {
    /// Read-only transactions verified.
    pub read_txns: usize,
    /// Individual reads verified against ground truth.
    pub reads_checked: usize,
    /// Read/write commits forming the ground truth.
    pub commits: usize,
}

/// The recorded history of one run: ground-truth commits plus every
/// read-only transaction's observations.
#[derive(Debug, Default)]
pub struct History {
    initial: BTreeMap<u64, i64>,
    commits: Vec<CommitRecord>,
    reads: Vec<ReadRecord>,
}

impl History {
    /// Starts a history whose ground truth begins at `initial` (the
    /// bulk-loaded state, timestamp ≤ every commit).
    #[must_use]
    pub fn new(initial: impl IntoIterator<Item = (u64, i64)>) -> History {
        History {
            initial: initial.into_iter().collect(),
            commits: Vec::new(),
            reads: Vec::new(),
        }
    }

    /// Records a committed read/write transaction.
    pub fn record_commit(&mut self, record: CommitRecord) {
        self.commits.push(record);
    }

    /// Records a committed read-only transaction.
    pub fn record_read_txn(&mut self, record: ReadRecord) {
        self.reads.push(record);
    }

    /// Number of recorded read-only transactions.
    #[must_use]
    pub fn read_txn_count(&self) -> usize {
        self.reads.len()
    }

    /// Number of recorded read/write commits.
    #[must_use]
    pub fn commit_count(&self) -> usize {
        self.commits.len()
    }

    /// The ground-truth value of `key` at snapshot `at` (the newest commit
    /// at or below `at` that wrote the key, else the initial value).
    #[must_use]
    pub fn value_at(&self, key: u64, at: Timestamp) -> Option<i64> {
        let mut value = self.initial.get(&key).copied();
        for commit in &self.commits {
            if commit.timestamp > at {
                break;
            }
            for (k, v) in &commit.writes {
                if *k == key {
                    value = Some(*v);
                }
            }
        }
        value
    }

    /// A deterministic digest of the whole history — two runs that observed
    /// the same transactions in the same order produce the same digest, so
    /// reproducibility can be asserted bit for bit.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = wire::sim::FNV_OFFSET;
        let mut fold = |v: u64| wire::sim::fnv1a(&mut h, &v.to_le_bytes());
        for (k, v) in &self.initial {
            fold(*k);
            fold(*v as u64);
        }
        for c in &self.commits {
            fold(c.timestamp.as_u64());
            fold(c.wall.as_micros());
            for (k, v) in &c.writes {
                fold(*k);
                fold(*v as u64);
            }
        }
        for r in &self.reads {
            fold(r.session as u64);
            fold(r.begin_latest.as_u64());
            fold(r.snapshot.as_u64());
            for (k, v) in &r.reads {
                fold(*k);
                fold(*v as u64);
            }
        }
        h
    }

    /// Verifies every recorded read-only transaction against the ground
    /// truth; returns every violation found (empty = the history is
    /// transactionally consistent).
    pub fn check(&self) -> std::result::Result<CheckSummary, Vec<Violation>> {
        let mut violations = Vec::new();
        let mut reads_checked = 0usize;

        // Commit timestamps must be strictly increasing: the ground truth
        // itself is ordered by the database's commit sequencer.
        for pair in self.commits.windows(2) {
            if pair[1].timestamp <= pair[0].timestamp {
                violations.push(Violation {
                    invariant: "monotonic-commits",
                    txn_index: 0,
                    detail: format!(
                        "ground-truth commits out of order: {} then {}",
                        pair[0].timestamp, pair[1].timestamp
                    ),
                });
            }
        }

        for (index, txn) in self.reads.iter().enumerate() {
            // Invariant 2: no future reads.
            if txn.snapshot > txn.begin_latest {
                violations.push(Violation {
                    invariant: "no-future-reads",
                    txn_index: index,
                    detail: format!(
                        "snapshot {} is newer than the database's latest \
                         timestamp {} at begin",
                        txn.snapshot, txn.begin_latest
                    ),
                });
            }

            // Invariant 3: the transaction never misses an update, older
            // than its staleness bound, to data it actually read. (The
            // snapshot timestamp itself may serialize "early" inside a wide
            // validity interval — that is data-equivalent and allowed; what
            // must never happen is observing a key whose sufficiently old
            // update is excluded from the snapshot.)
            let floor_wall = WallClock(
                txn.begin_wall
                    .as_micros()
                    .saturating_sub(txn.staleness_micros),
            );
            'floor: for commit in &self.commits {
                if commit.wall > floor_wall || commit.timestamp <= txn.snapshot {
                    continue;
                }
                for (key, _) in &commit.writes {
                    if txn.reads.iter().any(|(k, _)| k == key) {
                        violations.push(Violation {
                            invariant: "staleness-floor",
                            txn_index: index,
                            detail: format!(
                                "snapshot {} excludes commit {} to key {key} \
                                 whose wall time {}us is older than the \
                                 staleness bound ({}us before begin at {}us)",
                                txn.snapshot,
                                commit.timestamp,
                                commit.wall.as_micros(),
                                txn.staleness_micros,
                                txn.begin_wall.as_micros(),
                            ),
                        });
                        break 'floor;
                    }
                }
            }

            // Invariant 1: every read matches the ground truth at the
            // snapshot — one consistent cut, no frankenreads.
            for (key, observed) in &txn.reads {
                reads_checked += 1;
                match self.value_at(*key, txn.snapshot) {
                    Some(expected) if expected == *observed => {}
                    Some(expected) => violations.push(Violation {
                        invariant: "snapshot-consistency",
                        txn_index: index,
                        detail: format!(
                            "key {key} read {observed} but the database state \
                             at snapshot {} holds {expected} (stale or mixed \
                             version served)",
                            txn.snapshot
                        ),
                    }),
                    None => violations.push(Violation {
                        invariant: "snapshot-consistency",
                        txn_index: index,
                        detail: format!("key {key} read {observed} but was never written"),
                    }),
                }
            }
        }

        if violations.is_empty() {
            Ok(CheckSummary {
                read_txns: self.reads.len(),
                reads_checked,
                commits: self.commits.len(),
            })
        } else {
            Err(violations)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_history() -> History {
        let mut h = History::new([(1u64, 60i64), (2, 40)]);
        h.record_commit(CommitRecord {
            timestamp: Timestamp(10),
            wall: WallClock::from_secs(1),
            writes: vec![(1, 55), (2, 45)],
        });
        h.record_commit(CommitRecord {
            timestamp: Timestamp(20),
            wall: WallClock::from_secs(2),
            writes: vec![(1, 50), (2, 50)],
        });
        h
    }

    #[test]
    fn consistent_histories_pass() {
        let mut h = base_history();
        // A transaction at snapshot 10 sees the first commit's state.
        h.record_read_txn(ReadRecord {
            session: 0,
            begin_latest: Timestamp(20),
            begin_wall: WallClock::from_secs(3),
            staleness_micros: 30_000_000,
            snapshot: Timestamp(10),
            reads: vec![(1, 55), (2, 45)],
        });
        let summary = h.check().expect("consistent");
        assert_eq!(summary.read_txns, 1);
        assert_eq!(summary.reads_checked, 2);
        assert_eq!(summary.commits, 2);
    }

    #[test]
    fn frankenreads_are_caught() {
        let mut h = base_history();
        // Mixed versions: key 1 from the old snapshot, key 2 from the new.
        h.record_read_txn(ReadRecord {
            session: 0,
            begin_latest: Timestamp(20),
            begin_wall: WallClock::from_secs(3),
            staleness_micros: 30_000_000,
            snapshot: Timestamp(10),
            reads: vec![(1, 55), (2, 50)],
        });
        let violations = h.check().unwrap_err();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, "snapshot-consistency");
    }

    #[test]
    fn stale_resurrection_is_caught() {
        let mut h = base_history();
        // The snapshot says 20, but key 1 was served from a resurrected
        // pre-commit-20 entry.
        h.record_read_txn(ReadRecord {
            session: 0,
            begin_latest: Timestamp(20),
            begin_wall: WallClock::from_secs(3),
            staleness_micros: 30_000_000,
            snapshot: Timestamp(20),
            reads: vec![(1, 55)],
        });
        let violations = h.check().unwrap_err();
        assert_eq!(violations[0].invariant, "snapshot-consistency");
    }

    #[test]
    fn future_reads_are_caught() {
        let mut h = base_history();
        h.record_read_txn(ReadRecord {
            session: 0,
            begin_latest: Timestamp(15),
            begin_wall: WallClock::from_secs(3),
            staleness_micros: 30_000_000,
            snapshot: Timestamp(20),
            reads: vec![],
        });
        let violations = h.check().unwrap_err();
        assert!(violations.iter().any(|v| v.invariant == "no-future-reads"));
    }

    #[test]
    fn staleness_floor_violations_are_caught() {
        let mut h = base_history();
        // Begin at t=60s with a 30s bound: commit 10 (at 1s) and commit 20
        // (at 2s) are both far older than the floor, so a snapshot of 10 —
        // which excludes commit 20 — time-travels too far back.
        h.record_read_txn(ReadRecord {
            session: 0,
            begin_latest: Timestamp(20),
            begin_wall: WallClock::from_secs(60),
            staleness_micros: 30_000_000,
            snapshot: Timestamp(10),
            reads: vec![(1, 55)],
        });
        let violations = h.check().unwrap_err();
        assert!(violations.iter().any(|v| v.invariant == "staleness-floor"));
    }

    #[test]
    fn digest_is_order_sensitive_and_deterministic() {
        let a = base_history();
        let b = base_history();
        assert_eq!(a.digest(), b.digest());
        let mut c = base_history();
        c.record_commit(CommitRecord {
            timestamp: Timestamp(30),
            wall: WallClock::from_secs(3),
            writes: vec![(1, 1)],
        });
        assert_ne!(a.digest(), c.digest());
    }
}
