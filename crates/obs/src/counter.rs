//! Relaxed atomic counters and gauges.
//!
//! [`StripedCounter`] was born in the `mvdb` engine and is now the shared
//! counter primitive for every crate: a monotonic counter striped across
//! cache lines so concurrent increments from different threads do not
//! ping-pong one line. [`Gauge`] is its level-valued sibling (queue depths,
//! in-flight requests): a single signed atomic, because gauges are read as
//! often as written and must support decrements.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of slots a [`StripedCounter`] spreads its increments over.
const STRIPES: usize = 16;

/// A cache-line-padded atomic counter cell.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// A relaxed monotonic counter striped across cache lines.
///
/// Every thread is assigned one of [`STRIPES`] slots the first time it
/// increments any striped counter, so concurrent increments from different
/// threads land on different cache lines instead of ping-ponging one. Reads
/// sum the stripes; they are monotonic but not linearizable — exactly what
/// telemetry needs and no more.
#[derive(Debug)]
pub struct StripedCounter([PaddedU64; STRIPES]);

impl Default for StripedCounter {
    fn default() -> Self {
        StripedCounter(std::array::from_fn(|_| PaddedU64::default()))
    }
}

/// The calling thread's stripe slot, assigned round-robin on first use.
fn stripe_slot() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SLOT.with(|slot| {
        let mut v = slot.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
            slot.set(v);
        }
        v
    })
}

impl StripedCounter {
    /// Adds one.
    pub fn bump(&self) {
        self.add(1);
    }

    /// Adds `n` on the calling thread's stripe.
    pub fn add(&self, n: u64) {
        self.0[stripe_slot()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The summed value across all stripes.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    /// Zeroes every stripe. Increments racing the reset may survive it or be
    /// lost; callers reset only at quiescent points (e.g. a warmup barrier).
    pub fn reset(&self) {
        for c in &self.0 {
            c.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A cache-line-padded signed atomic cell.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedI64(AtomicI64);

/// A level-valued relaxed gauge: queue depths, in-flight requests, bytes
/// buffered. Striped like [`StripedCounter`]: a gauge's increments and
/// decrements typically come from *different* threads (a producer enqueues,
/// a consumer drains), and a single atomic would ping-pong its cache line
/// on every request. The level is the sum of the per-stripe deltas, so
/// individual stripes may go negative; only the sum is meaningful.
#[derive(Debug)]
pub struct Gauge([PaddedI64; STRIPES]);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(std::array::from_fn(|_| PaddedI64::default()))
    }
}

impl Gauge {
    /// Sets the gauge to an absolute level. Like [`StripedCounter::reset`],
    /// racing updates may be lost; callers set only at quiescent points.
    pub fn set(&self, v: i64) {
        for c in &self.0[1..] {
            c.0.store(0, Ordering::Relaxed);
        }
        self.0[0].0.store(v, Ordering::Relaxed);
    }

    /// Moves the gauge by a signed delta on the calling thread's stripe.
    pub fn add(&self, delta: i64) {
        self.0[stripe_slot()].0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current level: the sum across stripes.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_counter_sums_across_threads() {
        let c = StripedCounter::default();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.bump();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_tracks_levels() {
        let g = Gauge::default();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.add(-5);
        assert_eq!(g.get(), -4);
        g.set(7);
        assert_eq!(g.get(), 7);
    }
}
