//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote` in the
//! offline build). Supports the shapes this workspace uses: non-generic
//! structs (named, tuple, newtype, unit) and enums whose variants are unit,
//! newtype, tuple, or struct-like. Encoding semantics match upstream serde:
//! structs serialize as field sequences, enums as a `u32` variant index
//! followed by the payload, newtype structs forward to their inner value.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse(input) {
        Ok(parsed) => gen(&parsed)
            .parse()
            .expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    payload: Payload,
}

enum Payload {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let item_kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            let k = id.to_string();
            i += 1;
            k
        }
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => return Err(format!("expected type name, found {other:?}")),
    };

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive stub: generic type `{name}` is unsupported"
        ));
    }

    let kind = if item_kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => return Err(format!("unexpected struct body: {other:?}")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        }
    };

    Ok(Input { name, kind })
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
            *i += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

/// Advances past a type (or any token soup) until a top-level comma, which is
/// consumed. Angle brackets are the only grouping not already atomic in the
/// token tree.
fn skip_past_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' if angle_depth > 0 => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                i += 1;
            }
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        }
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        skip_past_comma(&tokens, &mut i);
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        // `skip_past_comma` consumes one field (tokens exist at this point).
        count += 1;
        skip_past_comma(&tokens, &mut i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                i += 1;
                id.to_string()
            }
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let payload = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Payload::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Payload::Struct(parse_named_fields(g.stream())?)
            }
            _ => Payload::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        skip_past_comma(&tokens, &mut i);
        variants.push(Variant { name, payload });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut b = format!(
                "let mut __st = ::serde::ser::Serializer::serialize_struct(__serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for f in fields {
                b.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{f}\", &self.{f})?;\n"
                ));
            }
            b.push_str("::serde::ser::SerializeStruct::end(__st)");
            b
        }
        Kind::TupleStruct(1) => format!(
            "::serde::ser::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
        ),
        Kind::TupleStruct(n) => {
            let mut b = format!(
                "let mut __st = ::serde::ser::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {n})?;\n"
            );
            for idx in 0..*n {
                b.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __st, &self.{idx})?;\n"
                ));
            }
            b.push_str("::serde::ser::SerializeTupleStruct::end(__st)");
            b
        }
        Kind::UnitStruct => {
            format!("::serde::ser::Serializer::serialize_unit_struct(__serializer, \"{name}\")")
        }
        Kind::Enum(variants) => {
            let mut b = String::from("match self {\n");
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.payload {
                    Payload::Unit => b.push_str(&format!(
                        "{name}::{vname} => ::serde::ser::Serializer::serialize_unit_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    Payload::Tuple(1) => b.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::ser::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                    )),
                    Payload::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        b.push_str(&format!(
                            "{name}::{vname}({}) => {{\nlet mut __tv = ::serde::ser::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {n})?;\n",
                            binds.join(", ")
                        ));
                        for bind in &binds {
                            b.push_str(&format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut __tv, {bind})?;\n"
                            ));
                        }
                        b.push_str("::serde::ser::SerializeTupleVariant::end(__tv)\n},\n");
                    }
                    Payload::Struct(fields) => {
                        b.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\nlet mut __sv = ::serde::ser::Serializer::serialize_struct_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                            fields.join(", "),
                            fields.len()
                        ));
                        for f in fields {
                            b.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut __sv, \"{f}\", {f})?;\n"
                            ));
                        }
                        b.push_str("::serde::ser::SerializeStructVariant::end(__sv)\n},\n");
                    }
                }
            }
            b.push('}');
            b
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S) \
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Code generation: Deserialize
// ---------------------------------------------------------------------------

/// Emits the body of a `visit_seq` that builds `ctor` by pulling one element
/// per field from `__seq`.
fn seq_construct(ctor: &str, fields: &[String], named: bool) -> String {
    let mut b = format!("::core::result::Result::Ok({ctor}");
    b.push_str(if named { " {\n" } else { "(\n" });
    for (idx, f) in fields.iter().enumerate() {
        if named {
            b.push_str(&format!("{f}: "));
        }
        b.push_str(&format!(
            "match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                 ::core::option::Option::Some(__v) => __v,\n\
                 ::core::option::Option::None => return ::core::result::Result::Err(\
                     ::serde::de::Error::invalid_length({idx}, &{len})),\n\
             }},\n",
            len = fields.len()
        ));
    }
    b.push_str(if named { "})" } else { "))" });
    b
}

/// Emits a visitor struct named `vis_name` whose `visit_seq` builds `ctor`.
fn seq_visitor(
    vis_name: &str,
    value_ty: &str,
    ctor: &str,
    fields: &[String],
    named: bool,
) -> String {
    format!(
        "struct {vis_name};\n\
         impl<'de> ::serde::de::Visitor<'de> for {vis_name} {{\n\
             type Value = {value_ty};\n\
             fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                 __f.write_str(\"{ctor}\")\n\
             }}\n\
             fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
                 -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                 {}\n\
             }}\n\
         }}\n",
        seq_construct(ctor, fields, named)
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let field_list: Vec<String> = fields.iter().map(|f| format!("\"{f}\"")).collect();
            format!(
                "{}\
                 const __FIELDS: &[&str] = &[{}];\n\
                 ::serde::de::Deserializer::deserialize_struct(__deserializer, \"{name}\", __FIELDS, __Visitor)",
                seq_visitor("__Visitor", name, name, fields, true),
                field_list.join(", ")
            )
        }
        Kind::TupleStruct(1) => format!(
            "struct __Visitor;\n\
             impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                     __f.write_str(\"newtype struct {name}\")\n\
                 }}\n\
                 fn visit_newtype_struct<__D2: ::serde::de::Deserializer<'de>>(self, __d: __D2) \
                     -> ::core::result::Result<Self::Value, __D2::Error> {{\n\
                     ::core::result::Result::Ok({name}(::serde::de::Deserialize::deserialize(__d)?))\n\
                 }}\n\
             }}\n\
             ::serde::de::Deserializer::deserialize_newtype_struct(__deserializer, \"{name}\", __Visitor)"
        ),
        Kind::TupleStruct(n) => {
            let fields: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
            format!(
                "{}\
                 ::serde::de::Deserializer::deserialize_tuple_struct(__deserializer, \"{name}\", {n}, __Visitor)",
                seq_visitor("__Visitor", name, name, &fields, false)
            )
        }
        Kind::UnitStruct => format!(
            "struct __Visitor;\n\
             impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                     __f.write_str(\"unit struct {name}\")\n\
                 }}\n\
                 fn visit_unit<__E: ::serde::de::Error>(self) -> ::core::result::Result<Self::Value, __E> {{\n\
                     ::core::result::Result::Ok({name})\n\
                 }}\n\
             }}\n\
             ::serde::de::Deserializer::deserialize_unit_struct(__deserializer, \"{name}\", __Visitor)"
        ),
        Kind::Enum(variants) => {
            let variant_list: Vec<String> =
                variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.payload {
                    Payload::Unit => arms.push_str(&format!(
                        "{idx}u32 => {{\n\
                             ::serde::de::VariantAccess::unit_variant(__variant)?;\n\
                             ::core::result::Result::Ok({name}::{vname})\n\
                         }},\n"
                    )),
                    Payload::Tuple(1) => arms.push_str(&format!(
                        "{idx}u32 => ::core::result::Result::Ok({name}::{vname}(\
                             ::serde::de::VariantAccess::newtype_variant(__variant)?)),\n"
                    )),
                    Payload::Tuple(n) => {
                        let fields: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        arms.push_str(&format!(
                            "{idx}u32 => {{\n{}\
                                 ::serde::de::VariantAccess::tuple_variant(__variant, {n}, __V{idx})\n\
                             }},\n",
                            seq_visitor(
                                &format!("__V{idx}"),
                                name,
                                &format!("{name}::{vname}"),
                                &fields,
                                false
                            )
                        ));
                    }
                    Payload::Struct(fields) => {
                        let field_list: Vec<String> =
                            fields.iter().map(|f| format!("\"{f}\"")).collect();
                        arms.push_str(&format!(
                            "{idx}u32 => {{\n{}\
                                 ::serde::de::VariantAccess::struct_variant(__variant, &[{}], __V{idx})\n\
                             }},\n",
                            seq_visitor(
                                &format!("__V{idx}"),
                                name,
                                &format!("{name}::{vname}"),
                                fields,
                                true
                            ),
                            field_list.join(", ")
                        ));
                    }
                }
            }
            format!(
                "struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                         __f.write_str(\"enum {name}\")\n\
                     }}\n\
                     fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __data: __A) \
                         -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                         let (__idx, __variant): (u32, __A::Variant) = \
                             ::serde::de::EnumAccess::variant(__data)?;\n\
                         match __idx {{\n\
                             {arms}\
                             __other => ::core::result::Result::Err(::serde::de::Error::custom(\
                                 ::core::format_args!(\"invalid variant index {{}} for enum {name}\", __other))),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 const __VARIANTS: &[&str] = &[{}];\n\
                 ::serde::de::Deserializer::deserialize_enum(__deserializer, \"{name}\", __VARIANTS, __Visitor)",
                variant_list.join(", ")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D) \
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
