//! Serialization half of the vendored serde subset.

use std::fmt::Display;

/// Error trait for serializers.
pub trait Error: Sized + std::error::Error {
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any serde data format.
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A serde data format that can serialize any supported data structure.
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;

    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_i128(self, v: i128) -> Result<Self::Ok, Self::Error>;
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u128(self, v: u128) -> Result<Self::Ok, Self::Error>;
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    fn is_human_readable(&self) -> bool {
        true
    }
}

pub trait SerializeSeq {
    type Ok;
    type Error: Error;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeTuple {
    type Ok;
    type Error: Error;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeTupleStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeTupleVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeMap {
    type Ok;
    type Error: Error;
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Self::Error>;
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn serialize_entry<K: ?Sized + Serialize, V: ?Sized + Serialize>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error> {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeStructVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! primitive_serialize {
    ($($ty:ty => $method:ident,)*) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.$method(*self)
                }
            }
        )*
    };
}

primitive_serialize! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    i128 => serialize_i128,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    u128 => serialize_u128,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(N)?;
        for item in self {
            tup.serialize_element(item)?;
        }
        tup.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

macro_rules! tuple_serialize {
    ($(($($n:tt $ty:ident),+),)*) => {
        $(
            impl<$($ty: Serialize),+> Serialize for ($($ty,)+) {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    let len = tuple_serialize!(@count $($ty)+);
                    let mut tup = serializer.serialize_tuple(len)?;
                    $(tup.serialize_element(&self.$n)?;)+
                    tup.end()
                }
            }
        )*
    };
    (@count $($ty:ident)+) => { [$(tuple_serialize!(@unit $ty)),+].len() };
    (@unit $ty:ident) => { () };
}

tuple_serialize! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H),
}
