//! Table schemas and index definitions.

use serde::{Deserialize, Serialize};
use txtypes::{Error, Result};

use crate::value::{ColumnType, Value};

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (unique within the table).
    pub name: String,
    /// Declared type.
    pub ty: ColumnType,
}

/// An index definition. All indexes are single-column; that is all the RUBiS
/// and wiki schemas need, and it keeps the planner's invalidation-tag rules
/// (§5.3) easy to follow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexDef {
    /// Index name (unique within the table).
    pub name: String,
    /// The indexed column.
    pub column: String,
    /// Whether the index enforces uniqueness of non-NULL keys.
    pub unique: bool,
}

/// A table schema: columns plus secondary indexes.
///
/// Every table has an implicit, unique, integer primary key column which must
/// be listed first; the data generator and applications follow this
/// convention.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Secondary index definitions.
    pub indexes: Vec<IndexDef>,
}

impl TableSchema {
    /// Starts building a schema for `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> TableSchema {
        TableSchema {
            name: name.into(),
            columns: Vec::new(),
            indexes: Vec::new(),
        }
    }

    /// Adds a column.
    #[must_use]
    pub fn column(mut self, name: impl Into<String>, ty: ColumnType) -> TableSchema {
        self.columns.push(ColumnDef {
            name: name.into(),
            ty,
        });
        self
    }

    /// Adds a non-unique secondary index on `column`.
    #[must_use]
    pub fn index(mut self, column: impl Into<String>) -> TableSchema {
        let column = column.into();
        self.indexes.push(IndexDef {
            name: format!("{}_{}_idx", self.name, column),
            column,
            unique: false,
        });
        self
    }

    /// Adds a unique secondary index on `column`.
    #[must_use]
    pub fn unique_index(mut self, column: impl Into<String>) -> TableSchema {
        let column = column.into();
        self.indexes.push(IndexDef {
            name: format!("{}_{}_key", self.name, column),
            column,
            unique: true,
        });
        self
    }

    /// Returns the position of `column`, or a schema error.
    pub fn column_index(&self, column: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == column)
            .ok_or_else(|| {
                Error::Schema(format!("no column '{}' in table '{}'", column, self.name))
            })
    }

    /// Returns the index definition covering `column`, if any.
    #[must_use]
    pub fn index_on(&self, column: &str) -> Option<&IndexDef> {
        self.indexes.iter().find(|ix| ix.column == column)
    }

    /// Validates a row against the schema: arity and column types.
    pub fn validate_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(Error::Schema(format!(
                "table '{}' expects {} columns, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        for (col, val) in self.columns.iter().zip(row) {
            if !col.ty.accepts(val) {
                return Err(Error::Schema(format!(
                    "column '{}.{}' does not accept value {}",
                    self.name, col.name, val
                )));
            }
        }
        Ok(())
    }

    /// Validates the schema itself: at least one column, unique column names,
    /// and indexes referencing existing columns.
    pub fn validate(&self) -> Result<()> {
        if self.columns.is_empty() {
            return Err(Error::Schema(format!(
                "table '{}' has no columns",
                self.name
            )));
        }
        for (i, c) in self.columns.iter().enumerate() {
            if self.columns[..i].iter().any(|o| o.name == c.name) {
                return Err(Error::Schema(format!(
                    "duplicate column '{}' in table '{}'",
                    c.name, self.name
                )));
            }
        }
        for ix in &self.indexes {
            if self.column_index(&ix.column).is_err() {
                return Err(Error::Schema(format!(
                    "index '{}' references missing column '{}'",
                    ix.name, ix.column
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users() -> TableSchema {
        TableSchema::new("users")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("rating", ColumnType::Int)
            .unique_index("id")
            .index("name")
    }

    #[test]
    fn builder_and_lookup() {
        let s = users();
        assert_eq!(s.columns.len(), 3);
        assert_eq!(s.column_index("name").unwrap(), 1);
        assert!(s.column_index("missing").is_err());
        assert!(s.index_on("id").unwrap().unique);
        assert!(!s.index_on("name").unwrap().unique);
        assert!(s.index_on("rating").is_none());
    }

    #[test]
    fn validate_row_checks_arity_and_types() {
        let s = users();
        assert!(s
            .validate_row(&[Value::Int(1), Value::text("alice"), Value::Int(5)])
            .is_ok());
        assert!(s.validate_row(&[Value::Int(1)]).is_err());
        assert!(s
            .validate_row(&[Value::text("x"), Value::text("alice"), Value::Int(5)])
            .is_err());
        // NULL is accepted anywhere.
        assert!(s
            .validate_row(&[Value::Int(1), Value::Null, Value::Null])
            .is_ok());
    }

    #[test]
    fn validate_schema() {
        assert!(users().validate().is_ok());
        assert!(TableSchema::new("empty").validate().is_err());
        let dup = TableSchema::new("t")
            .column("a", ColumnType::Int)
            .column("a", ColumnType::Int);
        assert!(dup.validate().is_err());
        let bad_ix = TableSchema::new("t")
            .column("a", ColumnType::Int)
            .index("b");
        assert!(bad_ix.validate().is_err());
    }
}
