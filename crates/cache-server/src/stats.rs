//! Cache statistics, including the miss breakdown of §8.3.
//!
//! [`CacheStats`] is the serializable snapshot handed to callers.
//! [`AtomicCacheStats`] is the live per-shard counter bank: every counter is
//! a relaxed [`obs::StripedCounter`] (the shared primitive all three tiers'
//! stats banks are built on) so lookups can record hits and misses while
//! holding only a shard's *shared* lock. [`CacheShardStats`] reports
//! per-shard lock activity and eviction pressure — the cache-tier mirror of
//! `mvdb::ShardStats` — so contention regressions show up in `txcached`
//! telemetry and bench output instead of only in flat scaling curves.

use obs::StripedCounter;
use serde::{Deserialize, Serialize};

use crate::entry::MissKind;

/// Counters kept by each cache node (and aggregated across the cluster).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that returned a value.
    pub hits: u64,
    /// Misses because the key was never inserted.
    pub compulsory_misses: u64,
    /// Misses because every cached version was too stale.
    pub staleness_misses: u64,
    /// Misses because the entry had been evicted.
    pub capacity_misses: u64,
    /// Misses because the only fresh-enough versions were inconsistent with
    /// the transaction's pin set.
    pub consistency_misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Insertions skipped because an overlapping version was already present.
    pub duplicate_insertions: u64,
    /// Entries whose validity was truncated by an invalidation.
    pub invalidated_entries: u64,
    /// Entries that arrived *after* an invalidation matching their tags and
    /// were truncated on insert (the §4.2 update/insert race).
    pub late_insert_truncations: u64,
    /// Still-valid entries bounded because a client healed a broken
    /// connection and may have lost invalidation-stream messages.
    pub sealed_entries: u64,
    /// Invalidation messages processed.
    pub invalidation_messages: u64,
    /// Entries evicted to free memory.
    pub lru_evictions: u64,
    /// Entries evicted because they were too stale to be useful.
    pub staleness_evictions: u64,
    /// Still-valid insertions dropped because their validity began below the
    /// node's pruned invalidation-history floor, where the §4.2 race check
    /// can no longer prove the value was not already invalidated.
    pub history_floor_drops: u64,
    /// Bytes currently used (point-in-time, maintained by the node).
    pub used_bytes: u64,
}

impl CacheStats {
    /// Total misses of all kinds.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.compulsory_misses
            + self.staleness_misses
            + self.capacity_misses
            + self.consistency_misses
    }

    /// Total lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses()
    }

    /// Hit rate in [0, 1]; zero when there were no lookups.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Records a miss of the given kind.
    pub fn record_miss(&mut self, kind: MissKind) {
        match kind {
            MissKind::Compulsory => self.compulsory_misses += 1,
            MissKind::Staleness => self.staleness_misses += 1,
            MissKind::Capacity => self.capacity_misses += 1,
            MissKind::Consistency => self.consistency_misses += 1,
        }
    }

    /// The fraction of misses of `kind` among all misses, in [0, 1].
    #[must_use]
    pub fn miss_fraction(&self, kind: MissKind) -> f64 {
        let total = self.misses();
        if total == 0 {
            return 0.0;
        }
        let n = match kind {
            MissKind::Compulsory => self.compulsory_misses,
            MissKind::Staleness => self.staleness_misses,
            MissKind::Capacity => self.capacity_misses,
            MissKind::Consistency => self.consistency_misses,
        };
        n as f64 / total as f64
    }

    /// Merges another node's counters into this one (used for cluster-wide
    /// aggregation). `used_bytes` is summed.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.compulsory_misses += other.compulsory_misses;
        self.staleness_misses += other.staleness_misses;
        self.capacity_misses += other.capacity_misses;
        self.consistency_misses += other.consistency_misses;
        self.insertions += other.insertions;
        self.duplicate_insertions += other.duplicate_insertions;
        self.invalidated_entries += other.invalidated_entries;
        self.late_insert_truncations += other.late_insert_truncations;
        self.sealed_entries += other.sealed_entries;
        self.invalidation_messages += other.invalidation_messages;
        self.lru_evictions += other.lru_evictions;
        self.staleness_evictions += other.staleness_evictions;
        self.history_floor_drops += other.history_floor_drops;
        self.used_bytes += other.used_bytes;
    }
}

/// Live counters of one cache shard (or a node's node-scoped events). All
/// increments are relaxed: the counters are monotonic telemetry, never
/// synchronization, which is what lets a lookup record its outcome while
/// holding only the shard's shared lock.
#[derive(Debug, Default)]
pub(crate) struct AtomicCacheStats {
    pub hits: StripedCounter,
    pub compulsory_misses: StripedCounter,
    pub staleness_misses: StripedCounter,
    pub capacity_misses: StripedCounter,
    pub consistency_misses: StripedCounter,
    pub insertions: StripedCounter,
    pub duplicate_insertions: StripedCounter,
    pub invalidated_entries: StripedCounter,
    pub late_insert_truncations: StripedCounter,
    pub sealed_entries: StripedCounter,
    pub invalidation_messages: StripedCounter,
    pub lru_evictions: StripedCounter,
    pub staleness_evictions: StripedCounter,
    pub history_floor_drops: StripedCounter,
}

impl AtomicCacheStats {
    /// Records a miss of the given kind.
    pub fn record_miss(&self, kind: MissKind) {
        let counter = match kind {
            MissKind::Compulsory => &self.compulsory_misses,
            MissKind::Staleness => &self.staleness_misses,
            MissKind::Capacity => &self.capacity_misses,
            MissKind::Consistency => &self.consistency_misses,
        };
        counter.bump();
    }

    /// Adds this counter bank into a snapshot (`used_bytes` is the caller's
    /// business: shards track it under their locks).
    pub fn add_into(&self, total: &mut CacheStats) {
        total.hits += self.hits.get();
        total.compulsory_misses += self.compulsory_misses.get();
        total.staleness_misses += self.staleness_misses.get();
        total.capacity_misses += self.capacity_misses.get();
        total.consistency_misses += self.consistency_misses.get();
        total.insertions += self.insertions.get();
        total.duplicate_insertions += self.duplicate_insertions.get();
        total.invalidated_entries += self.invalidated_entries.get();
        total.late_insert_truncations += self.late_insert_truncations.get();
        total.sealed_entries += self.sealed_entries.get();
        total.invalidation_messages += self.invalidation_messages.get();
        total.lru_evictions += self.lru_evictions.get();
        total.staleness_evictions += self.staleness_evictions.get();
        total.history_floor_drops += self.history_floor_drops.get();
    }

    /// Zeroes every counter. Increments racing the reset may survive it or
    /// be lost; callers reset only at quiescent points.
    pub fn reset(&self) {
        for counter in [
            &self.hits,
            &self.compulsory_misses,
            &self.staleness_misses,
            &self.capacity_misses,
            &self.consistency_misses,
            &self.insertions,
            &self.duplicate_insertions,
            &self.invalidated_entries,
            &self.late_insert_truncations,
            &self.sealed_entries,
            &self.invalidation_messages,
            &self.lru_evictions,
            &self.staleness_evictions,
            &self.history_floor_drops,
        ] {
            counter.reset();
        }
    }
}

/// Per-shard lock activity and eviction pressure, snapshotted by
/// [`crate::CacheNode::shard_stats`] (the cache-tier mirror of
/// `mvdb::Database::shard_stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheShardStats {
    /// Index of the shard within its node.
    pub shard: usize,
    /// Shared (reader) lock acquisitions.
    pub read_locks: u64,
    /// Exclusive (writer) lock acquisitions.
    pub write_locks: u64,
    /// Reader acquisitions that could not be granted immediately.
    pub read_waits: u64,
    /// Writer acquisitions that could not be granted immediately.
    pub write_waits: u64,
    /// Entries this shard evicted to fit its capacity budget.
    pub lru_evictions: u64,
    /// Entries this shard evicted as too stale to be useful.
    pub staleness_evictions: u64,
    /// Entries currently stored on the shard.
    pub entries: u64,
    /// Bytes currently stored on the shard.
    pub used_bytes: u64,
}

impl CacheShardStats {
    /// Total lock acquisitions on this shard.
    #[must_use]
    pub fn acquisitions(&self) -> u64 {
        self.read_locks + self.write_locks
    }

    /// Fraction of acquisitions that had to wait, in [0, 1].
    #[must_use]
    pub fn contention_rate(&self) -> f64 {
        let total = self.acquisitions();
        if total == 0 {
            0.0
        } else {
            (self.read_waits + self.write_waits) as f64 / total as f64
        }
    }
}

impl From<CacheStats> for wire::NodeStats {
    fn from(s: CacheStats) -> wire::NodeStats {
        wire::NodeStats {
            hits: s.hits,
            compulsory_misses: s.compulsory_misses,
            staleness_misses: s.staleness_misses,
            capacity_misses: s.capacity_misses,
            consistency_misses: s.consistency_misses,
            insertions: s.insertions,
            duplicate_insertions: s.duplicate_insertions,
            invalidated_entries: s.invalidated_entries,
            late_insert_truncations: s.late_insert_truncations,
            sealed_entries: s.sealed_entries,
            invalidation_messages: s.invalidation_messages,
            lru_evictions: s.lru_evictions,
            staleness_evictions: s.staleness_evictions,
            history_floor_drops: s.history_floor_drops,
            used_bytes: s.used_bytes,
        }
    }
}

impl From<wire::NodeStats> for CacheStats {
    fn from(s: wire::NodeStats) -> CacheStats {
        CacheStats {
            hits: s.hits,
            compulsory_misses: s.compulsory_misses,
            staleness_misses: s.staleness_misses,
            capacity_misses: s.capacity_misses,
            consistency_misses: s.consistency_misses,
            insertions: s.insertions,
            duplicate_insertions: s.duplicate_insertions,
            invalidated_entries: s.invalidated_entries,
            late_insert_truncations: s.late_insert_truncations,
            sealed_entries: s.sealed_entries,
            invalidation_messages: s.invalidation_messages,
            lru_evictions: s.lru_evictions,
            staleness_evictions: s.staleness_evictions,
            history_floor_drops: s.history_floor_drops,
            used_bytes: s.used_bytes,
        }
    }
}

impl From<CacheShardStats> for wire::ShardStats {
    fn from(s: CacheShardStats) -> wire::ShardStats {
        wire::ShardStats {
            shard: s.shard as u32,
            read_locks: s.read_locks,
            write_locks: s.write_locks,
            read_waits: s.read_waits,
            write_waits: s.write_waits,
            lru_evictions: s.lru_evictions,
            staleness_evictions: s.staleness_evictions,
            entries: s.entries,
            used_bytes: s.used_bytes,
        }
    }
}

impl From<wire::ShardStats> for CacheShardStats {
    fn from(s: wire::ShardStats) -> CacheShardStats {
        CacheShardStats {
            shard: s.shard as usize,
            read_locks: s.read_locks,
            write_locks: s.write_locks,
            read_waits: s.read_waits,
            write_waits: s.write_waits,
            lru_evictions: s.lru_evictions,
            staleness_evictions: s.staleness_evictions,
            entries: s.entries,
            used_bytes: s.used_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_rates() {
        let mut s = CacheStats {
            hits: 6,
            ..CacheStats::default()
        };
        s.record_miss(MissKind::Compulsory);
        s.record_miss(MissKind::Consistency);
        s.record_miss(MissKind::Capacity);
        s.record_miss(MissKind::Staleness);
        assert_eq!(s.misses(), 4);
        assert_eq!(s.lookups(), 10);
        assert!((s.hit_rate() - 0.6).abs() < 1e-9);
        assert!((s.miss_fraction(MissKind::Consistency) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_fraction(MissKind::Compulsory), 0.0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = CacheStats {
            hits: 1,
            compulsory_misses: 2,
            used_bytes: 100,
            ..CacheStats::default()
        };
        let b = CacheStats {
            hits: 3,
            consistency_misses: 1,
            used_bytes: 50,
            ..CacheStats::default()
        };
        a.merge(&b);
        assert_eq!(a.hits, 4);
        assert_eq!(a.misses(), 3);
        assert_eq!(a.used_bytes, 150);
    }
}
