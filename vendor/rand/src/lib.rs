//! Offline subset of the `rand` crate.
//!
//! Deterministic, seedable PRNG (splitmix64 core) with the `random_range`
//! surface the workload generators use. Not cryptographically secure — the
//! harness only needs reproducible workload streams.

#![forbid(unsafe_code)]

pub mod rngs {
    /// A deterministic PRNG based on splitmix64.
    ///
    /// Fast, passes basic statistical tests, and — most importantly for the
    /// experiment harness — fully reproducible from a `u64` seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_state(state: u64) -> StdRng {
            StdRng { state }
        }

        pub(crate) fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Scramble the raw seed so that nearby seeds give unrelated streams.
        let mut rng = rngs::StdRng::from_state(seed ^ 0x5DEE_CE66_DA94_11E5);
        rng.next();
        rng
    }
}

/// Core random-value generation.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

/// Extension methods for generating values in ranges.
///
/// (The real rand crate calls this `Rng`; this workspace's code imports it as
/// `RngExt`.)
pub trait RngExt: RngCore + Sized {
    /// Generates a value uniformly distributed in `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Generates a bool that is true with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0f64) < p
    }
}

impl<T: RngCore + Sized> RngExt for T {}

/// A range that can be sampled uniformly, producing values of type `T`.
///
/// Generic over the output type (rather than using an associated type) so
/// that integer literals in ranges infer from the expected result type, as
/// with the real rand crate.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for std::ops::Range<$ty> {
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + offset) as $ty
                }
            }

            impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    (start as i128 + offset) as $ty
                }
            }
        )*
    };
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for std::ops::Range<$ty> {
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    // 53 uniformly random mantissa bits in [0, 1).
                    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    let sampled = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                    // Guard against rounding landing exactly on the excluded
                    // upper bound.
                    let sampled = sampled as $ty;
                    if sampled >= self.end { self.start } else { sampled }
                }
            }
        )*
    };
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10i64..=20);
            assert!((10..=20).contains(&v));
            let f = rng.random_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let u = rng.random_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
