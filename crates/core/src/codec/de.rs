//! The deserializer half of the TxCache binary codec.

use serde::de::{self, DeserializeSeed, IntoDeserializer, Visitor};

use super::CodecError;

/// Streaming decoder for the TxCache binary format.
#[derive(Debug)]
pub struct Decoder<'de> {
    input: &'de [u8],
    pos: usize,
}

impl<'de> Decoder<'de> {
    /// Creates a decoder over `input`.
    #[must_use]
    pub fn new(input: &'de [u8]) -> Decoder<'de> {
        Decoder { input, pos: 0 }
    }

    /// Checks that the whole input has been consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.pos == self.input.len() {
            Ok(())
        } else {
            Err(CodecError(format!(
                "{} trailing bytes after value",
                self.input.len() - self.pos
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        if self.pos + n > self.input.len() {
            return Err(CodecError(format!(
                "unexpected end of input: wanted {n} bytes at offset {}",
                self.pos
            )));
        }
        let slice = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn read_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn read_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn read_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    fn read_i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.read_u64()? as i64)
    }

    fn read_len(&mut self) -> Result<usize, CodecError> {
        let len = self.read_u64()?;
        usize::try_from(len).map_err(|_| CodecError("length overflows usize".into()))
    }

    fn read_str(&mut self) -> Result<&'de str, CodecError> {
        let len = self.read_len()?;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|e| CodecError(format!("invalid utf-8: {e}")))
    }
}

macro_rules! forward_int {
    ($method:ident, $visit:ident, $ty:ty, $read:ident) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
            let raw = self.$read()?;
            let value = <$ty>::try_from(raw).map_err(|_| {
                CodecError(format!(
                    "integer {raw} out of range for {}",
                    stringify!($ty)
                ))
            })?;
            visitor.$visit(value)
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Decoder<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError(
            "the TxCache codec is not self-describing; deserialize_any is unsupported".into(),
        ))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.read_u8()? {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            other => Err(CodecError(format!("invalid bool tag {other}"))),
        }
    }

    forward_int!(deserialize_i8, visit_i8, i8, read_i64);
    forward_int!(deserialize_i16, visit_i16, i16, read_i64);
    forward_int!(deserialize_i32, visit_i32, i32, read_i64);

    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let v = self.read_i64()?;
        visitor.visit_i64(v)
    }

    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let b = self.take(16)?;
        let mut arr = [0u8; 16];
        arr.copy_from_slice(b);
        visitor.visit_i128(i128::from_le_bytes(arr))
    }

    forward_int!(deserialize_u8, visit_u8, u8, read_u64);
    forward_int!(deserialize_u16, visit_u16, u16, read_u64);
    forward_int!(deserialize_u32, visit_u32, u32, read_u64);

    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let v = self.read_u64()?;
        visitor.visit_u64(v)
    }

    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let b = self.take(16)?;
        let mut arr = [0u8; 16];
        arr.copy_from_slice(b);
        visitor.visit_u128(u128::from_le_bytes(arr))
    }

    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let b = self.take(4)?;
        visitor.visit_f32(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        visitor.visit_f64(f64::from_le_bytes(arr))
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let raw = self.read_u32()?;
        let c = char::from_u32(raw).ok_or_else(|| CodecError(format!("invalid char {raw:#x}")))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let s = self.read_str()?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        let bytes = self.take(len)?;
        visitor.visit_borrowed_bytes(bytes)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.read_u8()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            other => Err(CodecError(format!("invalid option tag {other}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        visitor.visit_map(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(Counted {
            de: self,
            remaining: fields.len(),
        })
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError(
            "identifiers are not encoded by the TxCache codec".into(),
        ))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError(
            "cannot skip values in a non-self-describing format".into(),
        ))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Sequence/map access that reads a fixed number of elements.
struct Counted<'a, 'de> {
    de: &'a mut Decoder<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for Counted<'_, 'de> {
    type Error = CodecError;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de> de::MapAccess<'de> for Counted<'_, 'de> {
    type Error = CodecError;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

/// Enum access: a 4-byte variant index followed by the variant's payload.
struct EnumAccess<'a, 'de> {
    de: &'a mut Decoder<'de>,
}

impl<'de> de::EnumAccess<'de> for EnumAccess<'_, 'de> {
    type Error = CodecError;
    type Variant = Self;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), CodecError> {
        let index = self.de.read_u32()?;
        let value = seed.deserialize(index.into_deserializer())?;
        Ok((value, self))
    }
}

impl<'de> de::VariantAccess<'de> for EnumAccess<'_, 'de> {
    type Error = CodecError;

    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, CodecError> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(Counted {
            de: self.de,
            remaining: len,
        })
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(Counted {
            de: self.de,
            remaining: fields.len(),
        })
    }
}
