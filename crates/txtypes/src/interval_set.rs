//! Sets of disjoint validity intervals.
//!
//! The database's validity-interval computation (§5.2) works with two pieces:
//! the *result tuple validity* (an intersection of intervals, so itself a
//! single interval) and the *invalidity mask*, the union of the validity
//! intervals of every tuple that failed a visibility check. The final query
//! validity is the largest interval around the query's snapshot timestamp that
//! lies inside the result validity and outside the mask. [`IntervalSet`]
//! provides the union/containment/subtraction operations that computation
//! needs, and is reused by tests as a reference model.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::interval::ValidityInterval;
use crate::timestamp::Timestamp;

/// A union of disjoint, non-adjacent validity intervals kept in sorted order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalSet {
    /// Sorted, pairwise-disjoint, non-adjacent intervals.
    intervals: Vec<ValidityInterval>,
}

impl IntervalSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> IntervalSet {
        IntervalSet::default()
    }

    /// Returns `true` if the set contains no timestamps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Returns the number of disjoint intervals in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Returns the intervals in sorted order.
    #[must_use]
    pub fn intervals(&self) -> &[ValidityInterval] {
        &self.intervals
    }

    /// Returns `true` if any interval in the set contains `ts`.
    #[must_use]
    pub fn contains(&self, ts: Timestamp) -> bool {
        self.intervals.iter().any(|iv| iv.contains(ts))
    }

    /// Adds an interval to the set, merging it with any overlapping or
    /// adjacent intervals.
    pub fn insert(&mut self, iv: ValidityInterval) {
        let mut new_lower = iv.lower;
        let mut new_upper = iv.upper;
        let mut merged: Vec<ValidityInterval> = Vec::with_capacity(self.intervals.len() + 1);
        for existing in self.intervals.drain(..) {
            let overlaps_or_adjacent = {
                // Two half-open intervals [a,b) and [c,d) merge when a <= d and c <= b
                // (treating None as +∞); adjacency (b == c) also merges.
                let lower_ok = match new_upper {
                    None => true,
                    Some(u) => existing.lower <= u,
                };
                let upper_ok = match existing.upper {
                    None => true,
                    Some(u) => new_lower <= u,
                };
                lower_ok && upper_ok
            };
            if overlaps_or_adjacent {
                new_lower = new_lower.min(existing.lower);
                new_upper = match (new_upper, existing.upper) {
                    (None, _) | (_, None) => None,
                    (Some(a), Some(b)) => Some(a.max(b)),
                };
            } else {
                merged.push(existing);
            }
        }
        merged.push(ValidityInterval {
            lower: new_lower,
            upper: new_upper,
        });
        merged.sort_by_key(|iv| iv.lower);
        self.intervals = merged;
    }

    /// Returns the largest sub-interval of `within` that contains `ts` and
    /// does not intersect this set, or `None` if `ts` itself is covered by the
    /// set or lies outside `within`.
    ///
    /// This is exactly the "subtract the invalidity mask from the result tuple
    /// validity" step of §5.2: the query ran at snapshot `ts`, so the reported
    /// validity interval is the maximal gap around `ts`.
    #[must_use]
    pub fn gap_around(&self, within: ValidityInterval, ts: Timestamp) -> Option<ValidityInterval> {
        if !within.contains(ts) || self.contains(ts) {
            return None;
        }
        let mut lower = within.lower;
        let mut upper = within.upper;
        for iv in &self.intervals {
            // Interval entirely at or before ts: it can only raise the lower bound.
            if let Some(u) = iv.upper {
                if u <= ts {
                    lower = lower.max(u);
                    continue;
                }
            }
            // Interval starting after ts: it can only lower the upper bound.
            if iv.lower > ts {
                upper = Some(match upper {
                    Some(existing) => existing.min(iv.lower),
                    None => iv.lower,
                });
            }
            // An interval containing ts was already excluded by the contains()
            // check above.
        }
        match upper {
            Some(u) if u <= lower => None,
            _ => Some(ValidityInterval { lower, upper }),
        }
    }

    /// Returns the union of all timestamps covered by either set.
    #[must_use]
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = self.clone();
        for iv in &other.intervals {
            out.insert(*iv);
        }
        out
    }

    /// Removes every timestamp `>= ts` from the set. Used by tests that model
    /// invalidation-stream truncation.
    pub fn truncate_from(&mut self, ts: Timestamp) {
        let mut out = Vec::with_capacity(self.intervals.len());
        for iv in self.intervals.drain(..) {
            if let Some(t) = iv.truncate_at(ts) {
                out.push(t);
            }
        }
        self.intervals = out;
    }
}

impl From<ValidityInterval> for IntervalSet {
    fn from(iv: ValidityInterval) -> Self {
        let mut s = IntervalSet::new();
        s.insert(iv);
        s
    }
}

impl FromIterator<ValidityInterval> for IntervalSet {
    fn from_iter<T: IntoIterator<Item = ValidityInterval>>(iter: T) -> Self {
        let mut s = IntervalSet::new();
        for iv in iter {
            s.insert(iv);
        }
        s
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: u64, hi: u64) -> ValidityInterval {
        ValidityInterval::bounded(Timestamp(lo), Timestamp(hi)).expect("non-empty")
    }

    #[test]
    fn insert_merges_overlapping_and_adjacent() {
        let mut s = IntervalSet::new();
        s.insert(b(10, 20));
        s.insert(b(30, 40));
        assert_eq!(s.len(), 2);
        // Overlapping
        s.insert(b(15, 25));
        assert_eq!(s.len(), 2);
        assert_eq!(s.intervals()[0], b(10, 25));
        // Adjacent
        s.insert(b(25, 30));
        assert_eq!(s.len(), 1);
        assert_eq!(s.intervals()[0], b(10, 40));
    }

    #[test]
    fn insert_unbounded_swallows_later_intervals() {
        let mut s = IntervalSet::new();
        s.insert(b(10, 20));
        s.insert(b(50, 60));
        s.insert(ValidityInterval::unbounded(Timestamp(15)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.intervals()[0], ValidityInterval::unbounded(Timestamp(10)));
    }

    #[test]
    fn contains_checks_all_intervals() {
        let s: IntervalSet = [b(1, 3), b(10, 12)].into_iter().collect();
        assert!(s.contains(Timestamp(2)));
        assert!(!s.contains(Timestamp(5)));
        assert!(s.contains(Timestamp(11)));
        assert!(!s.contains(Timestamp(12)));
    }

    #[test]
    fn gap_around_reproduces_paper_figure_4() {
        // Figure 4 of the paper: result validity [44, 47) from tuples 1 and 2;
        // invalidity mask contains tuples 3 (deleted before the query) and 4
        // (created after), say [40, 45) and [48, ∞). Query ran at ts 46.
        let result_validity = b(44, 47);
        let mask: IntervalSet = [b(40, 45), ValidityInterval::unbounded(Timestamp(48))]
            .into_iter()
            .collect();
        let got = mask.gap_around(result_validity, Timestamp(46));
        assert_eq!(got, Some(b(45, 47)));
    }

    #[test]
    fn gap_around_none_when_ts_masked_or_outside() {
        let mask: IntervalSet = [b(40, 45)].into_iter().collect();
        assert_eq!(mask.gap_around(b(30, 60), Timestamp(42)), None);
        assert_eq!(mask.gap_around(b(30, 60), Timestamp(70)), None);
    }

    #[test]
    fn gap_around_unbounded_result() {
        let mask: IntervalSet = [b(10, 20)].into_iter().collect();
        let within = ValidityInterval::unbounded(Timestamp(5));
        assert_eq!(
            mask.gap_around(within, Timestamp(25)),
            Some(ValidityInterval::unbounded(Timestamp(20)))
        );
        assert_eq!(mask.gap_around(within, Timestamp(7)), Some(b(5, 10)));
    }

    #[test]
    fn union_and_truncate() {
        let a: IntervalSet = [b(1, 5)].into_iter().collect();
        let c: IntervalSet = [b(10, 20)].into_iter().collect();
        let u = a.union(&c);
        assert_eq!(u.len(), 2);
        let mut u2 = u.clone();
        u2.truncate_from(Timestamp(12));
        assert_eq!(u2.intervals(), &[b(1, 5), b(10, 12)]);
        let mut u3 = u;
        u3.truncate_from(Timestamp(1));
        assert!(u3.is_empty());
    }

    #[test]
    fn display_formats_all_members() {
        let s: IntervalSet = [b(1, 3), b(10, 12)].into_iter().collect();
        assert_eq!(s.to_string(), "{[1, 3), [10, 12)}");
    }
}
