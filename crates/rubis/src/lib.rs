//! # rubis — the RUBiS auction benchmark ported to TxCache (§7.1, §8)
//!
//! The paper evaluates TxCache with RUBiS, an auction site modeled after
//! eBay. This crate contains everything the evaluation needs:
//!
//! * the RUBiS **schema** (plus the `item_region_category` table the authors
//!   added to avoid a sequential scan) and a deterministic, scalable **data
//!   generator** with presets matching the paper's in-memory and disk-bound
//!   configurations;
//! * the **application** ([`RubisApp`]): read-only paths built from cacheable
//!   functions at both page and object granularity (with nested calls), and
//!   read/write paths (bidding, commenting, registering) that bypass the
//!   cache;
//! * the **client emulator** ([`ClientSession`]): the standard bidding mix —
//!   roughly 85% read-only interactions, 7-second mean think time — over the
//!   26 RUBiS interactions.

#![forbid(unsafe_code)]

pub mod app;
pub mod model;
pub mod schema;
pub mod workload;

pub use app::{RubisApp, ITEMS_PER_PAGE};
pub use model::{BidInfo, CommentInfo, ItemDetails, ItemSummary, RenderedPage, UserInfo};
pub use schema::{create_tables, populate, schemas, DatasetSummary, RubisScale};
pub use workload::{ClientSession, Interaction, InteractionReport, WorkloadConfig};
