//! Server-side observability: per-opcode latency histograms, queue-depth
//! gauges, and the slow-op flight recorder, built on the `obs` crate.
//!
//! Every request — whether it came through the epoll event loop or the
//! thread-per-connection path the chaos tests use — funnels through
//! [`apply_timed`], which times the dispatch, records the latency into the
//! opcode's histogram, and hands the trace to the [`obs::SlowOpRing`]. The
//! whole layer sits behind [`crate::NodeConfig::metrics`]: with metrics off
//! the server takes no clock readings at all (the no-op mode the
//! instrumentation-overhead benchmark compares against).
//!
//! Metric names follow the `component.subject.unit` scheme from the `obs`
//! crate docs: `server.req.<op>.us` for request latency,
//! `server.queue.depth` for undispatched work, `server.backpressure.pauses`
//! for paused reads, `server.slow_ops.captured` for the flight recorder.

use std::sync::Arc;

use obs::{Gauge, Histogram, MetricsSnapshot, Registry, SlowOpRing, StripedCounter, Trace};
use wire::{HistogramReport, MetricsReport, Request, Response};

use crate::node::NodeConfig;
use crate::server::{apply_request, Shared};

/// How many slow operations the flight recorder retains.
const SLOW_OP_RING_CAP: usize = 64;

/// Request opcodes, in the order of [`op_index`]. One latency histogram per
/// opcode: mixing a 4 µs ping with a 4 ms multiget in one distribution
/// would hide both.
pub(crate) const OP_LABELS: [&str; 13] = [
    "ping",
    "get",
    "put",
    "multi_get",
    "multi_put",
    "inval_batch",
    "evict_stale",
    "stats",
    "shard_stats",
    "reset_stats",
    "seal",
    "ring_epoch",
    "metrics",
];

/// The slot in [`OP_LABELS`] (and the histogram bank) for a request.
pub(crate) fn op_index(request: &Request) -> usize {
    match request {
        Request::Ping { .. } => 0,
        Request::VersionedGet { .. } => 1,
        Request::Put { .. } => 2,
        Request::MultiGet { .. } => 3,
        Request::MultiPut { .. } => 4,
        Request::InvalidationBatch { .. } => 5,
        Request::EvictStale { .. } => 6,
        Request::Stats => 7,
        Request::ShardStats => 8,
        Request::ResetStats => 9,
        Request::SealStillValid => 10,
        Request::RingEpoch { .. } => 11,
        Request::Metrics => 12,
    }
}

/// The server's observability state, shared by every connection.
#[derive(Debug)]
pub(crate) struct ServerObs {
    /// With metrics off every per-request clock read is skipped; only the
    /// pre-existing relaxed counters keep running.
    pub(crate) enabled: bool,
    /// Test hook: hold every request for this many microseconds before
    /// dispatch, so tests can drive the slow-op recorder deterministically
    /// (the observability mirror of the chaos tests'
    /// `disable_seal_on_heal_for_fault_injection`).
    pub(crate) inject_delay_us: u64,
    pub(crate) registry: Registry,
    /// Cached handles, indexed by [`op_index`]: the hot path never touches
    /// the registry lock.
    req_us: [Arc<Histogram>; OP_LABELS.len()],
    pub(crate) queue_depth: Arc<Gauge>,
    pub(crate) backpressure_pauses: Arc<StripedCounter>,
    slow_ops_captured: Arc<StripedCounter>,
    pub(crate) slow_ops: SlowOpRing,
}

impl ServerObs {
    pub(crate) fn new(config: &NodeConfig) -> ServerObs {
        let registry = Registry::new();
        let req_us =
            std::array::from_fn(|i| registry.histogram(&format!("server.req.{}.us", OP_LABELS[i])));
        let queue_depth = registry.gauge("server.queue.depth");
        let backpressure_pauses = registry.counter("server.backpressure.pauses");
        let slow_ops_captured = registry.counter("server.slow_ops.captured");
        ServerObs {
            enabled: config.metrics,
            inject_delay_us: config.inject_delay_us,
            registry,
            req_us,
            queue_depth,
            backpressure_pauses,
            slow_ops_captured,
            slow_ops: SlowOpRing::new(SLOW_OP_RING_CAP, config.slow_op_threshold_us),
        }
    }

    /// A trace for a freshly parsed request, or `None` when metrics are off
    /// (no clock read happens at all).
    pub(crate) fn trace(&self, seq: u64) -> Option<Trace> {
        self.enabled.then(|| Trace::start(seq))
    }

    /// Just the request arrival instant, or `None` when metrics are off.
    /// The event loop ships this 16-byte value to a worker and resumes the
    /// trace there ([`Trace::resume`]), keeping the span array off the
    /// reactor→worker channel.
    pub(crate) fn trace_start(&self) -> Option<std::time::Instant> {
        self.enabled.then(std::time::Instant::now)
    }
}

/// Dispatches a request with latency recording and slow-op capture. `trace`
/// is `None` when metrics are disabled (or, defensively, when a caller had
/// no trace to thread through); the request then dispatches untimed.
pub(crate) fn apply_timed(shared: &Shared, request: Request, trace: Option<Trace>) -> Response {
    let Some(mut trace) = trace else {
        return apply_request(shared, request);
    };
    if shared.obs.inject_delay_us > 0 {
        std::thread::sleep(std::time::Duration::from_micros(shared.obs.inject_delay_us));
        trace.span("injected_delay");
    }
    let op = op_index(&request);
    let response = apply_request(shared, request);
    // One clock read serves the "applied" span, the latency histogram, and
    // the slow-op threshold check.
    let total_us = trace.elapsed_us();
    trace.span_at("applied", total_us);
    shared.obs.req_us[op].record(total_us);
    if shared
        .obs
        .slow_ops
        .observe_at(OP_LABELS[op], trace, total_us)
    {
        shared.obs.slow_ops_captured.bump();
    }
    response
}

/// The full metrics snapshot a `Metrics` request answers with: the obs
/// registry plus the node-wide protocol counters, merged into one sorted
/// namespace.
pub(crate) fn metrics_snapshot(shared: &Shared) -> MetricsSnapshot {
    let mut snap = shared.obs.registry.snapshot();
    let s = &shared.counters;
    let accepted = s
        .connections_accepted
        .load(std::sync::atomic::Ordering::Relaxed);
    snap.counters.extend([
        ("server.bytes.in".to_string(), s.bytes_in.get()),
        ("server.bytes.out".to_string(), s.bytes_out.get()),
        ("server.conns.accepted".to_string(), accepted),
        (
            "server.conns.closed".to_string(),
            s.connections_closed.get(),
        ),
        (
            "server.inval.batches".to_string(),
            s.invalidation_batches.get(),
        ),
        (
            "server.protocol.errors".to_string(),
            s.protocol_errors.get(),
        ),
        ("server.req.total".to_string(), s.requests.get()),
    ]);
    snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
    snap
}

/// Converts a registry snapshot into its wire mirror (sparse histogram
/// buckets; see [`wire::MetricsReport`]).
pub(crate) fn to_wire(snap: MetricsSnapshot) -> MetricsReport {
    MetricsReport {
        counters: snap.counters,
        gauges: snap.gauges,
        histograms: snap
            .histograms
            .into_iter()
            .map(|(name, h)| HistogramReport {
                name,
                count: h.count,
                sum: h.sum,
                min: h.min,
                max: h.max,
                buckets: h.to_sparse(),
            })
            .collect(),
    }
}

/// Rebuilds a local snapshot from the wire mirror — the client-side decode
/// used by `txcached --metrics` and the obs-smoke test.
#[must_use]
pub fn snapshot_from_wire(report: &MetricsReport) -> MetricsSnapshot {
    MetricsSnapshot {
        counters: report.counters.clone(),
        gauges: report.gauges.clone(),
        histograms: report
            .histograms
            .iter()
            .map(|h| {
                (
                    h.name.clone(),
                    obs::HistogramSnapshot::from_sparse(h.count, h.sum, h.min, h.max, &h.buckets),
                )
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_labels_are_distinct_and_indexed_consistently() {
        let unique: std::collections::HashSet<&str> = OP_LABELS.iter().copied().collect();
        assert_eq!(unique.len(), OP_LABELS.len());
        assert_eq!(op_index(&Request::Ping { nonce: 0 }), 0);
        assert_eq!(OP_LABELS[op_index(&Request::Stats)], "stats");
        assert_eq!(OP_LABELS[op_index(&Request::Metrics)], "metrics");
    }

    #[test]
    fn wire_roundtrip_preserves_the_snapshot() {
        let r = Registry::new();
        r.counter("server.conns.accepted").add(3);
        r.gauge("server.queue.depth").set(-1);
        for v in [10, 500, 90_000] {
            r.histogram("server.req.get.us").record(v);
        }
        let snap = r.snapshot();
        let back = snapshot_from_wire(&to_wire(snap.clone()));
        assert_eq!(back, snap);
    }
}
