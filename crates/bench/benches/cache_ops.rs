//! Microbenchmarks of the versioned cache node: lookups, inserts, and
//! invalidation-stream processing, plus the TxCache binary codec used to
//! serialize cached values.

use bytes::Bytes;
use cache_server::{CacheNode, LookupRequest, NodeConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use rubis::ItemDetails;
use txcache::codec;
use txtypes::{CacheKey, InvalidationTag, TagSet, Timestamp, ValidityInterval, WallClock};

fn key(i: u64) -> CacheKey {
    CacheKey::new("get_item", format!("[{i}]"))
}

fn warm_node(entries: u64) -> CacheNode {
    let node = CacheNode::new(
        "bench",
        NodeConfig {
            capacity_bytes: 256 << 20,
            ..NodeConfig::default()
        },
    );
    for i in 0..entries {
        let tags: TagSet = [InvalidationTag::keyed("items", format!("id={i}"))]
            .into_iter()
            .collect();
        node.insert(
            key(i),
            Bytes::from(vec![7u8; 256]),
            ValidityInterval::unbounded(Timestamp(1)),
            tags,
            WallClock::ZERO,
        );
    }
    node.apply_invalidation(Timestamp(100), &TagSet::new());
    node
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_node");
    group.sample_size(40);

    group.bench_function("lookup_hit", |b| {
        let node = warm_node(10_000);
        let request = LookupRequest::at(Timestamp(50));
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            assert!(node.lookup(&key(i), &request).is_hit());
        });
    });

    group.bench_function("insert", |b| {
        let node = warm_node(1_000);
        let mut i = 1_000_000u64;
        b.iter(|| {
            i += 1;
            node.insert(
                key(i),
                Bytes::from(vec![7u8; 256]),
                ValidityInterval::unbounded(Timestamp(2)),
                TagSet::new(),
                WallClock::ZERO,
            );
        });
    });

    group.bench_function("apply_invalidation", |b| {
        let node = warm_node(10_000);
        let mut ts = 200u64;
        let mut i = 0u64;
        b.iter(|| {
            ts += 1;
            i = (i + 1) % 10_000;
            let tags: TagSet = [InvalidationTag::keyed("items", format!("id={i}"))]
                .into_iter()
                .collect();
            node.apply_invalidation(Timestamp(ts), &tags);
        });
    });

    group.bench_function("codec_roundtrip_item", |b| {
        let item = ItemDetails {
            id: 42,
            name: "a fine vase".into(),
            description: "x".repeat(200),
            seller: 7,
            category: 3,
            initial_price: 10.0,
            current_price: 17.5,
            nb_of_bids: 4,
            end_date: 99,
            closed: false,
        };
        b.iter(|| {
            let bytes = codec::encode(&item).unwrap();
            let back: ItemDetails = codec::decode(&bytes).unwrap();
            assert_eq!(back.id, 42);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
