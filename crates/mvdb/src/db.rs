//! The database facade.
//!
//! [`Database`] ties the storage, planning, execution, transaction, pinning,
//! and invalidation machinery together behind the interface the TxCache
//! library needs (§5):
//!
//! * read/write transactions under snapshot isolation;
//! * read-only transactions that can run at pinned past snapshots
//!   (`PIN` / `UNPIN` / `BEGIN SNAPSHOTID`);
//! * per-query validity intervals and invalidation tags piggybacked on
//!   results;
//! * an ordered invalidation stream published at commit time;
//! * a vacuum process that respects pinned snapshots.
//!
//! The whole database lives behind one mutex. The paper's evaluation
//! bottlenecks on database *work*, not on lock contention inside the engine,
//! and the harness models service times explicitly, so a coarse lock keeps
//! the engine simple without affecting any reproduced result.

use std::collections::HashMap;

use crossbeam::channel::Receiver;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use txtypes::{
    Error, InvalidationTag, Result, SimClock, TagSet, Timestamp, ValidityInterval, WallClock,
};

use crate::buffer::{BufferManager, BufferStats};
use crate::exec::{execute_plan, ExecOptions, PageCounts, QueryResult};
use crate::invalidation::{InvalidationBus, InvalidationMessage};
use crate::plan::{choose_access_path, plan_query, AccessPath};
use crate::query::{Predicate, SelectQuery};
use crate::schema::TableSchema;
use crate::snapshot::{PinRegistry, SnapshotId};
use crate::stats::DbStats;
use crate::table::{Slot, Table};
use crate::tuple::{Stamp, TupleVersion, TxnId};
use crate::txn::{Transaction, TxnMode, TxnToken};
use crate::value::Value;

/// Static configuration of a [`Database`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DbConfig {
    /// Size of the simulated buffer pool in pages. Together with the dataset
    /// size this determines whether the configuration behaves "in-memory" or
    /// "disk-bound".
    pub buffer_pages: usize,
    /// Tuples per simulated heap page.
    pub rows_per_page: usize,
    /// If a single transaction modifies at least this many rows of one table,
    /// its keyed tags for that table are collapsed into a wildcard (§5.3).
    pub wildcard_threshold: usize,
    /// Database-side TxCache support (validity tracking + invalidation tags).
    /// Disabling it models the stock DBMS baseline of §8.1.
    pub exec: ExecOptions,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            buffer_pages: 1 << 16,
            rows_per_page: 32,
            wildcard_threshold: 64,
            exec: ExecOptions::default(),
        }
    }
}

/// Everything protected by the database lock.
struct DbInner {
    tables: HashMap<String, Table>,
    latest: Timestamp,
    active: HashMap<TxnId, Transaction>,
    next_txn_id: TxnId,
    pins: PinRegistry,
    bus: InvalidationBus,
    buffer: BufferManager,
    stats: DbStats,
}

/// A multiversion relational database with TxCache support.
pub struct Database {
    inner: Mutex<DbInner>,
    config: DbConfig,
    clock: SimClock,
}

impl Database {
    /// Creates an empty database.
    #[must_use]
    pub fn new(config: DbConfig, clock: SimClock) -> Database {
        Database {
            inner: Mutex::new(DbInner {
                tables: HashMap::new(),
                latest: Timestamp::ZERO,
                active: HashMap::new(),
                next_txn_id: 1,
                pins: PinRegistry::new(),
                bus: InvalidationBus::new(),
                buffer: BufferManager::new(config.buffer_pages),
                stats: DbStats::default(),
            }),
            config,
            clock,
        }
    }

    /// Creates a database with default configuration and a private clock;
    /// convenient in tests and examples.
    #[must_use]
    pub fn with_defaults() -> Database {
        Database::new(DbConfig::default(), SimClock::new())
    }

    /// The database's configuration.
    #[must_use]
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// The simulated clock this database records commit times against.
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    // ------------------------------------------------------------------
    // Schema management and bulk loading
    // ------------------------------------------------------------------

    /// Creates a table.
    pub fn create_table(&self, schema: TableSchema) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.tables.contains_key(&schema.name) {
            return Err(Error::Schema(format!(
                "table '{}' already exists",
                schema.name
            )));
        }
        let name = schema.name.clone();
        let table = Table::new(schema, self.config.rows_per_page)?;
        inner.tables.insert(name, table);
        Ok(())
    }

    /// Returns the names of all tables.
    #[must_use]
    pub fn table_names(&self) -> Vec<String> {
        let inner = self.inner.lock();
        let mut names: Vec<String> = inner.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Returns a copy of a table's schema.
    pub fn table_schema(&self, table: &str) -> Result<TableSchema> {
        let inner = self.inner.lock();
        inner
            .tables
            .get(table)
            .map(|t| t.schema().clone())
            .ok_or_else(|| Error::Schema(format!("no table '{table}'")))
    }

    /// Approximate size of a table's data in bytes.
    pub fn table_bytes(&self, table: &str) -> Result<usize> {
        let inner = self.inner.lock();
        inner
            .tables
            .get(table)
            .map(Table::approx_bytes)
            .ok_or_else(|| Error::Schema(format!("no table '{table}'")))
    }

    /// Approximate size of the whole database in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        let inner = self.inner.lock();
        inner.tables.values().map(Table::approx_bytes).sum()
    }

    /// Loads rows directly as committed data, bypassing the transaction
    /// machinery. All rows loaded by one call become visible atomically at a
    /// single new commit timestamp and publish no invalidations; this is the
    /// initial-population path used by the data generators.
    pub fn bulk_load(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<Vec<u64>> {
        let mut inner = self.inner.lock();
        let commit_ts = inner.latest.next();
        let t = inner
            .tables
            .get_mut(table)
            .ok_or_else(|| Error::Schema(format!("no table '{table}'")))?;
        let mut row_ids = Vec::with_capacity(rows.len());
        for values in rows {
            let row_id = t.allocate_row_id();
            t.insert_version(TupleVersion::committed(row_id, values, commit_ts))?;
            row_ids.push(row_id);
        }
        inner.latest = commit_ts;
        Ok(row_ids)
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begins a read/write transaction at the latest committed snapshot.
    pub fn begin_rw(&self) -> Result<TxnToken> {
        let mut inner = self.inner.lock();
        let id = inner.next_txn_id;
        inner.next_txn_id += 1;
        let snapshot = inner.latest;
        inner
            .active
            .insert(id, Transaction::new(id, TxnMode::ReadWrite, snapshot));
        Ok(TxnToken(id))
    }

    /// Begins a read-only transaction. With `snapshot = None` it runs at the
    /// latest committed state; with `Some(id)` it runs at that pinned
    /// snapshot (the paper's `BEGIN SNAPSHOTID` syntax).
    pub fn begin_ro(&self, snapshot: Option<SnapshotId>) -> Result<TxnToken> {
        let mut inner = self.inner.lock();
        let ts = match snapshot {
            None => inner.latest,
            Some(id) => {
                if !inner.pins.is_pinned(id.timestamp()) && id.timestamp() != inner.latest {
                    return Err(Error::SnapshotUnavailable(format!(
                        "snapshot {id} is not pinned"
                    )));
                }
                id.timestamp()
            }
        };
        let id = inner.next_txn_id;
        inner.next_txn_id += 1;
        inner
            .active
            .insert(id, Transaction::new(id, TxnMode::ReadOnly, ts));
        Ok(TxnToken(id))
    }

    /// Commits a transaction. Read-only transactions simply return their
    /// snapshot timestamp; read/write transactions are assigned the next
    /// commit timestamp, their versions are stamped, and an invalidation
    /// message is published.
    pub fn commit(&self, token: TxnToken) -> Result<Timestamp> {
        let mut inner = self.inner.lock();
        let tx = inner
            .active
            .remove(&token.0)
            .ok_or_else(|| Error::UnknownTransaction(format!("txn {}", token.0)))?;
        inner.stats.commits += 1;
        if !tx.has_writes() {
            return Ok(tx.snapshot);
        }

        let commit_ts = inner.latest.next();

        // Stamp created and deleted versions with the commit timestamp.
        for (table, slot) in &tx.created_slots {
            if let Some(version) = inner.tables.get_mut(table).and_then(|t| t.get_mut(*slot)) {
                version.created = Stamp::Committed(commit_ts);
            }
        }
        for (table, slot) in &tx.deleted_slots {
            if let Some(version) = inner.tables.get_mut(table).and_then(|t| t.get_mut(*slot)) {
                if matches!(version.deleted, Some(Stamp::Pending(id)) if id == tx.id) {
                    version.deleted = Some(Stamp::Committed(commit_ts));
                }
            }
        }
        inner.latest = commit_ts;

        // Build the invalidation tag set, collapsing to wildcards for tables
        // with many modified rows.
        if self.config.exec.track_validity {
            let mut tags = TagSet::new();
            for tag in tx.pending_tags.iter() {
                let collapse = tx
                    .rows_modified
                    .get(&tag.table)
                    .is_some_and(|n| *n >= self.config.wildcard_threshold);
                if collapse {
                    tags.insert(InvalidationTag::wildcard(&tag.table));
                } else {
                    tags.insert(tag.clone());
                }
            }
            let message = InvalidationMessage {
                timestamp: commit_ts,
                tags,
                committed_at: self.clock.now(),
            };
            inner.bus.publish(message);
            inner.stats.invalidating_commits += 1;
        }
        Ok(commit_ts)
    }

    /// Aborts a transaction, undoing any pending writes.
    pub fn abort(&self, token: TxnToken) -> Result<()> {
        let mut inner = self.inner.lock();
        let tx = inner
            .active
            .remove(&token.0)
            .ok_or_else(|| Error::UnknownTransaction(format!("txn {}", token.0)))?;
        inner.stats.aborts += 1;
        for (table, slot) in &tx.created_slots {
            if let Some(version) = inner.tables.get_mut(table).and_then(|t| t.get_mut(*slot)) {
                version.created = Stamp::Aborted;
            }
        }
        for (table, slot) in &tx.deleted_slots {
            if let Some(version) = inner.tables.get_mut(table).and_then(|t| t.get_mut(*slot)) {
                if matches!(version.deleted, Some(Stamp::Pending(id)) if id == tx.id) {
                    version.deleted = None;
                }
            }
        }
        Ok(())
    }

    /// The latest committed timestamp.
    #[must_use]
    pub fn latest_timestamp(&self) -> Timestamp {
        self.inner.lock().latest
    }

    // ------------------------------------------------------------------
    // Pinned snapshots
    // ------------------------------------------------------------------

    /// Pins the latest committed snapshot (the `PIN` command) and returns its
    /// id together with the wall-clock time of the pin.
    pub fn pin_latest(&self) -> (SnapshotId, WallClock) {
        let mut inner = self.inner.lock();
        let ts = inner.latest;
        let id = inner.pins.pin(ts);
        inner.stats.pins += 1;
        (id, self.clock.now())
    }

    /// Pins a specific snapshot timestamp; it must still be retained (i.e. at
    /// or after the current vacuum horizon).
    pub fn pin(&self, ts: Timestamp) -> Result<SnapshotId> {
        let mut inner = self.inner.lock();
        if ts > inner.latest {
            return Err(Error::SnapshotUnavailable(format!(
                "timestamp {ts} is in the future"
            )));
        }
        inner.stats.pins += 1;
        Ok(inner.pins.pin(ts))
    }

    /// Releases a pinned snapshot (the `UNPIN` command).
    pub fn unpin(&self, id: SnapshotId) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.stats.unpins += 1;
        inner.pins.unpin(id)
    }

    /// Currently pinned snapshot timestamps, oldest first.
    #[must_use]
    pub fn pinned_snapshots(&self) -> Vec<Timestamp> {
        self.inner.lock().pins.pinned_timestamps()
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Executes a SELECT query within a transaction. The result carries the
    /// validity interval and invalidation tags described in §5.2–§5.3.
    pub fn query(&self, token: TxnToken, query: &SelectQuery) -> Result<QueryResult> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let tx = inner
            .active
            .get(&token.0)
            .ok_or_else(|| Error::UnknownTransaction(format!("txn {}", token.0)))?;
        let snapshot = tx.snapshot;
        let me = Some(tx.id);
        let outer = inner
            .tables
            .get(&query.table)
            .ok_or_else(|| Error::Schema(format!("no table '{}'", query.table)))?;
        let inner_table = match &query.join {
            Some(join) => Some(
                inner
                    .tables
                    .get(&join.table)
                    .ok_or_else(|| Error::Schema(format!("no table '{}'", join.table)))?,
            ),
            None => None,
        };
        let plan = plan_query(query, outer, inner_table)?;
        let result = execute_plan(
            &plan,
            outer,
            inner_table,
            snapshot,
            me,
            &mut inner.buffer,
            &self.config.exec,
        )?;
        inner.stats.queries += 1;
        Ok(result)
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    /// Inserts a row in a read/write transaction. Returns the new row id.
    pub fn insert(&self, token: TxnToken, table: &str, values: Vec<Value>) -> Result<u64> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let tx = Self::writable_txn(&mut inner.active, token)?;
        let t = inner
            .tables
            .get_mut(table)
            .ok_or_else(|| Error::Schema(format!("no table '{table}'")))?;
        let row_id = t.allocate_row_id();
        let version = TupleVersion::pending(row_id, values.clone(), tx.id);
        let slot = t.insert_version(version)?;
        Self::collect_tags_for_values(t, &values, &mut tx.pending_tags);
        tx.created_slots.push((table.to_string(), slot));
        tx.written_rows.push((table.to_string(), row_id));
        tx.note_row_modified(table);
        inner.stats.inserts += 1;
        Ok(row_id)
    }

    /// Updates all rows of `table` matching `predicate`, applying the
    /// `assignments` (column, new value) list. Returns the number of rows
    /// updated.
    pub fn update(
        &self,
        token: TxnToken,
        table: &str,
        predicate: &Predicate,
        assignments: &[(String, Value)],
    ) -> Result<usize> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let tx = Self::writable_txn(&mut inner.active, token)?;
        let snapshot = tx.snapshot;
        let txid = tx.id;
        let t = inner
            .tables
            .get_mut(table)
            .ok_or_else(|| Error::Schema(format!("no table '{table}'")))?;

        let targets =
            Self::visible_matching_slots(t, predicate, snapshot, txid, &mut inner.buffer)?;
        let mut updated = 0;
        for slot in targets {
            Self::check_write_conflict(t, slot, snapshot, txid)?;
            let old_version = t
                .get(slot)
                .ok_or_else(|| Error::Query("target row vanished".into()))?;
            let row_id = old_version.row_id;
            let mut new_values = old_version.values.clone();
            let old_values = old_version.values.clone();
            for (column, value) in assignments {
                let idx = t.schema().column_index(column)?;
                new_values[idx] = value.clone();
            }
            // Mark the old version deleted and insert the new one.
            if let Some(v) = t.get_mut(slot) {
                v.deleted = Some(Stamp::Pending(txid));
            }
            let new_slot =
                t.insert_version(TupleVersion::pending(row_id, new_values.clone(), txid))?;
            Self::collect_tags_for_values(t, &old_values, &mut tx.pending_tags);
            Self::collect_tags_for_values(t, &new_values, &mut tx.pending_tags);
            tx.deleted_slots.push((table.to_string(), slot));
            tx.created_slots.push((table.to_string(), new_slot));
            tx.written_rows.push((table.to_string(), row_id));
            tx.note_row_modified(table);
            updated += 1;
        }
        inner.stats.updates += updated as u64;
        Ok(updated)
    }

    /// Deletes all rows of `table` matching `predicate`. Returns the number
    /// of rows deleted.
    pub fn delete(&self, token: TxnToken, table: &str, predicate: &Predicate) -> Result<usize> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let tx = Self::writable_txn(&mut inner.active, token)?;
        let snapshot = tx.snapshot;
        let txid = tx.id;
        let t = inner
            .tables
            .get_mut(table)
            .ok_or_else(|| Error::Schema(format!("no table '{table}'")))?;

        let targets =
            Self::visible_matching_slots(t, predicate, snapshot, txid, &mut inner.buffer)?;
        let mut deleted = 0;
        for slot in targets {
            Self::check_write_conflict(t, slot, snapshot, txid)?;
            let values = t
                .get(slot)
                .map(|v| v.values.clone())
                .ok_or_else(|| Error::Query("target row vanished".into()))?;
            let row_id = t.get(slot).map(|v| v.row_id).unwrap_or_default();
            if let Some(v) = t.get_mut(slot) {
                v.deleted = Some(Stamp::Pending(txid));
            }
            Self::collect_tags_for_values(t, &values, &mut tx.pending_tags);
            tx.deleted_slots.push((table.to_string(), slot));
            tx.written_rows.push((table.to_string(), row_id));
            tx.note_row_modified(table);
            deleted += 1;
        }
        inner.stats.deletes += deleted as u64;
        Ok(deleted)
    }

    // ------------------------------------------------------------------
    // Invalidations, vacuum, statistics
    // ------------------------------------------------------------------

    /// Subscribes to the invalidation stream. Each committed read/write
    /// transaction produces one message, delivered in commit order.
    pub fn subscribe_invalidations(&self) -> Receiver<InvalidationMessage> {
        self.inner.lock().bus.subscribe()
    }

    /// The ordered log of all invalidation messages published so far.
    #[must_use]
    pub fn invalidation_log(&self) -> Vec<InvalidationMessage> {
        self.inner.lock().bus.log().to_vec()
    }

    /// Reclaims tuple versions that are invisible to every pinned snapshot
    /// and every active transaction. Returns the number of versions removed.
    pub fn vacuum(&self) -> usize {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let mut horizon = inner.pins.horizon(inner.latest);
        for tx in inner.active.values() {
            horizon = horizon.min(tx.snapshot);
        }
        let mut removed = 0;
        for table in inner.tables.values_mut() {
            let garbage: Vec<Slot> = table
                .scan_slots()
                .filter(|slot| {
                    table
                        .get(*slot)
                        .is_some_and(|v| v.is_garbage_before(horizon))
                })
                .collect();
            for slot in garbage {
                table.remove_slot(slot);
                removed += 1;
            }
        }
        inner.stats.vacuumed_versions += removed as u64;
        removed
    }

    /// Buffer-pool statistics (simulated page hits and misses).
    #[must_use]
    pub fn buffer_stats(&self) -> BufferStats {
        self.inner.lock().buffer.stats()
    }

    /// Resets the buffer-pool statistics (keeps the pool warm).
    pub fn reset_buffer_stats(&self) {
        self.inner.lock().buffer.reset_stats();
    }

    /// Database operation counters.
    #[must_use]
    pub fn stats(&self) -> DbStats {
        self.inner.lock().stats
    }

    // ------------------------------------------------------------------
    // Internal helpers
    // ------------------------------------------------------------------

    fn writable_txn(
        active: &mut HashMap<TxnId, Transaction>,
        token: TxnToken,
    ) -> Result<&mut Transaction> {
        let tx = active
            .get_mut(&token.0)
            .ok_or_else(|| Error::UnknownTransaction(format!("txn {}", token.0)))?;
        if tx.mode != TxnMode::ReadWrite {
            return Err(Error::InvalidState(
                "write attempted in a read-only transaction".into(),
            ));
        }
        Ok(tx)
    }

    /// Finds the slots of versions visible to (`snapshot`, `txid`) that match
    /// `predicate`, using an index when the predicate allows it.
    fn visible_matching_slots(
        table: &Table,
        predicate: &Predicate,
        snapshot: Timestamp,
        txid: TxnId,
        buffer: &mut BufferManager,
    ) -> Result<Vec<Slot>> {
        let access = choose_access_path(predicate, table);
        let candidates: Vec<Slot> = match &access {
            AccessPath::IndexEq { column, value } => {
                buffer.access(
                    &format!("{}#idx:{}", table.schema().name, column),
                    table.index_page_of(column, value),
                );
                table.index_eq(column, value)?
            }
            AccessPath::IndexRange { column, lo, hi } => {
                table.index_range(column, lo.as_ref(), hi.as_ref())?
            }
            AccessPath::SeqScan => table.scan_slots().collect(),
        };
        let mut out = Vec::new();
        for slot in candidates {
            let Some(version) = table.get(slot) else {
                continue;
            };
            buffer.access(&table.schema().name, table.heap_page_of(slot));
            if version.visible_to(snapshot, Some(txid))
                && predicate.eval(table.schema(), &version.values)?
            {
                out.push(slot);
            }
        }
        Ok(out)
    }

    /// Eager first-updater-wins conflict detection: fail if any other
    /// transaction has a pending write on the row, or if a newer committed
    /// version exists than the writer's snapshot.
    fn check_write_conflict(
        table: &Table,
        slot: Slot,
        snapshot: Timestamp,
        txid: TxnId,
    ) -> Result<()> {
        let Some(version) = table.get(slot) else {
            return Ok(());
        };
        for other_slot in table.versions_of_row(version.row_id) {
            let Some(v) = table.get(*other_slot) else {
                continue;
            };
            let pending_by_other = matches!(v.created, Stamp::Pending(id) if id != txid)
                || matches!(v.deleted, Some(Stamp::Pending(id)) if id != txid);
            if pending_by_other {
                return Err(Error::SerializationFailure(format!(
                    "row {} in '{}' has an uncommitted change from another transaction",
                    version.row_id,
                    table.schema().name
                )));
            }
            let newer_commit = v.created.committed_at().is_some_and(|ts| ts > snapshot)
                || v.deleted
                    .and_then(|s| s.committed_at())
                    .is_some_and(|ts| ts > snapshot);
            if newer_commit {
                return Err(Error::SerializationFailure(format!(
                    "row {} in '{}' was modified after this transaction's snapshot",
                    version.row_id,
                    table.schema().name
                )));
            }
        }
        Ok(())
    }

    /// Adds one keyed tag per index of `table` for the given row values
    /// ("each tuple added, deleted, or modified yields one invalidation tag
    /// for each index it is listed in", §5.3).
    fn collect_tags_for_values(table: &Table, values: &[Value], tags: &mut TagSet) {
        for index in &table.schema().indexes {
            if let Ok(idx) = table.schema().column_index(&index.column) {
                let value = &values[idx];
                if !value.is_null() {
                    tags.insert(InvalidationTag::keyed(
                        &table.schema().name,
                        format!("{}={}", index.column, value.render_key()),
                    ));
                }
            }
        }
    }
}

/// Convenience bundle returned by [`Database::query_ro_once`]: the result of
/// a single query run in its own read-only transaction.
#[derive(Debug, Clone)]
pub struct OneShotQuery {
    /// The query result (rows, validity, tags, page counts).
    pub result: QueryResult,
    /// The snapshot the query ran at.
    pub snapshot: Timestamp,
}

impl Database {
    /// Runs one query in a fresh read-only transaction at the latest
    /// snapshot. Convenient for tests and tools; the TxCache library manages
    /// its transactions explicitly instead.
    pub fn query_ro_once(&self, query: &SelectQuery) -> Result<OneShotQuery> {
        let token = self.begin_ro(None)?;
        let result = self.query(token, query);
        let snapshot = self.commit(token)?;
        Ok(OneShotQuery {
            result: result?,
            snapshot,
        })
    }
}

#[allow(dead_code)]
fn assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Database>();
    check::<QueryResult>();
    check::<PageCounts>();
    check::<ValidityInterval>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Aggregate, CmpOp};
    use crate::value::ColumnType;

    fn users_schema() -> TableSchema {
        TableSchema::new("users")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("rating", ColumnType::Int)
            .unique_index("id")
            .index("name")
    }

    fn setup() -> Database {
        let db = Database::with_defaults();
        db.create_table(users_schema()).unwrap();
        db.bulk_load(
            "users",
            (1..=10i64)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::text(format!("user{i}")),
                        Value::Int(0),
                    ]
                })
                .collect(),
        )
        .unwrap();
        db
    }

    #[test]
    fn create_table_rejects_duplicates() {
        let db = Database::with_defaults();
        db.create_table(users_schema()).unwrap();
        assert!(db.create_table(users_schema()).is_err());
        assert_eq!(db.table_names(), vec!["users".to_string()]);
        assert!(db.table_schema("users").is_ok());
        assert!(db.table_schema("missing").is_err());
    }

    #[test]
    fn bulk_load_is_one_commit_and_visible() {
        let db = setup();
        assert_eq!(db.latest_timestamp(), Timestamp(1));
        let q = SelectQuery::table("users").aggregate(Aggregate::Count);
        let r = db.query_ro_once(&q).unwrap();
        assert_eq!(r.result.get(0, "count").unwrap(), &Value::Int(10));
        assert!(db.total_bytes() > 0);
        assert!(db.table_bytes("users").unwrap() > 0);
    }

    #[test]
    fn insert_commit_and_query_with_validity() {
        let db = setup();
        let tx = db.begin_rw().unwrap();
        db.insert(
            tx,
            "users",
            vec![Value::Int(11), Value::text("user11"), Value::Int(0)],
        )
        .unwrap();
        let commit_ts = db.commit(tx).unwrap();
        assert_eq!(commit_ts, Timestamp(2));

        let q = SelectQuery::table("users").filter(Predicate::eq("id", 11i64));
        let r = db.query_ro_once(&q).unwrap();
        assert_eq!(r.result.len(), 1);
        assert_eq!(r.result.validity, ValidityInterval::unbounded(Timestamp(2)));
        assert!(r
            .result
            .tags
            .tags()
            .contains(&InvalidationTag::keyed("users", "id=11")));
    }

    #[test]
    fn uncommitted_writes_invisible_to_others_and_undone_by_abort() {
        let db = setup();
        let tx = db.begin_rw().unwrap();
        db.insert(
            tx,
            "users",
            vec![Value::Int(99), Value::text("ghost"), Value::Int(0)],
        )
        .unwrap();
        let q = SelectQuery::table("users").filter(Predicate::eq("id", 99i64));
        // Another transaction does not see it.
        let other = db.query_ro_once(&q).unwrap();
        assert!(other.result.is_empty());
        // The writer does.
        let mine = db.query(tx, &q).unwrap();
        assert_eq!(mine.len(), 1);
        db.abort(tx).unwrap();
        let after = db.query_ro_once(&q).unwrap();
        assert!(after.result.is_empty());
        assert_eq!(db.stats().aborts, 1);
    }

    #[test]
    fn update_produces_new_version_and_invalidation() {
        let db = setup();
        let rx = db.subscribe_invalidations();
        let tx = db.begin_rw().unwrap();
        let n = db
            .update(
                tx,
                "users",
                &Predicate::eq("id", 3i64),
                &[("rating".to_string(), Value::Int(5))],
            )
            .unwrap();
        assert_eq!(n, 1);
        let ts = db.commit(tx).unwrap();

        let msg = rx.try_recv().unwrap();
        assert_eq!(msg.timestamp, ts);
        assert!(msg
            .tags
            .tags()
            .contains(&InvalidationTag::keyed("users", "id=3")));

        let q = SelectQuery::table("users").filter(Predicate::eq("id", 3i64));
        let r = db.query_ro_once(&q).unwrap();
        assert_eq!(r.result.get(0, "rating").unwrap(), &Value::Int(5));
        assert_eq!(r.result.validity, ValidityInterval::unbounded(ts));
    }

    #[test]
    fn delete_removes_row_and_tags_it() {
        let db = setup();
        let tx = db.begin_rw().unwrap();
        let n = db.delete(tx, "users", &Predicate::eq("id", 7i64)).unwrap();
        assert_eq!(n, 1);
        db.commit(tx).unwrap();
        let q = SelectQuery::table("users").filter(Predicate::eq("id", 7i64));
        assert!(db.query_ro_once(&q).unwrap().result.is_empty());
        assert_eq!(db.stats().deletes, 1);
    }

    #[test]
    fn write_in_read_only_transaction_is_rejected() {
        let db = setup();
        let tx = db.begin_ro(None).unwrap();
        let err = db
            .insert(tx, "users", vec![Value::Int(50), Value::Null, Value::Null])
            .unwrap_err();
        assert!(matches!(err, Error::InvalidState(_)));
        db.commit(tx).unwrap();
    }

    #[test]
    fn write_write_conflict_detected() {
        let db = setup();
        let t1 = db.begin_rw().unwrap();
        let t2 = db.begin_rw().unwrap();
        db.update(
            t1,
            "users",
            &Predicate::eq("id", 5i64),
            &[("rating".to_string(), Value::Int(1))],
        )
        .unwrap();
        // t2 attempts to update the same row while t1's change is pending.
        let err = db
            .update(
                t2,
                "users",
                &Predicate::eq("id", 5i64),
                &[("rating".to_string(), Value::Int(2))],
            )
            .unwrap_err();
        assert!(err.is_retryable());
        db.commit(t1).unwrap();
        db.abort(t2).unwrap();

        // A transaction whose snapshot predates t1's commit also conflicts.
        let t3 = db.begin_rw().unwrap();
        let t4 = db.begin_rw().unwrap();
        db.update(
            t3,
            "users",
            &Predicate::eq("id", 6i64),
            &[("rating".to_string(), Value::Int(1))],
        )
        .unwrap();
        db.commit(t3).unwrap();
        let err = db
            .update(
                t4,
                "users",
                &Predicate::eq("id", 6i64),
                &[("rating".to_string(), Value::Int(2))],
            )
            .unwrap_err();
        assert!(matches!(err, Error::SerializationFailure(_)));
    }

    #[test]
    fn pinned_snapshot_queries_see_the_past() {
        let db = setup();
        let (snap, _) = db.pin_latest();
        // Update user 2's name after the pin.
        let tx = db.begin_rw().unwrap();
        db.update(
            tx,
            "users",
            &Predicate::eq("id", 2i64),
            &[("name".to_string(), Value::text("renamed"))],
        )
        .unwrap();
        db.commit(tx).unwrap();

        let q = SelectQuery::table("users").filter(Predicate::eq("id", 2i64));
        // Latest sees the new name.
        let now = db.query_ro_once(&q).unwrap();
        assert_eq!(now.result.get(0, "name").unwrap(), &Value::text("renamed"));
        // The pinned snapshot still sees the old name, with a bounded
        // validity interval.
        let past = db.begin_ro(Some(snap)).unwrap();
        let r = db.query(past, &q).unwrap();
        assert_eq!(r.get(0, "name").unwrap(), &Value::text("user2"));
        assert!(!r.validity.is_unbounded());
        db.commit(past).unwrap();
        db.unpin(snap).unwrap();
        assert!(db.begin_ro(Some(snap)).is_err());
    }

    #[test]
    fn vacuum_respects_pins() {
        let db = setup();
        let (snap, _) = db.pin_latest();
        let tx = db.begin_rw().unwrap();
        db.update(
            tx,
            "users",
            &Predicate::eq("id", 1i64),
            &[("rating".to_string(), Value::Int(9))],
        )
        .unwrap();
        db.commit(tx).unwrap();
        // The old version is dead but still visible to the pinned snapshot.
        assert_eq!(db.vacuum(), 0);
        db.unpin(snap).unwrap();
        assert_eq!(db.vacuum(), 1);
        assert_eq!(db.stats().vacuumed_versions, 1);
    }

    #[test]
    fn wildcard_aggregation_for_bulk_updates() {
        let config = DbConfig {
            wildcard_threshold: 5,
            ..DbConfig::default()
        };
        let db = Database::new(config, SimClock::new());
        db.create_table(users_schema()).unwrap();
        db.bulk_load(
            "users",
            (1..=20i64)
                .map(|i| vec![Value::Int(i), Value::text("u"), Value::Int(0)])
                .collect(),
        )
        .unwrap();
        let tx = db.begin_rw().unwrap();
        db.update(
            tx,
            "users",
            &Predicate::cmp("id", CmpOp::Le, 10i64),
            &[("rating".to_string(), Value::Int(1))],
        )
        .unwrap();
        db.commit(tx).unwrap();
        let log = db.invalidation_log();
        assert_eq!(log.len(), 1);
        assert_eq!(
            log[0].tags.tags(),
            &[InvalidationTag::wildcard("users")],
            "10 modified rows >= threshold 5 collapse to a wildcard"
        );
    }

    #[test]
    fn stock_database_mode_produces_no_invalidations() {
        let config = DbConfig {
            exec: ExecOptions {
                track_validity: false,
                predicate_before_visibility: false,
            },
            ..DbConfig::default()
        };
        let db = Database::new(config, SimClock::new());
        db.create_table(users_schema()).unwrap();
        db.bulk_load(
            "users",
            vec![vec![Value::Int(1), Value::text("a"), Value::Int(0)]],
        )
        .unwrap();
        let tx = db.begin_rw().unwrap();
        db.update(
            tx,
            "users",
            &Predicate::eq("id", 1i64),
            &[("rating".to_string(), Value::Int(2))],
        )
        .unwrap();
        db.commit(tx).unwrap();
        assert!(db.invalidation_log().is_empty());
        let q = SelectQuery::table("users").filter(Predicate::eq("id", 1i64));
        let r = db.query_ro_once(&q).unwrap();
        assert!(r.result.tags.is_empty());
    }

    #[test]
    fn unknown_transactions_are_rejected() {
        let db = setup();
        let bogus = TxnToken(9999);
        assert!(db.commit(bogus).is_err());
        assert!(db.abort(bogus).is_err());
        assert!(db.query(bogus, &SelectQuery::table("users")).is_err());
    }

    #[test]
    fn buffer_stats_accumulate_and_reset() {
        let db = setup();
        let q = SelectQuery::table("users").filter(Predicate::eq("id", 1i64));
        db.query_ro_once(&q).unwrap();
        assert!(db.buffer_stats().accesses() > 0);
        db.reset_buffer_stats();
        assert_eq!(db.buffer_stats().accesses(), 0);
    }

    #[test]
    fn pin_future_timestamp_rejected() {
        let db = setup();
        assert!(db.pin(Timestamp(999)).is_err());
        let id = db.pin(Timestamp(1)).unwrap();
        assert_eq!(db.pinned_snapshots(), vec![Timestamp(1)]);
        db.unpin(id).unwrap();
    }
}
