//! Property-based tests of the paper's core invariants: the validity-interval
//! algebra, dual-granularity tag matching, the cache server's lookup
//! contract, the codec, and the §6.2.1 pin-set invariants.

use bytes::Bytes;
use proptest::prelude::*;

use txcache_repro::cache_server::{CacheNode, LookupOutcome, LookupRequest, NodeConfig};
use txcache_repro::txcache::codec;
use txcache_repro::txcache::PinSet;
use txcache_repro::txtypes::{
    CacheKey, IntervalSet, InvalidationTag, TagSet, Timestamp, ValidityInterval,
};

fn interval_strategy() -> impl Strategy<Value = ValidityInterval> {
    (0u64..200, proptest::option::of(1u64..100)).prop_map(|(lo, width)| match width {
        Some(w) => ValidityInterval::bounded(Timestamp(lo), Timestamp(lo + w)).unwrap(),
        None => ValidityInterval::unbounded(Timestamp(lo)),
    })
}

proptest! {
    #[test]
    fn interval_intersection_is_commutative_and_sound(
        a in interval_strategy(),
        b in interval_strategy(),
        ts in 0u64..400,
    ) {
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        prop_assert_eq!(ab, ba);
        let ts = Timestamp(ts);
        let in_both = a.contains(ts) && b.contains(ts);
        let in_intersection = ab.is_some_and(|iv| iv.contains(ts));
        prop_assert_eq!(in_both, in_intersection);
    }

    #[test]
    fn truncation_never_extends_an_interval(
        a in interval_strategy(),
        cut in 0u64..400,
        ts in 0u64..400,
    ) {
        let cut = Timestamp(cut);
        let ts = Timestamp(ts);
        match a.truncate_at(cut) {
            Some(t) => {
                prop_assert!(t.lower == a.lower);
                if t.contains(ts) {
                    prop_assert!(a.contains(ts));
                    prop_assert!(ts < cut);
                }
            }
            None => prop_assert!(cut <= a.lower),
        }
    }

    #[test]
    fn interval_set_gap_never_overlaps_members(
        members in proptest::collection::vec(interval_strategy(), 0..6),
        within in interval_strategy(),
        ts in 0u64..400,
    ) {
        let set: IntervalSet = members.iter().copied().collect();
        let ts = Timestamp(ts);
        if let Some(gap) = set.gap_around(within, ts) {
            prop_assert!(gap.contains(ts));
            prop_assert!(within.contains(ts));
            // The gap must not contain any timestamp covered by the set; probe
            // a few representative points.
            for probe in [gap.lower, ts, gap.upper.map(Timestamp::prev).unwrap_or(Timestamp(399))] {
                if gap.contains(probe) {
                    prop_assert!(!set.contains(probe));
                }
            }
        } else {
            prop_assert!(set.contains(ts) || !within.contains(ts));
        }
    }

    #[test]
    fn tag_matching_is_reflexive_and_wildcards_subsume(
        table in "[a-c]{1}",
        key in "[a-d]{1}",
        other_key in "[a-d]{1}",
    ) {
        let keyed = InvalidationTag::keyed(&table, format!("id={key}"));
        let other = InvalidationTag::keyed(&table, format!("id={other_key}"));
        let wild = InvalidationTag::wildcard(&table);
        prop_assert!(keyed.matches(&keyed));
        prop_assert!(wild.matches(&keyed));
        prop_assert!(keyed.matches(&wild));
        prop_assert_eq!(keyed.matches(&other), key == other_key);

        let mut set = TagSet::new();
        set.insert(keyed.clone());
        set.insert(wild.clone());
        prop_assert_eq!(set.len(), 1, "wildcard subsumes keyed tags: {}", set);
    }

    #[test]
    fn cache_lookup_only_returns_entries_overlapping_the_request(
        entries in proptest::collection::vec((interval_strategy(), 0u64..5), 1..12),
        lo in 0u64..300,
        width in 0u64..50,
    ) {
        let node = CacheNode::new("prop", NodeConfig { capacity_bytes: 1 << 20, ..NodeConfig::default() });
        // Make "now" known so unbounded entries are usable.
        node.apply_invalidation(Timestamp(1_000), &TagSet::new());
        for (iv, k) in &entries {
            node.insert(
                CacheKey::new("f", format!("[{k}]")),
                Bytes::from_static(b"v"),
                *iv,
                TagSet::new(),
                txcache_repro::txtypes::WallClock::ZERO,
            );
        }
        let request = LookupRequest::range(Timestamp(lo), Timestamp(lo + width));
        for k in 0u64..5 {
            if let LookupOutcome::Hit { validity, .. } =
                node.lookup(&CacheKey::new("f", format!("[{k}]")), &request)
            {
                prop_assert!(validity.intersects_range(Timestamp(lo), Timestamp(lo + width)));
            }
        }
    }

    #[test]
    fn codec_roundtrips_arbitrary_structures(
        ints in proptest::collection::vec(any::<i64>(), 0..8),
        text in ".{0,40}",
        flag in any::<bool>(),
        opt in proptest::option::of(any::<u32>()),
    ) {
        #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
        struct Blob {
            ints: Vec<i64>,
            text: String,
            flag: bool,
            opt: Option<u32>,
        }
        let blob = Blob { ints, text, flag, opt };
        let encoded = codec::encode(&blob).unwrap();
        let decoded: Blob = codec::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, blob);
    }

    #[test]
    fn pin_set_narrowing_preserves_invariant_one(
        candidates in proptest::collection::btree_set(0u64..100, 1..10),
        observations in proptest::collection::vec(interval_strategy(), 0..6),
    ) {
        // Invariant 1: after narrowing, every remaining candidate lies inside
        // every observed validity interval.
        let mut pin_set = PinSet::new(candidates.iter().map(|t| Timestamp(*t)), true);
        let mut observed: Vec<ValidityInterval> = Vec::new();
        for iv in observations {
            if pin_set.narrow(&iv) {
                observed.push(iv);
                for ts in pin_set.candidates() {
                    for seen in &observed {
                        prop_assert!(seen.contains(ts));
                    }
                }
            } else {
                // The transaction-level recovery path (re-pinning inside the
                // interval) is exercised in the integration tests; at the data
                // structure level an empty result simply stops the run.
                break;
            }
        }
    }
}

proptest! {
    /// §5.2 invariant: truncation only ever *shrinks* an interval — the
    /// result is a subset of the original (same lower bound, upper bound
    /// never later), probed across the whole timestamp range.
    #[test]
    fn truncation_never_widens_an_interval(
        a in interval_strategy(),
        cut in 0u64..400,
        probes in proptest::collection::vec(0u64..500, 1..8),
    ) {
        if let Some(t) = a.truncate_at(Timestamp(cut)) {
            prop_assert_eq!(t.lower, a.lower);
            match (t.upper, a.upper) {
                (None, Some(_)) => prop_assert!(false, "truncation unbounded a bounded interval"),
                (Some(tu), Some(au)) => prop_assert!(tu <= au),
                _ => {}
            }
            for p in probes {
                let p = Timestamp(p);
                if t.contains(p) {
                    prop_assert!(a.contains(p), "truncated interval gained {p}");
                }
            }
        }
    }

    /// mvdb validity invariant: the versions of one row carve time into
    /// disjoint intervals — at any pinned snapshot exactly one version is
    /// visible, it holds the ground-truth value as of that snapshot, and
    /// its reported validity interval contains the snapshot. Two snapshots
    /// separated by an update never report overlapping validity intervals.
    #[test]
    fn mvdb_row_versions_never_overlap_in_a_snapshot(
        updates in proptest::collection::vec(0i64..1000, 1..10),
    ) {
        use txcache_repro::mvdb::{
            ColumnType, Database, DbConfig, Predicate, SelectQuery, SnapshotId, TableSchema,
            Value,
        };
        use txcache_repro::txtypes::SimClock;

        let db = Database::new(DbConfig::default(), SimClock::new());
        db.create_table(
            TableSchema::new("items")
                .column("id", ColumnType::Int)
                .column("price", ColumnType::Int)
                .unique_index("id"),
        )
        .unwrap();
        db.bulk_load("items", vec![vec![Value::Int(1), Value::Int(-1)]])
            .unwrap();

        // Apply the updates, pinning a snapshot after each commit and
        // remembering the value it should observe.
        let mut pinned = vec![(db.pin_latest().0, -1i64)];
        for price in &updates {
            let txn = db.begin_rw().unwrap();
            db.update(
                txn,
                "items",
                &Predicate::eq("id", 1i64),
                &[("price".to_string(), Value::Int(*price))],
            )
            .unwrap();
            db.commit(txn).unwrap();
            pinned.push((db.pin_latest().0, *price));
        }

        // Query the row at every pinned snapshot.
        let query = SelectQuery::table("items").filter(Predicate::eq("id", 1i64));
        let mut observed: Vec<(i64, txcache_repro::txtypes::ValidityInterval)> = Vec::new();
        for (snap, expected) in &pinned {
            let token = db.begin_ro(Some(SnapshotId(snap.timestamp()))).unwrap();
            let result = db.query(token, &query).unwrap();
            db.commit(token).unwrap();
            prop_assert_eq!(result.len(), 1, "exactly one version visible per snapshot");
            let value = result.get(0, "price").unwrap().as_int().unwrap();
            prop_assert_eq!(value, *expected, "snapshot {} must see its own update", snap.timestamp());
            prop_assert!(
                result.validity.contains(snap.timestamp()),
                "validity {:?} must contain the snapshot {}",
                result.validity,
                snap.timestamp()
            );
            observed.push((value, result.validity));
        }

        // Results carrying different values live in disjoint intervals:
        // overlapping versions of the row never coexist in any snapshot.
        for (i, (va, ia)) in observed.iter().enumerate() {
            for (vb, ib) in observed.iter().skip(i + 1) {
                if va != vb {
                    prop_assert!(
                        ia.intersect(ib).is_none(),
                        "versions {va} ({ia:?}) and {vb} ({ib:?}) overlap"
                    );
                }
            }
        }
    }

    /// Planner equivalence invariant: every index-assisted plan (top-N
    /// pushdown, MIN/MAX endpoint probe, COUNT shortcut, IN-list probes)
    /// returns the same rows AND the bit-identical validity interval as the
    /// forced sequential-scan reference plan, at every pinned snapshot of a
    /// randomly mutated table.
    #[test]
    fn index_assisted_plans_match_seq_scan_rows_and_validity(
        seed_rows in proptest::collection::vec((0i64..6, 0i64..6), 1..10),
        ops in proptest::collection::vec((0u8..3, 0i64..6, 0i64..6), 0..10),
        pivot in 0i64..6,
        limit in 1usize..5,
    ) {
        use txcache_repro::mvdb::{
            AccessPath, Aggregate, CmpOp, ColumnType, Database, DbConfig, Predicate,
            SelectQuery, SnapshotId, SortOrder, TableSchema, Value,
        };
        use txcache_repro::txtypes::SimClock;

        let db = Database::new(DbConfig::default(), SimClock::new());
        db.create_table(
            TableSchema::new("t")
                .column("id", ColumnType::Int)
                .column("a", ColumnType::Int)
                .column("c", ColumnType::Int)
                .unique_index("id")
                .index("a"),
        )
        .unwrap();

        // Seed, then apply random committed inserts/updates/deletes, pinning
        // a snapshot after every commit so old versions stay reachable and
        // the index keeps entries for superseded/deleted versions.
        let mut next_id = 0i64;
        let rows: Vec<Vec<Value>> = seed_rows
            .iter()
            .map(|(a, c)| {
                next_id += 1;
                vec![Value::Int(next_id), Value::Int(*a), Value::Int(*c)]
            })
            .collect();
        db.bulk_load("t", rows).unwrap();
        let mut pins = vec![db.pin_latest().0];
        for (kind, a, c) in &ops {
            let txn = db.begin_rw().unwrap();
            match kind % 3 {
                0 => {
                    next_id += 1;
                    db.insert(
                        txn,
                        "t",
                        vec![Value::Int(next_id), Value::Int(*a), Value::Int(*c)],
                    )
                    .unwrap();
                }
                1 => {
                    let target = (*a % next_id.max(1)) + 1;
                    db.update(
                        txn,
                        "t",
                        &Predicate::eq("id", target),
                        &[("a".to_string(), Value::Int(*c)), ("c".to_string(), Value::Int(*a))],
                    )
                    .unwrap();
                }
                _ => {
                    let target = (*c % next_id.max(1)) + 1;
                    db.delete(txn, "t", &Predicate::eq("id", target)).unwrap();
                }
            }
            db.commit(txn).unwrap();
            pins.push(db.pin_latest().0);
        }

        let residual = Predicate::cmp("c", CmpOp::Ge, pivot);
        let queries = vec![
            // Top-N pushdown: ordered walks with and without residuals/bounds.
            SelectQuery::table("t").order_by("a", SortOrder::Asc).limit(limit),
            SelectQuery::table("t").order_by("a", SortOrder::Desc).limit(limit),
            SelectQuery::table("t")
                .filter(residual.clone())
                .order_by("a", SortOrder::Desc)
                .limit(limit),
            SelectQuery::table("t")
                .filter(Predicate::cmp("a", CmpOp::Ge, pivot))
                .order_by("a", SortOrder::Asc)
                .limit(limit),
            SelectQuery::table("t").order_by("a", SortOrder::Asc),
            SelectQuery::table("t")
                .filter(Predicate::eq("a", pivot))
                .order_by("id", SortOrder::Asc)
                .limit(limit),
            // MIN/MAX endpoint probes, bare and range-bounded.
            SelectQuery::table("t").aggregate(Aggregate::Min("a".into())),
            SelectQuery::table("t")
                .filter(residual.clone())
                .aggregate(Aggregate::Max("a".into())),
            SelectQuery::table("t")
                .filter(Predicate::cmp("a", CmpOp::Le, pivot))
                .aggregate(Aggregate::Max("a".into())),
            // COUNT shortcut, bare and keyed.
            SelectQuery::table("t").aggregate(Aggregate::Count),
            SelectQuery::table("t")
                .filter(Predicate::eq("a", pivot))
                .aggregate(Aggregate::Count),
            // IN-list probes.
            SelectQuery::table("t")
                .filter(Predicate::in_list("a", [pivot, pivot + 2]))
                .order_by("id", SortOrder::Asc),
            SelectQuery::table("t").filter(Predicate::in_list("a", [pivot, pivot + 2])),
        ];

        // The unconditional shapes must actually take the fast paths —
        // otherwise the equivalence below would be vacuous.
        prop_assert!(matches!(
            db.plan_for(&queries[0]).unwrap().access,
            AccessPath::IndexOrdered { .. }
        ));
        prop_assert!(matches!(
            db.plan_for(&queries[6]).unwrap().access,
            AccessPath::IndexEndpoint { max: false, .. }
        ));
        prop_assert!(matches!(
            db.plan_for(&queries[11]).unwrap().access,
            AccessPath::IndexIn { .. }
        ));

        for snap in &pins {
            for q in &queries {
                let plan = db.plan_for(q).unwrap();
                let token = db.begin_ro(Some(SnapshotId(snap.timestamp()))).unwrap();
                let natural = db.query(token, q).unwrap();
                let forced = db.query(token, &q.clone().force_seq_scan()).unwrap();
                db.commit(token).unwrap();
                prop_assert_eq!(
                    &natural.rows,
                    &forced.rows,
                    "rows diverge at ts {} for plan {:?} ({:?})",
                    snap.timestamp(),
                    plan.access,
                    q
                );
                prop_assert_eq!(
                    natural.validity,
                    forced.validity,
                    "validity diverges at ts {} for plan {:?} ({:?})",
                    snap.timestamp(),
                    plan.access,
                    q
                );
            }
        }
    }
}

#[test]
fn pin_set_invariant_two_holds_under_real_cache_guarantee() {
    // The cache only returns entries whose validity intersects the pin-set
    // bounds; verify the §6.2.1 argument on a concrete adversarial case where
    // the interval covers the bounds partially.
    let mut pin_set = PinSet::new([Timestamp(10), Timestamp(50)], false);
    let returned = ValidityInterval::bounded(Timestamp(40), Timestamp(60)).unwrap();
    assert!(returned.intersects_range(Timestamp(10), Timestamp(50)));
    assert!(
        pin_set.narrow(&returned),
        "an endpoint of the bounds lies in the interval"
    );
    assert_eq!(pin_set.candidates(), vec![Timestamp(50)]);
}
